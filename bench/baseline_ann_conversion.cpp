// Baseline — offline ANN -> SNN conversion vs in-hardware EMSTDP learning.
//
// The paper's introduction frames conversion as the incumbent: "A common
// approach is to train an ANN and convert it into SNN [4], [5], however,
// this requires the training to be performed offline", and argues that
// in-hardware learning "provides the ability to compensate any device
// variation". This bench puts both claims on the same chip:
//
//   row 1: float ANN (the offline upper bound)
//   row 2: full ANN->SNN conversion deployed inference-only (snn/deploy)
//   row 3: EMSTDP with frozen converted convs, dense head trained on chip
//
// columns: accuracy on a pristine chip; accuracy after 20% threshold
// mismatch lands on the dense-head populations; accuracy after the chip is
// then given one epoch of on-device data. Conversion cannot use that data —
// its weights are frozen at deployment — while EMSTDP retrains and recovers.

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/trainer.hpp"
#include "loihi/faults.hpp"
#include "snn/deploy.hpp"

using namespace neuro;

namespace {
constexpr double kSigma = 0.20;
constexpr std::uint64_t kVarSeed = 1000;
}  // namespace

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto train_n = static_cast<std::size_t>(cli.get_int("train", 600));
    const auto test_n = static_cast<std::size_t>(cli.get_int("test", 250));
    const auto epochs = static_cast<std::size_t>(cli.get_int("epochs", 4));

    bench::banner(
        "Baseline — ANN->SNN conversion vs in-hardware EMSTDP",
        "paper Sec. I (conversion requires offline training; in-hardware "
        "learning compensates device variation)",
        std::to_string(train_n) + " train samples, " + std::to_string(epochs) +
            " on-chip epochs, DFA, synthetic digits, vth mismatch sigma=20%");

    core::ExperimentSpec spec;
    spec.dataset = "digits";
    spec.train_count = train_n;
    spec.test_count = test_n;
    spec.ann_epochs = 4;
    spec.seed = 3;
    const auto prep = core::prepare(spec);

    const auto eval_converted = [&](snn::ConvertedNetwork& net) {
        std::size_t correct = 0;
        for (const auto& s : prep.test.samples)
            correct += net.predict(s.image) == s.label ? 1 : 0;
        return static_cast<double>(correct) /
               static_cast<double>(prep.test.size());
    };

    // ---- row 1: the float ANN --------------------------------------------------
    std::printf("[ann] float accuracy: %.1f%% (offline upper bound)\n",
                prep.ann_test_accuracy * 100.0);

    // ---- row 2: conversion -------------------------------------------------------
    const auto converted =
        snn::convert_full_model(*prep.model, prep.topo, prep.train, 0.999f, 8);
    snn::ConvertedNetwork conv_net(converted, prep.topo, 64);
    const double conv_pristine = eval_converted(conv_net);
    for (std::uint64_t i = 0; i < conv_net.head_populations().size(); ++i)
        loihi::apply_threshold_variation(conv_net.chip(),
                                         conv_net.head_populations()[i], kSigma,
                                         kVarSeed + i);
    const double conv_varied = eval_converted(conv_net);
    // Conversion has no on-chip learning: the "after adaptation" column is
    // the same chip, unchanged, after the adaptation data went unused.
    const double conv_adapted = eval_converted(conv_net);
    std::printf("[conversion] pristine=%.1f%% varied=%.1f%% after-data=%.1f%%\n",
                conv_pristine * 100.0, conv_varied * 100.0, conv_adapted * 100.0);

    // ---- row 3: in-hardware EMSTDP ---------------------------------------------
    core::EmstdpOptions opt;
    opt.seed = 7;
    auto emstdp = core::build_chip_network(prep, opt);
    common::Rng rng(42);
    for (std::size_t e = 0; e < epochs; ++e)
        core::train_epoch(*emstdp, prep.train, rng);
    const double em_pristine = core::evaluate(*emstdp, prep.test);

    std::uint64_t vs = kVarSeed;
    for (const auto pop : emstdp->hidden_pops())
        loihi::apply_threshold_variation(emstdp->chip(), pop, kSigma, vs++);
    loihi::apply_threshold_variation(emstdp->chip(), emstdp->output_pop(), kSigma,
                                     vs);
    const double em_varied = core::evaluate(*emstdp, prep.test);
    common::Rng rng2(43);
    core::train_epoch(*emstdp, prep.train, rng2);  // adapts on the varied chip
    const double em_adapted = core::evaluate(*emstdp, prep.test);
    std::printf("[emstdp] pristine=%.1f%% varied=%.1f%% after-data=%.1f%%\n\n",
                em_pristine * 100.0, em_varied * 100.0, em_adapted * 100.0);

    // ---- report -------------------------------------------------------------------
    common::Table table({"system", "training", "pristine chip",
                         "vth mismatch 20%", "+1 epoch on-device data"});
    table.add_row({"float ANN", "offline",
                   common::Table::pct(prep.ann_test_accuracy), "n/a", "n/a"});
    table.add_row({"ANN->SNN conversion", "offline",
                   common::Table::pct(conv_pristine),
                   common::Table::pct(conv_varied),
                   common::Table::pct(conv_adapted) + " (cannot learn)"});
    table.add_row({"EMSTDP in-hardware", "on-chip online",
                   common::Table::pct(em_pristine),
                   common::Table::pct(em_varied),
                   common::Table::pct(em_adapted) + " (recovered)"});
    table.print();

    common::CsvWriter csv(bench::kCsvDir, "baseline_ann_conversion",
                          {"system", "pristine", "varied", "adapted"});
    csv.add_row({"ann", std::to_string(prep.ann_test_accuracy), "", ""});
    csv.add_row({"conversion", std::to_string(conv_pristine),
                 std::to_string(conv_varied), std::to_string(conv_adapted)});
    csv.add_row({"emstdp", std::to_string(em_pristine),
                 std::to_string(em_varied), std::to_string(em_adapted)});
    std::printf("\nCSV: %s\n", csv.write().c_str());

    bench::footnote(
        "shape check: on a pristine chip the offline pipeline (ANN and its "
        "SNN conversion) sits above online EMSTDP — matching Table I's "
        "FP-vs-Loihi ordering. Under device variation both deployments "
        "degrade; given the same one epoch of on-device data, conversion is "
        "frozen while EMSTDP retrains on the chip that actually exists and "
        "recovers — the paper's core argument for in-hardware learning. "
        "Variation is applied to the dense-head populations of both systems "
        "with identical seeds.");
    return 0;
}
