// Ablation C — FA vs DFA hardware cost (paper Sec. III-A).
//
// "DFA does not only eliminate the neurons on the feedback path, the number
//  of connections on the feedback path is also reduced ... DFA not only
//  reduces the number of compartments and neuron cores used in the chip,
//  but also reduces the number of synapses and thus the amount of memory
//  utilized by the synapses in the cores."
//
// This harness counts compartments / synapses / cores of the feedback path
// for FA and DFA as the dense stack deepens, making the scaling visible
// (the deeper the network, the more the FA chain costs).

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/network.hpp"

using namespace neuro;

int main() {
    bench::banner("Ablation C — FA vs DFA feedback-path resources vs depth",
                  "paper Sec. III-A / Fig. 1a (structural claims)", "");

    common::Table table({"hidden layers", "mode", "fb compartments", "fb synapses",
                         "total compartments", "total synapses", "cores",
                         "synaptic memory"});
    common::CsvWriter csv(bench::kCsvDir, "ablation_dfa_fa_resources",
                          {"depth", "mode", "fb_compartments", "fb_synapses",
                           "compartments", "synapses", "cores", "memory_bytes"});

    const std::vector<std::vector<std::size_t>> depths = {
        {100}, {100, 100}, {100, 100, 100}};
    for (const auto& hidden : depths) {
        for (auto mode : {core::FeedbackMode::FA, core::FeedbackMode::DFA}) {
            core::EmstdpOptions opt;
            opt.feedback = mode;
            core::EmstdpNetwork net(opt, 1, 14, 14, nullptr, hidden, 10);
            const auto c = net.costs();
            const auto mem = net.chip().mapping().total_memory_bytes;
            const char* name = mode == core::FeedbackMode::FA ? "FA" : "DFA";
            table.add_row({std::to_string(hidden.size()), name,
                           std::to_string(c.feedback_compartments),
                           std::to_string(c.feedback_synapses),
                           std::to_string(c.compartments),
                           std::to_string(c.synapses), std::to_string(c.cores),
                           common::Table::fmt(static_cast<double>(mem) / 1024.0, 1) +
                               " KiB"});
            csv.add_row({std::to_string(hidden.size()), name,
                         std::to_string(c.feedback_compartments),
                         std::to_string(c.feedback_synapses),
                         std::to_string(c.compartments), std::to_string(c.synapses),
                         std::to_string(c.cores), std::to_string(mem)});
        }
    }
    table.print();
    std::printf("\nCSV: %s\n", csv.write().c_str());
    bench::footnote(
        "shape checks: DFA's feedback compartments and synapses are strictly "
        "below FA's at every depth, and the gap widens with depth (the FA "
        "chain mirrors every hidden layer; DFA broadcasts once from the "
        "10-neuron output error). The synaptic-memory column realizes the "
        "paper's 'reduces the amount of memory utilized by the synapses in "
        "the cores' — per-core occupied bytes summed over occupied cores.");
    return 0;
}
