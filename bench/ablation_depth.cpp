// Ablation G — network depth: FA's accumulated quantization error vs DFA.
//
// Paper Sec. IV-A1 explains Table I's FA-vs-DFA ordering with: "the DFA
// skipped the hidden layers in the backward path and has less accumulated
// quantization errors", and Sec. III-A with: "As the error propagated
// through layers, the quantization errors accumulated."
//
// This ablation makes the ordering visible: sweep the number of trainable
// hidden layers at the chip's native 8-bit precision. FA's feedback chain
// re-quantizes the error spike train at every hop, so DFA should sit above
// FA at every depth, with a persistent gap. (The precision axis itself —
// accuracy collapsing below 8 bits, saturating above — is established
// separately by Ablation A; at this bench's miniature scale a wide-precision
// control is too seed-noisy to add signal.)

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/network.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"

using namespace neuro;

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto train_n = static_cast<std::size_t>(cli.get_int("train", 300));
    const auto test_n = static_cast<std::size_t>(cli.get_int("test", 200));
    const auto epochs = static_cast<std::size_t>(cli.get_int("epochs", 2));
    const auto max_depth = static_cast<std::size_t>(cli.get_int("depth", 3));

    bench::banner(
        "Ablation G — depth sweep: FA quantization accumulation vs DFA",
        "paper Sec. III-A / IV-A1 (error re-quantized at every FA hop)",
        std::to_string(train_n) + " train samples, " + std::to_string(epochs) +
            " epochs, 16x16 synthetic digits, mean of 3 seeds, "
            "hidden width 64");

    data::GenOptions gen;
    gen.count = train_n + test_n;
    gen.seed = 5;
    gen.height = 16;
    gen.width = 16;
    const auto all = data::make_digits(gen);
    const auto [train, test] = data::split(all, train_n);

    const std::uint64_t seeds[] = {7, 9, 13};

    const auto run = [&](std::size_t depth, core::FeedbackMode mode) {
        core::EmstdpOptions opt;
        opt.feedback = mode;
        double acc = 0.0;
        for (const std::uint64_t seed : seeds) {
            opt.seed = seed;
            core::EmstdpNetwork net(opt, 1, gen.height, gen.width, nullptr,
                                    std::vector<std::size_t>(depth, 64),
                                    std::size_t{10});
            common::Rng rng(42 + seed);
            for (std::size_t e = 0; e < epochs; ++e)
                core::train_epoch(net, train, rng);
            acc += core::evaluate(net, test);
        }
        return acc / static_cast<double>(std::size(seeds));
    };

    common::Table table({"hidden layers", "FA", "DFA", "DFA - FA"});
    common::CsvWriter csv(bench::kCsvDir, "ablation_depth",
                          {"depth", "fa", "dfa"});

    for (std::size_t depth = 1; depth <= max_depth; ++depth) {
        const double fa = run(depth, core::FeedbackMode::FA);
        const double dfa = run(depth, core::FeedbackMode::DFA);
        std::printf("[depth %zu] FA=%.1f%% DFA=%.1f%%\n", depth, fa * 100.0,
                    dfa * 100.0);
        std::fflush(stdout);
        table.add_row({std::to_string(depth), common::Table::pct(fa),
                       common::Table::pct(dfa),
                       common::Table::fmt((dfa - fa) * 100.0, 1) + " pp"});
        csv.add_row({std::to_string(depth), std::to_string(fa),
                     std::to_string(dfa)});
    }

    std::printf("\n");
    table.print();
    std::printf("\nCSV: %s\n", csv.write().c_str());
    bench::footnote(
        "shape check: DFA sits above FA at every depth and the gap persists "
        "as layers are added — each extra FA hop re-quantizes the error "
        "spike train, which is the paper\'s explanation for Table I\'s "
        "FA-vs-DFA ordering. Both topologies lose accuracy with depth at "
        "this miniature training scale (deeper credit assignment needs more "
        "samples than the bench budget provides); the paper\'s fixed "
        "100d-10d head corresponds to the depth-1 row.");
    return 0;
}
