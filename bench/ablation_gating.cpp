// Ablation H — multi-compartment derivative gating (adaptation technique 1).
//
// Paper Sec. III-A: the error-path output "is also gated by the h'_i, which
// is a constant when the neuron in the corresponding feedforward layer has
// output activities and zero otherwise ... Two-compartment neurons with a
// soma compartment and a corresponding auxiliary compartment are set up for
// the error path such that the spiking activity of the soma is an AND
// function of the activity of the soma and the auxiliary compartment."
//
// The gate realizes the shifted-ReLU derivative of eq. (2): silent forward
// neurons must receive no correction, otherwise the backward pass behaves as
// if the activation were linear everywhere and credit flows to units that
// cannot express it. This ablation disables the gate (errors reach every
// neuron regardless of forward activity) for both feedback topologies.

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/network.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"

using namespace neuro;

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto train_n = static_cast<std::size_t>(cli.get_int("train", 400));
    const auto test_n = static_cast<std::size_t>(cli.get_int("test", 200));
    const auto epochs = static_cast<std::size_t>(cli.get_int("epochs", 2));

    bench::banner(
        "Ablation H — multi-compartment h' gating of the error path",
        "paper Sec. III-A (adaptation technique 1: AND-gated error somata)",
        std::to_string(train_n) + " train samples, " + std::to_string(epochs) +
            " epochs, 16x16 synthetic digits, mean of 3 seeds");

    data::GenOptions gen;
    gen.count = train_n + test_n;
    gen.seed = 5;
    gen.height = 16;
    gen.width = 16;
    const auto all = data::make_digits(gen);
    const auto [train, test] = data::split(all, train_n);

    const std::uint64_t seeds[] = {7, 9, 13};
    const auto run = [&](core::FeedbackMode mode, bool gated) {
        core::EmstdpOptions opt;
        opt.feedback = mode;
        opt.derivative_gating = gated;
        double acc = 0.0;
        for (const std::uint64_t seed : seeds) {
            opt.seed = seed;
            core::EmstdpNetwork net(opt, 1, gen.height, gen.width, nullptr,
                                    std::vector<std::size_t>{100},
                                    std::size_t{10});
            common::Rng rng(42 + seed);
            for (std::size_t e = 0; e < epochs; ++e)
                core::train_epoch(net, train, rng);
            acc += core::evaluate(net, test);
        }
        return acc / static_cast<double>(std::size(seeds));
    };

    common::Table table({"feedback", "gated (paper)", "ungated", "gate gain"});
    common::CsvWriter csv(bench::kCsvDir, "ablation_gating",
                          {"mode", "gated_acc", "ungated_acc"});
    for (const auto mode : {core::FeedbackMode::FA, core::FeedbackMode::DFA}) {
        const char* name = mode == core::FeedbackMode::FA ? "FA" : "DFA";
        const double gated = run(mode, true);
        const double ungated = run(mode, false);
        std::printf("[%s] gated=%.1f%% ungated=%.1f%%\n", name, gated * 100.0,
                    ungated * 100.0);
        std::fflush(stdout);
        table.add_row({name, common::Table::pct(gated),
                       common::Table::pct(ungated),
                       common::Table::fmt((gated - ungated) * 100.0, 1) + " pp"});
        csv.add_row({name, std::to_string(gated), std::to_string(ungated)});
    }

    std::printf("\n");
    table.print();
    std::printf("\nCSV: %s\n", csv.write().c_str());
    bench::footnote(
        "shape check: the AND gate helps both topologies — without it, "
        "corrections land on forward neurons that never fired, which "
        "corresponds to pretending the shifted-ReLU derivative is 1 "
        "everywhere. The gate is what makes the spike-domain backward pass "
        "respect the activation nonlinearity (paper adaptation technique 1).");
    return 0;
}
