// Ablation D — the two-phase trace-based update (adaptation technique 2)
// and its supporting mechanisms.
//
// Configurations:
//   exact (default)   phase-gated counters: x1 = phase-1 pre count,
//                     y1 = phase-2 post count, tag = both -> the update is
//                     exactly eq. (7) in integer form (eq. 12).
//   pre-both          x1 counts both phases (the raw hardware counter); the
//                     pre factor becomes h + h_hat ~ 2h.
//   hw-decay          y1 is a decaying trace instead of a counter. The
//                     paper explicitly uses the "built in post-synaptic
//                     trace counter" (adaptation 2); this variant shows why:
//                     at the sparse rates of real features, a decaying
//                     estimate of h_hat has usually died away by the end of
//                     the window and the update collapses toward depression.
//   no-gating         derivative gate (h', adaptation technique 1) removed.
//   no-stoch-round    learning-engine stochastic rounding disabled: most
//                     updates fall below one 8-bit LSB and learning stalls.

#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "core/trainer.hpp"

using namespace neuro;

namespace {

double run_config(const core::Prepared& prep, const core::EmstdpOptions& opt,
                  std::size_t epochs) {
    auto net = core::build_chip_network(prep, opt);
    common::Rng rng(42);
    for (std::size_t e = 0; e < epochs; ++e) core::train_epoch(*net, prep.train, rng);
    return core::evaluate(*net, prep.test);
}

}  // namespace

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto train_n = static_cast<std::size_t>(cli.get_int("train", 500));
    const auto test_n = static_cast<std::size_t>(cli.get_int("test", 200));
    const auto epochs = static_cast<std::size_t>(cli.get_int("epochs", 2));

    bench::banner("Ablation D — update-rule fidelity variants",
                  "paper Sec. III-B / Fig. 2 (adaptation techniques 1 and 2)",
                  std::to_string(train_n) + " train samples, " +
                      std::to_string(epochs) + " epochs, DFA, synthetic digits");

    core::ExperimentSpec spec;
    spec.dataset = "digits";
    spec.train_count = train_n;
    spec.test_count = test_n;
    spec.ann_epochs = 3;
    spec.seed = 13;
    const auto prep = core::prepare(spec);

    struct Config {
        const char* name;
        core::EmstdpOptions opt;
    };
    std::vector<Config> configs;
    {
        core::EmstdpOptions base;
        base.seed = 7;
        configs.push_back({"exact (phase-gated counters)", base});
        auto both = base;
        both.pre_window = loihi::TraceWindow::Both;
        configs.push_back({"pre-both (raw pre counter)", both});
        auto hw = base;
        hw.hw_trace_approx = true;
        hw.pre_window = loihi::TraceWindow::Both;
        configs.push_back({"hw-decay (decaying post trace)", hw});
        auto nogate = base;
        nogate.derivative_gating = false;
        configs.push_back({"no-gating (h' removed)", nogate});
        auto nostoch = base;
        nostoch.stochastic_rounding = false;
        configs.push_back({"no-stoch-round", nostoch});
    }

    common::Table table({"configuration", "accuracy"});
    common::CsvWriter csv(bench::kCsvDir, "ablation_update_rule",
                          {"config", "accuracy"});
    for (const auto& c : configs) {
        const double acc = run_config(prep, c.opt, epochs);
        table.add_row({c.name, common::Table::pct(acc)});
        csv.add_row({c.name, std::to_string(acc)});
        std::printf("[%s] %.1f%%\n", c.name, acc * 100.0);
        std::fflush(stdout);
    }

    std::printf("\n");
    table.print();
    std::printf("\nCSV: %s\n", csv.write().c_str());
    bench::footnote(
        "shape checks: the raw both-phase pre counter is a viable substitute "
        "for the phase-gated one (its factor-of-two rate inflation is "
        "compensated in the learning shift); the decaying-trace variant "
        "collapses at sparse feature rates — evidence for the paper's choice "
        "of trace *counters* plus two-phase epoch structuring (adaptation "
        "2); removing the h' gate costs accuracy. Stochastic rounding "
        "matters when eta*counts drops below one weight LSB (see "
        "loihi_learning_test); at this workload most updates are above it.");
    return 0;
}
