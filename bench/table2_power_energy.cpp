// Table II — Power and Energy.
//
// Paper (training / testing, batch 1, pretrained convs):
//             FPS   Power(W)  Energy(mJ/img) | FPS   Power(W)  Energy(mJ/img)
//   i7 8700   422   58        137            | 1536  58        37
//   RTX 5000  625   48        77             | 2857  47        16
//   Loihi     50    0.42      8.4            | 97    0.24      2.47
//
// This harness produces:
//  * Loihi-sim rows from the event-based energy model driven by measured
//    simulator activity on the paper network (10 neurons/core packing, the
//    operating point the paper chose from Fig. 3);
//  * a host-CPU row measured by wall-clock timing our own full-precision
//    implementation (with a configurable package-power constant, default
//    58 W to mirror the paper's i7-8700 TDP-class figure);
//  * the paper's reported rows for side-by-side comparison.
//
// Shape target: the neuromorphic rows sit 1-2 orders of magnitude below the
// general-purpose rows in both power and energy per image, while being
// 1-2 orders slower in throughput.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "core/trainer.hpp"

using namespace neuro;
using Clock = std::chrono::steady_clock;

namespace {

struct DeviceRow {
    std::string device;
    double train_fps, train_w, train_mj;
    double test_fps, test_w, test_mj;
};

void add(common::Table& t, common::CsvWriter& csv, const DeviceRow& r) {
    t.add_row({r.device, common::Table::fmt(r.train_fps, 0),
               common::Table::fmt(r.train_w, 3), common::Table::fmt(r.train_mj, 2),
               common::Table::fmt(r.test_fps, 0), common::Table::fmt(r.test_w, 3),
               common::Table::fmt(r.test_mj, 2)});
    csv.add_row({r.device, std::to_string(r.train_fps), std::to_string(r.train_w),
                 std::to_string(r.train_mj), std::to_string(r.test_fps),
                 std::to_string(r.test_w), std::to_string(r.test_mj)});
}

}  // namespace

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto samples = static_cast<std::size_t>(cli.get_int("samples", 24));
    const double host_power_w = cli.get_double("host-power", 58.0);

    bench::banner("Table II — FPS / power / energy per image, training & testing",
                  "paper Table II (Sec. IV-A2)",
                  std::to_string(samples) + " activity-measurement samples, paper "
                  "network on synthetic digits, 10 neurons/core");

    core::ExperimentSpec spec;
    spec.dataset = "digits";
    spec.train_count = 300;
    spec.test_count = 100;
    spec.ann_epochs = 1;
    spec.seed = 5;
    const auto prep = core::prepare(spec);

    const loihi::EnergyModelParams params;

    // ---- Loihi-sim rows (FA network = the paper's training build) ----------
    // All rows drive runtime sessions over compiled models; the energy
    // model consumes the session's activity counters.
    core::EmstdpOptions train_opt;
    train_opt.feedback = core::FeedbackMode::FA;
    train_opt.neurons_per_core = 10;
    auto train_sess = core::compile_chip_model(prep, train_opt)->open_session();
    const auto train_r =
        core::measure_energy(*train_sess, prep.train, samples, true, params);

    core::EmstdpOptions inf_opt = train_opt;
    inf_opt.inference_only = true;
    auto inf_sess = core::compile_chip_model(prep, inf_opt)->open_session();
    const auto test_r =
        core::measure_energy(*inf_sess, prep.train, samples, false, params);

    // DFA training build (lower core count; same throughput — Sec. IV-A3).
    core::EmstdpOptions dfa_opt = train_opt;
    dfa_opt.feedback = core::FeedbackMode::DFA;
    auto dfa_sess = core::compile_chip_model(prep, dfa_opt)->open_session();
    const auto dfa_r =
        core::measure_energy(*dfa_sess, prep.train, samples, true, params);

    // ---- Host CPU row: wall-clock of the full-precision backend ------------
    auto ref_sess =
        core::compile_reference_model(prep, reference::FeedbackMode::FA, 0.125f, 7)
            ->open_session();
    // Build the input tensors outside the timed region; what remains in the
    // timed loops is the backend itself plus its per-call rate-vector copy
    // (the session ABI's input conversion — part of driving the backend).
    std::vector<common::Tensor> ref_inputs;
    ref_inputs.reserve(prep.ref_train.size());
    for (const auto& s : prep.ref_train) ref_inputs.push_back(core::ref_tensor(s));
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < samples; ++i)
        ref_sess->train(ref_inputs[i % ref_inputs.size()],
                        prep.ref_train[i % prep.ref_train.size()].label);
    const auto t1 = Clock::now();
    for (std::size_t i = 0; i < samples; ++i)
        (void)ref_sess->predict(ref_inputs[i % ref_inputs.size()]);
    const auto t2 = Clock::now();
    const double host_train_s =
        std::chrono::duration<double>(t1 - t0).count() / static_cast<double>(samples);
    const double host_test_s =
        std::chrono::duration<double>(t2 - t1).count() / static_cast<double>(samples);

    common::Table table({"Device", "train FPS", "train P(W)", "train mJ/img",
                         "test FPS", "test P(W)", "test mJ/img"});
    common::CsvWriter csv(bench::kCsvDir, "table2_power_energy",
                          {"device", "train_fps", "train_w", "train_mj", "test_fps",
                           "test_w", "test_mj"});

    add(table, csv,
        {"host CPU (measured FP impl)", 1.0 / host_train_s, host_power_w,
         host_power_w * host_train_s * 1e3, 1.0 / host_test_s, host_power_w,
         host_power_w * host_test_s * 1e3});
    add(table, csv,
        {"Loihi-sim (FA)", train_r.fps, train_r.power_w,
         train_r.energy_per_sample_j * 1e3, test_r.fps, test_r.power_w,
         test_r.energy_per_sample_j * 1e3});
    add(table, csv,
        {"Loihi-sim (DFA)", dfa_r.fps, dfa_r.power_w,
         dfa_r.energy_per_sample_j * 1e3, test_r.fps, test_r.power_w,
         test_r.energy_per_sample_j * 1e3});

    std::printf("Measured (this run):\n");
    table.print();

    common::Table paper({"Device", "train FPS", "train P(W)", "train mJ/img",
                         "test FPS", "test P(W)", "test mJ/img"});
    paper.add_row({"i7 8700 (paper)", "422", "58", "137", "1536", "58", "37"});
    paper.add_row({"RTX 5000 (paper)", "625", "48", "77", "2857", "47", "16"});
    paper.add_row({"Loihi (paper)", "50", "0.42", "8.4", "97", "0.24", "2.47"});
    std::printf("\nPaper Table II (authors' testbed):\n");
    paper.print();

    std::printf("\nLoihi-sim core usage: FA train=%zu, DFA train=%zu, test=%zu\n",
                train_r.cores, dfa_r.cores, test_r.cores);
    std::printf("CSV: %s\n", csv.write().c_str());

    bench::footnote(
        "the Loihi-sim rows come from the calibrated event-based model "
        "(DESIGN.md Sec. 2); the host row uses wall-clock timing of this "
        "machine with an assumed package power (--host-power). Shape target: "
        "neuromorphic power/energy 1-2 orders below CPU/GPU; throughput 1-2 "
        "orders lower; training : testing FPS ~ 1 : 2 (2T vs T steps).");
    return 0;
}
