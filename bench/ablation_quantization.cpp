// Ablation A — weight precision.
//
// Paper Sec. IV-A1 attributes the Loihi-vs-full-precision accuracy gap to
// "the quantization error due to the limitation of 8 bit weights and
// computation in Loihi". This ablation sweeps the synaptic weight width of
// the simulated chip (conv stack re-quantized to match) and shows accuracy
// collapsing below 8 bits and saturating above — direct evidence for the
// paper's attribution. Results are averaged over seeds to suppress
// single-stream noise.

#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "core/trainer.hpp"
#include "snn/convert.hpp"

using namespace neuro;

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto train_n = static_cast<std::size_t>(cli.get_int("train", 500));
    const auto test_n = static_cast<std::size_t>(cli.get_int("test", 200));
    const auto epochs = static_cast<std::size_t>(cli.get_int("epochs", 2));

    bench::banner("Ablation A — synaptic weight precision sweep",
                  "paper Sec. IV-A1 (quantization attribution of the Table I gap)",
                  std::to_string(train_n) + " train samples, " +
                      std::to_string(epochs) + " epochs, DFA, synthetic digits, "
                      "mean of 2 seeds");

    core::ExperimentSpec spec;
    spec.dataset = "digits";
    spec.train_count = train_n;
    spec.test_count = test_n;
    spec.ann_epochs = 3;
    spec.seed = 3;
    const auto prep = core::prepare(spec);

    // Average the full-precision reference over the same seeds as the chip
    // runs so the comparison is seed-for-seed fair.
    const std::uint64_t seeds[] = {7, 9};
    double ref_acc = 0.0;
    for (std::uint64_t seed : seeds) {
        auto ref =
            core::build_reference(prep, reference::FeedbackMode::DFA, 0.125f, seed);
        ref_acc += core::run_reference(ref, prep, epochs, 42 + seed);
    }
    ref_acc /= static_cast<double>(std::size(seeds));

    common::Table table({"weight bits", "accuracy", "vs full precision"});
    common::CsvWriter csv(bench::kCsvDir, "ablation_quantization",
                          {"bits", "accuracy", "ref_accuracy"});
    // Calibration slice for re-quantizing the conv stack at each width.
    auto calib = prep.train;
    if (calib.samples.size() > 128) calib.samples.resize(128);

    for (int bits : {4, 6, 8, 10, 12}) {
        core::EmstdpOptions opt;
        opt.weight_bits = bits;
        // theta_dense doubles as the float->grid scale; scaling it with the
        // width keeps the representable *float* weight range constant so the
        // sweep varies only the resolution.
        opt.theta_dense = bits >= 8 ? 256 << (bits - 8) : 256 >> (8 - bits);
        // The frozen conv stack is quantized to the same width as the dense
        // synapses — the whole chip shares one weight precision.
        const auto stack =
            snn::convert_conv_stack(*prep.model, prep.topo, calib, 0.999f, bits);
        double acc = 0.0;
        for (std::uint64_t seed : seeds) {
            opt.seed = seed;
            core::EmstdpNetwork net(opt, prep.topo.in_c, prep.topo.in_h,
                                    prep.topo.in_w, &stack, {prep.topo.hidden},
                                    prep.topo.classes);
            common::Rng rng(static_cast<std::uint64_t>(42) + seed);
            for (std::size_t e = 0; e < epochs; ++e)
                core::train_epoch(net, prep.train, rng);
            acc += core::evaluate(net, prep.test);
        }
        acc /= static_cast<double>(std::size(seeds));
        table.add_row({std::to_string(bits), common::Table::pct(acc),
                       common::Table::fmt((acc - ref_acc) * 100.0, 1) + " pp"});
        csv.add_row({std::to_string(bits), std::to_string(acc),
                     std::to_string(ref_acc)});
        std::printf("[%d bits] %.1f%% (mean of %zu seeds)\n", bits, acc * 100.0,
                    std::size(seeds));
        std::fflush(stdout);
    }

    std::printf("\nfull-precision reference (same streams, mean): %.1f%%\n\n",
                ref_acc * 100.0);
    table.print();
    std::printf("\nCSV: %s\n", csv.write().c_str());
    bench::footnote(
        "shape check: accuracy collapses at 4 bits and saturates from ~8 "
        "bits upward; 8 bits (Loihi's width) is enough to stay within a few "
        "points of the wider-precision runs, matching the paper's Table I "
        "gap attribution. The float reference column is a separate "
        "implementation (different init/dynamics), so compare the *trend* "
        "across bit widths, not the absolute offset.");
    return 0;
}
