// Table I — Performance.
//
// Paper: accuracy of EMSTDP with FA and DFA on MNIST, Fashion-MNIST,
// MSTAR (10 class) and CIFAR-10, for the Loihi implementation (8-bit,
// quantized, resource-constrained) and the full-precision "Python" baseline.
//
//   Paper values:            FA                 DFA
//                      Loihi  Python(FP)  Loihi  Python(FP)
//   MNIST              94.5%  98.9%       94.7%  98.9%
//   Fashion-MNIST      84.3%  92.7%       84.8%  92.5%
//   MSTAR (10 class)   78.4%  83.5%       79.5%  83.3%
//   CIFAR10            61.6%  64.2%       62.2%  64.4%
//
// This harness runs the same pipeline on the synthetic dataset substitutes
// (DESIGN.md Sec. 2): conv stack pretrained offline and frozen, dense stack
// trained online (batch 1) on the simulated chip / in float. Absolute
// accuracies differ from the paper (different data); the reproduction
// targets are the *relationships*: FP >= Loihi (the 8-bit quantization
// cost), DFA ~ FA (slight DFA edge), and the dataset difficulty ordering.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "core/trainer.hpp"

using namespace neuro;

namespace {

struct Row {
    std::string dataset;
    double fa_chip = 0.0, fa_ref = 0.0, dfa_chip = 0.0, dfa_ref = 0.0;
};

struct PaperRow {
    const char* dataset;
    double fa_chip, fa_ref, dfa_chip, dfa_ref;
};

constexpr PaperRow kPaper[] = {
    {"digits (MNIST)", 0.945, 0.989, 0.947, 0.989},
    {"fashion (Fashion-MNIST)", 0.843, 0.927, 0.848, 0.925},
    {"sar (MSTAR 10-class)", 0.784, 0.835, 0.795, 0.833},
    {"cifar (CIFAR-10)", 0.616, 0.642, 0.622, 0.644},
};

constexpr std::uint64_t kSeeds[] = {7, 19};

// Both implementations run through the same runtime surface: compile an
// immutable model on the right backend, open a session, train online.
double run_chip(const core::Prepared& prep, core::FeedbackMode mode,
                std::size_t epochs) {
    double acc = 0.0;
    for (std::uint64_t seed : kSeeds) {
        core::EmstdpOptions opt;
        opt.feedback = mode;
        opt.seed = seed;
        const auto model = core::compile_chip_model(prep, opt);
        auto session = model->open_session();
        common::Rng rng(42 + seed);
        for (std::size_t e = 0; e < epochs; ++e)
            core::train_epoch(*session, prep.train, rng);
        acc += core::evaluate(*session, prep.test);
    }
    return acc / static_cast<double>(std::size(kSeeds));
}

double run_ref(const core::Prepared& prep, reference::FeedbackMode mode,
               std::size_t epochs) {
    double acc = 0.0;
    for (std::uint64_t seed : kSeeds) {
        const auto model = core::compile_reference_model(prep, mode, 0.125f, seed);
        auto session = model->open_session();
        acc += core::run_reference(*session, prep, epochs, 42 + seed);
    }
    return acc / static_cast<double>(std::size(kSeeds));
}

}  // namespace

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto train_n = static_cast<std::size_t>(cli.get_int("train", 600));
    const auto test_n = static_cast<std::size_t>(cli.get_int("test", 220));
    const auto epochs = static_cast<std::size_t>(cli.get_int("epochs", 3));
    const auto ann_epochs = static_cast<std::size_t>(cli.get_int("ann-epochs", 3));

    bench::banner("Table I — accuracy: {FA, DFA} x {Loihi-sim, full precision}",
                  "paper Table I (Sec. IV-A1)",
                  std::to_string(train_n) + " train / " + std::to_string(test_n) +
                      " test synthetic samples, " + std::to_string(epochs) +
                      " online epochs, mean of 2 seeds (paper: full datasets)");

    const char* datasets[] = {"digits", "fashion", "sar", "cifar"};
    std::vector<Row> rows;
    for (const char* ds : datasets) {
        core::ExperimentSpec spec;
        spec.dataset = ds;
        spec.train_count = train_n;
        spec.test_count = test_n;
        spec.ann_epochs = ann_epochs;
        spec.seed = 1;
        std::printf("[%s] preparing (synthesize + pretrain convs)...\n", ds);
        std::fflush(stdout);
        const auto prep = core::prepare(spec);
        std::printf("[%s] offline ANN upper bound: %.1f%%\n", ds,
                    prep.ann_test_accuracy * 100.0);
        std::fflush(stdout);

        Row row;
        row.dataset = ds;
        row.fa_ref = run_ref(prep, reference::FeedbackMode::FA, epochs);
        row.dfa_ref = run_ref(prep, reference::FeedbackMode::DFA, epochs);
        row.fa_chip = run_chip(prep, core::FeedbackMode::FA, epochs);
        row.dfa_chip = run_chip(prep, core::FeedbackMode::DFA, epochs);
        rows.push_back(row);
        std::printf("[%s] done: chip FA %.1f%% / FP FA %.1f%% / chip DFA %.1f%% / "
                    "FP DFA %.1f%%\n\n",
                    ds, row.fa_chip * 100, row.fa_ref * 100, row.dfa_chip * 100,
                    row.dfa_ref * 100);
        std::fflush(stdout);
    }

    common::Table table({"Dataset", "FA Loihi-sim", "FA Python(FP)", "DFA Loihi-sim",
                         "DFA Python(FP)"});
    common::Table paper({"Dataset", "FA Loihi", "FA Python(FP)", "DFA Loihi",
                         "DFA Python(FP)"});
    common::CsvWriter csv(bench::kCsvDir, "table1_accuracy",
                          {"dataset", "fa_chip", "fa_ref", "dfa_chip", "dfa_ref"});
    bench::JsonWriter json(bench::kCsvDir, "table1_accuracy",
                           {"dataset", "fa_chip", "fa_ref", "dfa_chip", "dfa_ref"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        table.add_row({r.dataset, common::Table::pct(r.fa_chip),
                       common::Table::pct(r.fa_ref), common::Table::pct(r.dfa_chip),
                       common::Table::pct(r.dfa_ref)});
        paper.add_row({kPaper[i].dataset, common::Table::pct(kPaper[i].fa_chip),
                       common::Table::pct(kPaper[i].fa_ref),
                       common::Table::pct(kPaper[i].dfa_chip),
                       common::Table::pct(kPaper[i].dfa_ref)});
        const std::vector<std::string> cells = {
            r.dataset, std::to_string(r.fa_chip), std::to_string(r.fa_ref),
            std::to_string(r.dfa_chip), std::to_string(r.dfa_ref)};
        csv.add_row(cells);
        json.add_row(cells);
    }
    std::printf("Measured (synthetic substitutes, this run):\n");
    table.print();
    std::printf("\nPaper Table I (real datasets, Loihi silicon):\n");
    paper.print();
    std::printf("\nCSV: %s\nJSON: %s\n", csv.write().c_str(),
                json.write().c_str());

    bench::footnote(
        "shape checks: (1) full precision >= Loihi-sim per column (8-bit "
        "quantization cost), (2) DFA roughly matches or beats FA, (3) dataset "
        "ordering digits > fashion/sar > cifar. Absolute values are not "
        "comparable to the paper because the datasets are synthetic "
        "substitutes (DESIGN.md Sec. 2).");
    return 0;
}
