// Microbenchmarks of the end-to-end EMSTDP sample path on the paper network
// (google-benchmark): host-side simulation cost of one training sample
// (2T steps + learning epoch) and one inference sample (T steps), for FA
// and DFA. These are *simulator* costs, not modeled chip times — the chip
// times come from the energy model (Table II bench).

#include <benchmark/benchmark.h>

#include "core/experiment.hpp"

using namespace neuro;

namespace {

const core::Prepared& prep() {
    static const core::Prepared p = [] {
        core::ExperimentSpec spec;
        spec.dataset = "digits";
        spec.train_count = 64;
        spec.test_count = 16;
        spec.ann_epochs = 1;
        spec.seed = 2;
        return core::prepare(spec);
    }();
    return p;
}

void BM_TrainSampleDFA(benchmark::State& state) {
    core::EmstdpOptions opt;
    opt.feedback = core::FeedbackMode::DFA;
    auto net = core::build_chip_network(prep(), opt);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& s = prep().train.samples[i++ % prep().train.size()];
        net->train_sample(s.image, s.label);
    }
}
BENCHMARK(BM_TrainSampleDFA)->Unit(benchmark::kMillisecond);

void BM_TrainSampleFA(benchmark::State& state) {
    core::EmstdpOptions opt;
    opt.feedback = core::FeedbackMode::FA;
    auto net = core::build_chip_network(prep(), opt);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& s = prep().train.samples[i++ % prep().train.size()];
        net->train_sample(s.image, s.label);
    }
}
BENCHMARK(BM_TrainSampleFA)->Unit(benchmark::kMillisecond);

void BM_InferenceSample(benchmark::State& state) {
    core::EmstdpOptions opt;
    opt.inference_only = true;
    auto net = core::build_chip_network(prep(), opt);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& s = prep().train.samples[i++ % prep().train.size()];
        benchmark::DoNotOptimize(net->predict(s.image));
    }
}
BENCHMARK(BM_InferenceSample)->Unit(benchmark::kMillisecond);

void BM_ReferenceTrainSample(benchmark::State& state) {
    auto ref = core::build_reference(prep(), reference::FeedbackMode::DFA, 0.125f, 7);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& s = prep().ref_train[i++ % prep().ref_train.size()];
        ref.train_sample(s.rates, s.label);
    }
}
BENCHMARK(BM_ReferenceTrainSample)->Unit(benchmark::kMillisecond);

void BM_NetworkConstruction(benchmark::State& state) {
    for (auto _ : state) {
        core::EmstdpOptions opt;
        auto net = core::build_chip_network(prep(), opt);
        benchmark::DoNotOptimize(net);
    }
}
BENCHMARK(BM_NetworkConstruction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
