#pragma once
// Shared helpers for the bench binaries: uniform banners, paper-value
// annotations, and CSV/JSON output location. CSV is the human/plotting
// format; JSON (one array of row objects per bench) is the machine-tracked
// format CI and cross-PR perf tooling consume.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace neuro::bench {

inline constexpr const char* kCsvDir = "bench_results";

/// Prints the standard bench banner: what is being reproduced, at what
/// scale, and what the comparison target is.
inline void banner(const std::string& title, const std::string& paper_ref,
                   const std::string& scale_note) {
    std::printf("================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    if (!scale_note.empty()) std::printf("Scale: %s\n", scale_note.c_str());
    std::printf("================================================================\n\n");
}

inline void footnote(const std::string& text) {
    std::printf("\nNote: %s\n", text.c_str());
}

/// Accumulates rows and writes them to `<dir>/<name>.json` as an array of
/// objects keyed by the header, creating the directory if needed. Cells
/// that parse as finite numbers are emitted as JSON numbers, everything
/// else as escaped strings — so downstream tooling can consume the series
/// without per-bench schemas. Mirrors common::CsvWriter's interface so a
/// bench can feed both writers the same rows.
class JsonWriter {
public:
    JsonWriter(std::string dir, std::string name, std::vector<std::string> keys)
        : dir_(std::move(dir)), name_(std::move(name)), keys_(std::move(keys)) {}

    void add_row(std::vector<std::string> values) {
        if (values.size() != keys_.size())
            throw std::invalid_argument("JsonWriter: row width mismatch");
        rows_.push_back(std::move(values));
    }

    /// Flushes to disk; returns the file path. Safe to call once at the end.
    std::string write() const {
        std::filesystem::create_directories(dir_);
        const std::string path = dir_ + "/" + name_ + ".json";
        std::ofstream out(path);
        if (!out) throw std::runtime_error("JsonWriter: cannot open " + path);
        out << "[\n";
        for (std::size_t r = 0; r < rows_.size(); ++r) {
            out << "  {";
            for (std::size_t k = 0; k < keys_.size(); ++k) {
                out << quote(keys_[k]) << ": " << cell(rows_[r][k]);
                if (k + 1 < keys_.size()) out << ", ";
            }
            out << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
        }
        out << "]\n";
        return path;
    }

private:
    static std::string quote(const std::string& s) {
        std::string q = "\"";
        for (const char c : s) {
            switch (c) {
                case '"': q += "\\\""; break;
                case '\\': q += "\\\\"; break;
                case '\n': q += "\\n"; break;
                case '\t': q += "\\t"; break;
                default:
                    if (static_cast<unsigned char>(c) < 0x20) {
                        char buf[8];
                        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                        q += buf;
                    } else {
                        q += c;
                    }
            }
        }
        return q + "\"";
    }

    /// Strict JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    /// — deliberately narrower than strtod (no hex, no leading '.', no '+',
    /// no inf/nan), so a pass-through cell is always valid JSON.
    static bool is_json_number(const std::string& s) {
        std::size_t i = 0;
        const auto digit = [&](std::size_t k) {
            return k < s.size() && s[k] >= '0' && s[k] <= '9';
        };
        const auto digits = [&]() {
            std::size_t n = 0;
            while (digit(i)) ++i, ++n;
            return n;
        };
        if (i < s.size() && s[i] == '-') ++i;
        if (i < s.size() && s[i] == '0')
            ++i;  // a leading zero must stand alone
        else if (digits() == 0)
            return false;
        if (i < s.size() && s[i] == '.') {
            ++i;
            if (digits() == 0) return false;
        }
        if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
            ++i;
            if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
            if (digits() == 0) return false;
        }
        return i == s.size();
    }

    /// Numbers pass through raw (JSON numbers); everything else becomes an
    /// escaped string.
    static std::string cell(const std::string& s) {
        return !s.empty() && is_json_number(s) ? s : quote(s);
    }

    std::string dir_;
    std::string name_;
    std::vector<std::string> keys_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace neuro::bench
