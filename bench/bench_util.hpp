#pragma once
// Shared helpers for the bench binaries: uniform banners, paper-value
// annotations and CSV output location.

#include <cstdio>
#include <string>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace neuro::bench {

inline constexpr const char* kCsvDir = "bench_results";

/// Prints the standard bench banner: what is being reproduced, at what
/// scale, and what the comparison target is.
inline void banner(const std::string& title, const std::string& paper_ref,
                   const std::string& scale_note) {
    std::printf("================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    if (!scale_note.empty()) std::printf("Scale: %s\n", scale_note.c_str());
    std::printf("================================================================\n\n");
}

inline void footnote(const std::string& text) {
    std::printf("\nNote: %s\n", text.c_str());
}

}  // namespace neuro::bench
