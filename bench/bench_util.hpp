#pragma once
// Shared helpers for the bench binaries: uniform banners, paper-value
// annotations, and CSV/JSON output location. CSV is the human/plotting
// format; JSON (one array of row objects per bench) is the machine-tracked
// format CI and cross-PR perf tooling consume.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/json.hpp"
#include "common/table.hpp"

namespace neuro::bench {

inline constexpr const char* kCsvDir = "bench_results";

/// Prints the standard bench banner: what is being reproduced, at what
/// scale, and what the comparison target is.
inline void banner(const std::string& title, const std::string& paper_ref,
                   const std::string& scale_note) {
    std::printf("================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    if (!scale_note.empty()) std::printf("Scale: %s\n", scale_note.c_str());
    std::printf("================================================================\n\n");
}

inline void footnote(const std::string& text) {
    std::printf("\nNote: %s\n", text.c_str());
}

/// Accumulates rows and writes them to `<dir>/<name>.json` as an array of
/// objects keyed by the header, creating the directory if needed. Cells
/// that parse as finite numbers are emitted as JSON numbers, everything
/// else as escaped strings — so downstream tooling can consume the series
/// without per-bench schemas. Mirrors common::CsvWriter's interface so a
/// bench can feed both writers the same rows.
class JsonWriter {
public:
    JsonWriter(std::string dir, std::string name, std::vector<std::string> keys)
        : dir_(std::move(dir)), name_(std::move(name)), keys_(std::move(keys)) {}

    void add_row(std::vector<std::string> values) {
        if (values.size() != keys_.size())
            throw std::invalid_argument("JsonWriter: row width mismatch");
        rows_.push_back(std::move(values));
    }

    /// Flushes to disk; returns the file path. Safe to call once at the end.
    std::string write() const {
        std::filesystem::create_directories(dir_);
        const std::string path = dir_ + "/" + name_ + ".json";
        std::ofstream out(path);
        if (!out) throw std::runtime_error("JsonWriter: cannot open " + path);
        out << "[\n";
        for (std::size_t r = 0; r < rows_.size(); ++r) {
            out << "  {";
            for (std::size_t k = 0; k < keys_.size(); ++k) {
                // Escaping/number rules live in common/json.hpp, shared
                // with serve::stats_to_json and the netd control socket.
                out << common::json_quote(keys_[k]) << ": "
                    << common::json_cell(rows_[r][k]);
                if (k + 1 < keys_.size()) out << ", ";
            }
            out << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
        }
        out << "]\n";
        return path;
    }

private:
    std::string dir_;
    std::string name_;
    std::vector<std::string> keys_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace neuro::bench
