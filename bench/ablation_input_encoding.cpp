// Ablation B — input encoding (adaptation technique 4).
//
// Paper Sec. III-D: "Each spike insertion requires a communication between
// the host and the chip, thus a significant overhead. Instead of inserting
// spikes directly we program the biases of the input layer neurons ...
// Using this setup, we need to communicate with the chip only once for
// every input sample."
//
// This ablation runs the same training stream through both encodings and
// reports (a) host-I/O transactions per sample — the claimed saving — and
// (b) accuracy parity, since the bias integration generates exactly the
// spike train the host would have inserted.

#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "core/trainer.hpp"

using namespace neuro;

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto train_n = static_cast<std::size_t>(cli.get_int("train", 250));
    const auto test_n = static_cast<std::size_t>(cli.get_int("test", 120));

    bench::banner("Ablation B — bias programming vs host spike insertion",
                  "paper Sec. III-D (adaptation technique 4)",
                  std::to_string(train_n) + " train samples, 1 epoch, DFA, "
                  "synthetic digits");

    core::ExperimentSpec spec;
    spec.dataset = "digits";
    spec.train_count = train_n;
    spec.test_count = test_n;
    spec.ann_epochs = 2;
    spec.seed = 9;
    const auto prep = core::prepare(spec);

    common::Table table({"encoding", "accuracy", "host writes/sample",
                         "reduction"});
    common::CsvWriter csv(bench::kCsvDir, "ablation_input_encoding",
                          {"encoding", "accuracy", "writes_per_sample"});

    double writes_bias = 0.0;
    for (auto mode : {core::InputMode::BiasProgramming, core::InputMode::SpikeInsertion}) {
        const bool bias = mode == core::InputMode::BiasProgramming;
        core::EmstdpOptions opt;
        opt.input_mode = mode;
        opt.seed = 7;
        auto net = core::build_chip_network(prep, opt);
        common::Rng rng(42);
        net->chip().reset_activity();
        core::train_epoch(*net, prep.train, rng);
        const double writes =
            static_cast<double>(net->chip().activity().host_io_writes) /
            static_cast<double>(train_n);
        const double acc = core::evaluate(*net, prep.test);
        if (bias) writes_bias = writes;
        table.add_row({bias ? "bias programming (paper)" : "spike insertion",
                       common::Table::pct(acc), common::Table::fmt(writes, 0),
                       bias ? "1.0x"
                            : common::Table::fmt(writes / writes_bias, 1) + "x"});
        csv.add_row({bias ? "bias" : "spikes", std::to_string(acc),
                     std::to_string(writes)});
        std::printf("[%s] acc=%.1f%% writes/sample=%.0f\n",
                    bias ? "bias" : "spikes", acc * 100.0, writes);
        std::fflush(stdout);
    }

    std::printf("\n");
    table.print();
    std::printf("\nCSV: %s\n", csv.write().c_str());
    bench::footnote(
        "shape checks: accuracies agree to within noise (the encodings are "
        "spike-for-spike equivalent), while bias programming needs only one "
        "write per input neuron + label per sample and spike insertion needs "
        "one write per spike (roughly mean-pixel * T more).");
    return 0;
}
