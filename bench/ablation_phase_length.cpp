// Ablation E — phase length T.
//
// Paper Sec. IV-A2: "Reducing the duration of each phase will improve the
// throughput but also sacrifice the quality of learning." This ablation
// sweeps T and reports both sides of that trade-off: accuracy after a fixed
// training stream, and the modeled chip throughput/energy (a sample takes
// 2T steps when training).
//
// Mechanism behind the accuracy loss: spike counts quantize rates to 1/T,
// so both the forward code and the error representation coarsen; at T = 16
// a rate difference below 1/16 is invisible to the update rule.

#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "core/trainer.hpp"

using namespace neuro;

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto train_n = static_cast<std::size_t>(cli.get_int("train", 500));
    const auto test_n = static_cast<std::size_t>(cli.get_int("test", 200));
    const auto epochs = static_cast<std::size_t>(cli.get_int("epochs", 2));

    bench::banner("Ablation E — phase length T: accuracy vs throughput",
                  "paper Sec. IV-A2 (throughput/quality trade-off claim)",
                  std::to_string(train_n) + " train samples, " +
                      std::to_string(epochs) + " epochs, DFA, synthetic digits");

    core::ExperimentSpec spec;
    spec.dataset = "digits";
    spec.train_count = train_n;
    spec.test_count = test_n;
    spec.ann_epochs = 3;
    spec.seed = 4;
    const auto prep = core::prepare(spec);
    const loihi::EnergyModelParams params;

    common::Table table({"T", "accuracy", "train FPS", "energy (mJ/img)",
                         "rate resolution"});
    common::CsvWriter csv(bench::kCsvDir, "ablation_phase_length",
                          {"T", "accuracy", "fps", "energy_mj"});
    for (std::int32_t T : {16, 32, 64, 96}) {
        core::EmstdpOptions opt;
        opt.phase_length = T;
        // Keep the operating point self-consistent across the sweep: spike
        // counts scale with T, so the dense threshold must scale with T to
        // hold the *rate* regime fixed (theta = 4T reproduces the default
        // 256 at T = 64). Only the rate resolution 1/T then varies.
        opt.theta_dense = 4 * T;
        opt.seed = 7;
        auto net = core::build_chip_network(prep, opt);
        common::Rng rng(42);
        for (std::size_t e = 0; e < epochs; ++e)
            core::train_epoch(*net, prep.train, rng);
        const double acc = core::evaluate(*net, prep.test);
        const auto r = core::measure_energy(*net, prep.train, 8, true, params);
        table.add_row({std::to_string(T), common::Table::pct(acc),
                       common::Table::fmt(r.fps, 1),
                       common::Table::fmt(r.energy_per_sample_j * 1e3, 2),
                       "1/" + std::to_string(T)});
        csv.add_row({std::to_string(T), std::to_string(acc), std::to_string(r.fps),
                     std::to_string(r.energy_per_sample_j * 1e3)});
        std::printf("[T=%d] acc=%.1f%% fps=%.1f\n", T, acc * 100.0, r.fps);
        std::fflush(stdout);
    }

    std::printf("\n");
    table.print();
    std::printf("\nCSV: %s\n", csv.write().c_str());
    bench::footnote(
        "the throughput/energy side of the paper's claim reproduces exactly "
        "(FPS ~ 1/T, energy ~ T). The accuracy side does NOT reproduce at "
        "this miniature training scale: shorter phases match or beat longer "
        "ones here, the coarse rate code acting as beneficial update noise "
        "when samples are scarce and long runs at T = 64 showing mild drift. "
        "The paper's quality claim concerns full-dataset training where rate "
        "resolution is the binding constraint; treat this ablation as an "
        "honest scale-dependence record (see EXPERIMENTS.md).");
    return 0;
}
