// Contract tests for neuro::serve (the async serving engine):
//   * micro-batch coalescing semantics (collect_batch),
//   * batched serving bit-identical to sequential Session inference,
//   * backpressure — Shed rejects deterministically, Block waits,
//   * drain-on-shutdown completes every accepted request,
//   * error isolation (a bad request doesn't take the worker down),
//   * latency-histogram percentile math,
//   * concurrent submitters (run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/tensor.hpp"
#include "data/dataset.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"

using namespace neuro;
using common::BoundedQueue;

namespace {

std::shared_ptr<const runtime::CompiledModel> make_model() {
    runtime::ModelSpec spec;
    spec.input(1, 12, 12).hidden_layers({40}).output_classes(10);
    return runtime::CompiledModel::compile(spec,
                                           runtime::BackendKind::LoihiSim);
}

data::Dataset make_images(std::size_t n) {
    data::GenOptions gen;
    gen.count = n;
    gen.seed = 21;
    gen.height = 12;
    gen.width = 12;
    return data::make_digits(gen);
}

}  // namespace

// ---- scheduler --------------------------------------------------------------

TEST(Scheduler, FullBatchDispatchesWithoutWaitingOutTheDelay) {
    BoundedQueue<int> q(16);
    for (int i = 0; i < 8; ++i) {
        int v = i;
        ASSERT_TRUE(q.push(v));
    }
    const serve::BatchPolicy policy{4, 2'000'000};  // 2s delay must NOT matter
    std::vector<int> out;
    const auto t0 = std::chrono::steady_clock::now();
    ASSERT_TRUE(serve::collect_batch(q, policy, out));
    EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(1));
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
    ASSERT_TRUE(serve::collect_batch(q, policy, out));
    EXPECT_EQ(out, (std::vector<int>{4, 5, 6, 7}));
}

TEST(Scheduler, PartialBatchDispatchesOnDelayExpiry) {
    BoundedQueue<int> q(16);
    for (int i = 0; i < 2; ++i) {
        int v = i;
        ASSERT_TRUE(q.push(v));
    }
    const serve::BatchPolicy policy{8, 3000};  // 3ms, queue stays short
    std::vector<int> out;
    ASSERT_TRUE(serve::collect_batch(q, policy, out));
    EXPECT_EQ(out, (std::vector<int>{0, 1}));
}

TEST(Scheduler, MaxBatchOneNeverCoalesces) {
    BoundedQueue<int> q(4);
    int v = 7;
    ASSERT_TRUE(q.push(v));
    v = 8;
    ASSERT_TRUE(q.push(v));
    const serve::BatchPolicy policy{1, 2'000'000};
    std::vector<int> out;
    ASSERT_TRUE(serve::collect_batch(q, policy, out));
    EXPECT_EQ(out, std::vector<int>{7});
}

TEST(Scheduler, ClosedAndDrainedQueueEndsTheLoop) {
    BoundedQueue<int> q(4);
    int v = 1;
    ASSERT_TRUE(q.push(v));
    q.close();
    const serve::BatchPolicy policy{8, 1000};
    std::vector<int> out;
    ASSERT_TRUE(serve::collect_batch(q, policy, out));  // drains the leftover
    EXPECT_EQ(out, std::vector<int>{1});
    EXPECT_FALSE(serve::collect_batch(q, policy, out));  // worker exit signal
    EXPECT_TRUE(out.empty());
}

// ---- determinism ------------------------------------------------------------

TEST(Server, BatchedServingBitIdenticalToSequentialSessions) {
    const auto model = make_model();
    const auto images = make_images(24);

    auto ref = model->open_session();
    std::vector<std::size_t> want_label;
    std::vector<std::vector<std::int32_t>> want_counts;
    for (const auto& s : images.samples) {
        want_label.push_back(ref->predict(s.image));
        want_counts.push_back(ref->output_counts(s.image));
    }

    struct Config {
        std::size_t workers, batch;
    };
    for (const Config cfg : {Config{1, 1}, Config{3, 4}, Config{2, 16}}) {
        serve::ServerOptions opt;
        opt.workers = cfg.workers;
        opt.queue_capacity = 64;
        opt.batch.max_batch = cfg.batch;
        opt.batch.max_delay_us = 500;
        serve::Server server(model, opt);
        server.start();

        std::vector<serve::InferenceHandle> predicts, counts;
        for (const auto& s : images.samples) {
            predicts.push_back(server.submit(s.image));
            counts.push_back(server.submit_counts(s.image));
        }
        for (std::size_t i = 0; i < images.size(); ++i) {
            auto p = predicts[i].get();
            ASSERT_EQ(p.status, serve::Status::Ok);
            EXPECT_EQ(p.label, want_label[i])
                << "workers=" << cfg.workers << " batch=" << cfg.batch;
            EXPECT_GE(p.batch_size, 1u);
            EXPECT_LE(p.batch_size, cfg.batch);
            auto c = counts[i].get();
            ASSERT_EQ(c.status, serve::Status::Ok);
            EXPECT_EQ(c.counts, want_counts[i]);
        }
        server.shutdown();
        const auto stats = server.stats();
        EXPECT_EQ(stats.accepted, 2 * images.size());
        EXPECT_EQ(stats.completed, 2 * images.size());
        EXPECT_EQ(stats.rejected, 0u);
        EXPECT_EQ(stats.errors, 0u);
    }
}

// ---- backpressure -----------------------------------------------------------

TEST(Server, ShedPolicyRejectsExactlyTheOverflowBeforeStart) {
    const auto model = make_model();
    const auto images = make_images(1);
    serve::ServerOptions opt;
    opt.workers = 1;
    opt.queue_capacity = 2;
    opt.backpressure = serve::Backpressure::Shed;
    serve::Server server(model, opt);  // workers idle until start()

    std::vector<serve::InferenceHandle> handles;
    for (int i = 0; i < 5; ++i)
        handles.push_back(server.submit(images.samples[0].image));

    // Queue holds 2: requests 2..4 must already be complete as Rejected,
    // with the intake-specific reason (shed, not head-dropped).
    for (int i = 2; i < 5; ++i) {
        ASSERT_TRUE(handles[static_cast<std::size_t>(i)].ready());
        auto r = handles[static_cast<std::size_t>(i)].get();
        EXPECT_EQ(r.status, serve::Status::Rejected);
        EXPECT_EQ(r.reject, serve::RejectReason::QueueFull);
    }
    server.shutdown();  // auto-starts and drains the two accepted requests
    for (int i = 0; i < 2; ++i)
        EXPECT_EQ(handles[static_cast<std::size_t>(i)].get().status,
                  serve::Status::Ok);
    const auto stats = server.stats();
    EXPECT_EQ(stats.accepted, 2u);
    EXPECT_EQ(stats.rejected, 3u);
    EXPECT_EQ(stats.completed, 2u);
}

TEST(Server, BlockPolicyWaitsForSpaceInsteadOfShedding) {
    const auto model = make_model();
    const auto images = make_images(1);
    serve::ServerOptions opt;
    opt.workers = 1;
    opt.queue_capacity = 1;
    opt.backpressure = serve::Backpressure::Block;
    serve::Server server(model, opt);

    std::atomic<int> submitted{0};
    std::vector<serve::InferenceHandle> handles(3);
    std::thread producer([&] {
        for (int i = 0; i < 3; ++i) {
            handles[static_cast<std::size_t>(i)] =
                server.submit(images.samples[0].image);
            submitted.fetch_add(1);
        }
    });
    // With no workers running and capacity 1, the producer can complete at
    // most one submit; the second blocks inside the queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_LE(submitted.load(), 1);

    server.start();
    producer.join();
    EXPECT_EQ(submitted.load(), 3);
    for (auto& h : handles) EXPECT_EQ(h.get().status, serve::Status::Ok);
    server.shutdown();
    EXPECT_EQ(server.stats().rejected, 0u);
    EXPECT_EQ(server.stats().completed, 3u);
}

// ---- shutdown ---------------------------------------------------------------

TEST(Server, ShutdownDrainsEveryAcceptedRequest) {
    const auto model = make_model();
    const auto images = make_images(4);
    serve::ServerOptions opt;
    opt.workers = 2;
    opt.queue_capacity = 64;
    opt.batch.max_batch = 8;
    serve::Server server(model, opt);

    std::vector<serve::InferenceHandle> handles;
    for (int i = 0; i < 20; ++i)
        handles.push_back(
            server.submit(images.samples[static_cast<std::size_t>(i) % 4].image));
    server.shutdown();
    for (auto& h : handles) EXPECT_EQ(h.get().status, serve::Status::Ok);

    // After shutdown the intake is closed: immediate rejection.
    auto late = server.submit(images.samples[0].image);
    ASSERT_TRUE(late.ready());
    auto late_result = late.get();
    EXPECT_EQ(late_result.status, serve::Status::Rejected);
    EXPECT_EQ(late_result.reject, serve::RejectReason::Shutdown);
    EXPECT_FALSE(server.running());
    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, 20u);
    EXPECT_EQ(stats.rejected, 1u);
    // shutdown() twice is harmless.
    server.shutdown();
}

// ---- error isolation --------------------------------------------------------

TEST(Server, BadRequestCompletesWithErrorAndWorkerSurvives) {
    const auto model = make_model();
    const auto images = make_images(1);
    serve::ServerOptions opt;
    opt.workers = 1;
    serve::Server server(model, opt);
    server.start();

    common::Tensor wrong_size({3});  // backend throws invalid_argument
    auto bad = server.submit(wrong_size);
    auto good = server.submit(images.samples[0].image);
    const auto bad_result = bad.get();
    EXPECT_EQ(bad_result.status, serve::Status::Error);
    EXPECT_FALSE(bad_result.error.empty());
    EXPECT_EQ(good.get().status, serve::Status::Ok);
    server.shutdown();
    const auto stats = server.stats();
    EXPECT_EQ(stats.errors, 1u);
    EXPECT_EQ(stats.completed, 1u);
}

// ---- stats ------------------------------------------------------------------

TEST(LatencyHistogram, PercentilesAreMonotoneAndTight) {
    serve::LatencyHistogram h;
    for (int us = 1; us <= 1000; ++us) h.record(static_cast<double>(us));
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.max_us(), 1000.0);
    EXPECT_NEAR(h.mean_us(), 500.5, 1e-9);
    const double p50 = h.percentile(0.50);
    const double p95 = h.percentile(0.95);
    const double p99 = h.percentile(0.99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, h.max_us());
    // Upper-edge estimates err high by at most one sub-bucket (~6%).
    EXPECT_GE(p50, 500.0);
    EXPECT_LE(p50, 540.0);
    EXPECT_GE(p99, 990.0);
    // p100 clamps to the observed maximum.
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
}

TEST(LatencyHistogram, EmptyAndSubMicrosecond) {
    serve::LatencyHistogram h;
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    h.record(0.25);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_LE(h.percentile(0.5), 1.0);
}

TEST(Server, StatsInvariantsAfterLoad) {
    const auto model = make_model();
    const auto images = make_images(8);
    serve::ServerOptions opt;
    opt.workers = 2;
    opt.batch.max_batch = 4;
    serve::Server server(model, opt);
    server.start();
    std::vector<serve::InferenceHandle> handles;
    for (int i = 0; i < 32; ++i)
        handles.push_back(
            server.submit(images.samples[static_cast<std::size_t>(i) % 8].image));
    for (auto& h : handles) (void)h.get();
    server.shutdown();

    const auto s = server.stats();
    EXPECT_EQ(s.completed, 32u);
    EXPECT_GE(s.batches, 32u / opt.batch.max_batch);
    EXPECT_GE(s.mean_batch, 1.0);
    EXPECT_LE(s.max_batch, opt.batch.max_batch);
    EXPECT_LE(s.peak_queue_depth, opt.queue_capacity);
    EXPECT_GE(s.peak_queue_depth, 1u);
    EXPECT_LE(s.p50_us, s.p95_us);
    EXPECT_LE(s.p95_us, s.p99_us);
    EXPECT_LE(s.p99_us, s.max_us * 1.07);  // bucket upper-edge slack
    EXPECT_GT(s.elapsed_s, 0.0);
    EXPECT_GT(s.throughput_rps, 0.0);

    // Admission-layer stats under a no-overload run: everything rode the
    // default Interactive class, the sojourn histogram saw every dispatch,
    // and CoDel (disabled) never engaged.
    constexpr auto kInteractive =
        static_cast<std::size_t>(serve::Priority::Interactive);
    EXPECT_EQ(s.class_accepted[kInteractive], 32u);
    EXPECT_EQ(s.class_codel_dropped[kInteractive], 0u);
    EXPECT_EQ(s.class_deadline_dropped[kInteractive], 0u);
    EXPECT_EQ(s.codel_dropped, 0u);
    EXPECT_EQ(s.deadline_dropped, 0u);
    EXPECT_EQ(s.drop_state_entries, 0u);
    EXPECT_LE(s.sojourn_p50_us, s.sojourn_p95_us);
    EXPECT_LE(s.sojourn_p95_us, s.sojourn_p99_us);
    EXPECT_LE(s.sojourn_p99_us, s.sojourn_max_us * 1.07);
    // Queue wait is a component of end-to-end latency.
    EXPECT_LE(s.sojourn_p50_us, s.max_us);
}

// Per-class accounting: one request per class (feedback via its own
// intake), each attributed to the right AdmissionCounters slot.
TEST(Server, StatsAttributeAcceptsToTheSubmittedClass) {
    const auto model = make_model();
    const auto images = make_images(3);
    serve::ServerOptions opt;
    opt.workers = 1;
    opt.admission.feedback_capacity = 4;
    serve::Server server(model, opt);
    server.start();

    serve::SubmitOptions interactive;  // default class
    serve::SubmitOptions batch;
    batch.priority = serve::Priority::Batch;
    auto r0 = server.submit(images.samples[0].image, interactive).get();
    auto r1 = server.submit(images.samples[1].image, batch).get();
    ASSERT_TRUE(server.submit_feedback(images.samples[2].image, 1));
    EXPECT_EQ(r0.status, serve::Status::Ok);
    EXPECT_EQ(r0.priority, serve::Priority::Interactive);
    EXPECT_EQ(r1.status, serve::Status::Ok);
    EXPECT_EQ(r1.priority, serve::Priority::Batch);
    server.shutdown();

    const auto s = server.stats();
    constexpr auto kI = static_cast<std::size_t>(serve::Priority::Interactive);
    constexpr auto kB = static_cast<std::size_t>(serve::Priority::Batch);
    constexpr auto kF = static_cast<std::size_t>(serve::Priority::Feedback);
    EXPECT_EQ(s.class_accepted[kI], 1u);
    EXPECT_EQ(s.class_accepted[kB], 1u);
    EXPECT_EQ(s.class_accepted[kF], 1u);
    EXPECT_EQ(s.codel_dropped + s.deadline_dropped, 0u);
    EXPECT_EQ(s.feedback_dropped, 0u);
}

// ---- concurrency (run under TSan in CI) -------------------------------------

TEST(Server, ConcurrentSubmittersAllCompleteCorrectly) {
    const auto model = make_model();
    const auto images = make_images(6);
    auto ref = model->open_session();
    std::vector<std::size_t> want;
    for (const auto& s : images.samples) want.push_back(ref->predict(s.image));

    serve::ServerOptions opt;
    opt.workers = 2;
    opt.queue_capacity = 16;
    opt.batch.max_batch = 4;
    opt.batch.max_delay_us = 200;
    serve::Server server(model, opt);
    server.start();

    constexpr int kThreads = 4, kPerThread = 25;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t)
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const auto idx =
                    static_cast<std::size_t>(t * kPerThread + i) % images.size();
                auto r = server.submit(images.samples[idx].image).get();
                if (r.status != serve::Status::Ok || r.label != want[idx])
                    mismatches.fetch_add(1);
            }
        });
    for (auto& t : submitters) t.join();
    server.shutdown();

    EXPECT_EQ(mismatches.load(), 0);
    const auto stats = server.stats();
    EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(stats.completed,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(stats.rejected, 0u);
}
