// Cross-module integration tests: the full Table-I pipeline at miniature
// scale — synthetic dataset, offline conv pretraining, ANN->SNN conversion,
// on-chip online learning — plus the reference-vs-chip relationship and the
// Table-II energy relations on the real paper topology.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/trainer.hpp"

using namespace neuro::core;
using neuro::common::Rng;

namespace {

/// One shared miniature experiment (14x14 digits keep the conv stack and
/// every code path alive at a fraction of the runtime).
const Prepared& prep() {
    static const Prepared p = [] {
        ExperimentSpec spec;
        spec.dataset = "digits";
        spec.train_count = 400;
        spec.test_count = 150;
        spec.ann_epochs = 3;
        spec.seed = 21;
        return prepare(spec);
    }();
    return p;
}

}  // namespace

TEST(Pipeline, AnnPretrainingReachesHighAccuracy) {
    EXPECT_GT(prep().ann_test_accuracy, 0.85)
        << "offline CNN is the upper bound for everything downstream";
}

TEST(Pipeline, ReferenceLearnsFromConvFeatures) {
    auto ref = build_reference(prep(), neuro::reference::FeedbackMode::DFA,
                               0.125f, 7);
    const double acc = run_reference(ref, prep(), 2, 42);
    EXPECT_GT(acc, 0.6) << "FP reference on conv features";
}

TEST(Pipeline, ChipLearnsFromScratchOnline) {
    EmstdpOptions opt;
    opt.feedback = FeedbackMode::DFA;
    auto net = build_chip_network(prep(), opt);

    const double before = evaluate(*net, prep().test);
    Rng rng(42);
    train_epoch(*net, prep().train, rng);
    train_epoch(*net, prep().train, rng);
    train_epoch(*net, prep().train, rng);
    const double after = evaluate(*net, prep().test);
    EXPECT_GT(after, before + 0.3) << "on-chip training must improve accuracy";
    EXPECT_GT(after, 0.65);
}

TEST(Pipeline, MappingIsFeasibleOnOneChip) {
    EmstdpOptions opt;
    auto net = build_chip_network(prep(), opt);
    EXPECT_TRUE(net->chip().mapping().feasible);
    EXPECT_LE(net->costs().cores, 128u);
}

TEST(Pipeline, TableTwoRelationsHold) {
    // The qualitative content of Table II: training takes 2T steps vs T,
    // roughly halving FPS; the inference build uses fewer cores and less
    // power; energy per image is higher when training.
    EmstdpOptions train_opt;
    train_opt.feedback = FeedbackMode::FA;
    auto train_net = build_chip_network(prep(), train_opt);
    EmstdpOptions inf_opt = train_opt;
    inf_opt.inference_only = true;
    auto inf_net = build_chip_network(prep(), inf_opt);

    const neuro::loihi::EnergyModelParams params;
    const auto train_r = measure_energy(*train_net, prep().test, 10, true, params);
    const auto test_r = measure_energy(*inf_net, prep().test, 10, false, params);

    EXPECT_NEAR(test_r.fps / train_r.fps, 2.0, 0.2);
    EXPECT_LT(test_r.power_w, train_r.power_w);
    EXPECT_LT(test_r.energy_per_sample_j, train_r.energy_per_sample_j);
    // The headline claim: millijoules per image, sub-watt power.
    EXPECT_LT(train_r.power_w, 1.0);
    EXPECT_GT(train_r.energy_per_sample_j, 1e-4);
    EXPECT_LT(train_r.energy_per_sample_j, 0.1);
}

TEST(Pipeline, DfaTrainsWithLowerPowerThanFa) {
    // Fig. 3 claim: at the same neurons/core, DFA occupies fewer cores and
    // consumes less active power, with similar throughput.
    EmstdpOptions fa;
    fa.feedback = FeedbackMode::FA;
    EmstdpOptions dfa;
    dfa.feedback = FeedbackMode::DFA;
    auto fa_net = build_chip_network(prep(), fa);
    auto dfa_net = build_chip_network(prep(), dfa);

    const neuro::loihi::EnergyModelParams params;
    const auto fa_r = measure_energy(*fa_net, prep().test, 6, true, params);
    const auto dfa_r = measure_energy(*dfa_net, prep().test, 6, true, params);

    EXPECT_LT(dfa_r.cores, fa_r.cores);
    EXPECT_LT(dfa_r.power_w, fa_r.power_w);
    EXPECT_NEAR(dfa_r.fps, fa_r.fps, fa_r.fps * 0.15)
        << "similar throughput at the same neurons-per-core";
}
