// Unit tests for src/common: RNG determinism and distribution sanity,
// tensor algebra, fixed-point helpers, table/CSV rendering, CLI parsing,
// statistics, and the bounded MPMC queue.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/fixed.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/tensor.hpp"

using namespace neuro::common;

TEST(Rng, DeterministicStreams) {
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next_u64() == b.next_u64()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformMomentsAndRange) {
    Rng rng(7);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
        sq += u * u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
    EXPECT_NEAR(sq / n - 0.25, 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments) {
    Rng rng(9);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
    Rng rng(3);
    bool lo = false, hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        lo |= v == -2;
        hi |= v == 2;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, ShufflePermutes) {
    Rng rng(5);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
    auto w = v;
    rng.shuffle(w);
    std::sort(w.begin(), w.end());
    EXPECT_EQ(v, w);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng a(11);
    Rng child = a.split();
    // The child stream must not replay the parent's.
    Rng b(11);
    (void)b.next_u64();  // advance identically to the split call
    EXPECT_NE(child.next_u64(), b.next_u64());
}

TEST(Tensor, ShapeAndIndexing) {
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.size(), 24u);
    EXPECT_EQ(t.rank(), 3u);
    t.at3(1, 2, 3) = 5.0f;
    EXPECT_FLOAT_EQ(t[23], 5.0f);
    EXPECT_EQ(t.describe(), "Tensor[2x3x4]");
}

TEST(Tensor, ReshapePreservesCount) {
    Tensor t({4, 6});
    t.reshape({24});
    EXPECT_EQ(t.rank(), 1u);
    EXPECT_THROW(t.reshape({5}), std::invalid_argument);
}

TEST(Tensor, Arithmetic) {
    Tensor a({3});
    Tensor b({3});
    a.fill(2.0f);
    b.fill(1.5f);
    a += b;
    EXPECT_FLOAT_EQ(a[0], 3.5f);
    a -= b;
    EXPECT_FLOAT_EQ(a[1], 2.0f);
    a *= 2.0f;
    EXPECT_FLOAT_EQ(a[2], 4.0f);
    EXPECT_FLOAT_EQ(a.sum(), 12.0f);
    EXPECT_FLOAT_EQ(a.mean(), 4.0f);
}

TEST(Tensor, ArgmaxFirstOnTies) {
    Tensor t({4});
    t[0] = 1.0f;
    t[1] = 3.0f;
    t[2] = 3.0f;
    t[3] = 0.0f;
    EXPECT_EQ(t.argmax(), 1u);
}

TEST(Fixed, SaturateSigned) {
    EXPECT_EQ(saturate_signed(127, 8), 127);
    EXPECT_EQ(saturate_signed(128, 8), 127);
    EXPECT_EQ(saturate_signed(-128, 8), -128);
    EXPECT_EQ(saturate_signed(-129, 8), -128);
    EXPECT_EQ(saturate_signed(100000, 8), 127);
}

TEST(Fixed, SaturateUnsigned) {
    EXPECT_EQ(saturate_unsigned(127, 7), 127);
    EXPECT_EQ(saturate_unsigned(128, 7), 127);
    EXPECT_EQ(saturate_unsigned(-5, 7), 0);
}

TEST(Fixed, Decay12Extremes) {
    // delta = 0: perfect integrator. delta = 4096: clears in one step.
    EXPECT_EQ(decay12(1000, 0), 1000);
    EXPECT_EQ(decay12(1000, 4096), 0);
    // Halfway decay.
    EXPECT_EQ(decay12(1000, 2048), 500);
}

TEST(Fixed, QuantizeRoundTrip) {
    const float v = 0.37f;
    const auto q = quantize_signed(v, 1.0f, 8);
    EXPECT_NEAR(dequantize_signed(q, 1.0f, 8), v, 1.0f / 127.0f);
    EXPECT_EQ(quantize_signed(2.0f, 1.0f, 8), 127);   // saturates
    EXPECT_EQ(quantize_signed(-2.0f, 1.0f, 8), -128);
}

TEST(Table, AlignsAndFormats) {
    Table t({"name", "value"});
    t.add_row({"alpha", Table::fmt(1.5)});
    t.add_row({"b", Table::pct(0.945)});
    const std::string s = t.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
    EXPECT_NE(s.find("94.5%"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Csv, WritesEscapedFile) {
    const std::string dir = testing::TempDir() + "/neuro_csv_test";
    CsvWriter w(dir, "t", {"a", "b"});
    w.add_row({"x,y", "plain"});
    const std::string path = w.write();
    std::ifstream f(path);
    std::string line;
    std::getline(f, line);
    EXPECT_EQ(line, "a,b");
    std::getline(f, line);
    EXPECT_EQ(line, "\"x,y\",plain");
    std::filesystem::remove_all(dir);
}

TEST(Cli, ParsesKeysFlagsAndTypes) {
    const char* argv[] = {"prog", "--alpha=3", "--flag", "--rate=0.5",
                          "--name=test"};
    Cli cli(5, argv);
    EXPECT_FALSE(cli.error());
    EXPECT_EQ(cli.get_int("alpha", 0), 3);
    EXPECT_TRUE(cli.get_bool("flag", false));
    EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 0.5);
    EXPECT_EQ(cli.get("name", ""), "test");
    EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(Cli, RejectsPositional) {
    const char* argv[] = {"prog", "positional"};
    Cli cli(2, argv);
    EXPECT_TRUE(cli.error());
}

TEST(Stats, ConfusionAccuracyAndRecall) {
    Confusion c(3);
    c.add(0, 0);
    c.add(0, 1);
    c.add(1, 1);
    c.add(2, 2);
    EXPECT_DOUBLE_EQ(c.accuracy(), 0.75);
    EXPECT_DOUBLE_EQ(c.recall(0), 0.5);
    EXPECT_DOUBLE_EQ(c.recall(1), 1.0);
    EXPECT_DOUBLE_EQ(c.accuracy_over({0}), 0.5);
    EXPECT_DOUBLE_EQ(c.accuracy_over({1, 2}), 1.0);
    EXPECT_THROW(c.add(3, 0), std::out_of_range);
}

TEST(Stats, MeanStddevArgmax) {
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_NEAR(stddev({1.0, 2.0, 3.0}), 1.0, 1e-12);
    EXPECT_EQ(argmax(std::vector<double>{1.0, 5.0, 2.0}), 1u);
    EXPECT_EQ(argmax(std::vector<int>{3, 3, 1}), 0u);
}

TEST(BoundedQueue, FifoOrderAndSize) {
    BoundedQueue<int> q(4);
    EXPECT_EQ(q.capacity(), 4u);
    for (int i = 0; i < 4; ++i) {
        int v = i;
        EXPECT_TRUE(q.push(v));
    }
    EXPECT_EQ(q.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        int out = -1;
        EXPECT_TRUE(q.pop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, ZeroCapacityThrows) {
    EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

TEST(BoundedQueue, TryPushRefusesWhenFullAndKeepsValue) {
    BoundedQueue<std::unique_ptr<int>> q(1);
    auto a = std::make_unique<int>(1);
    EXPECT_EQ(q.try_push(a), BoundedQueue<std::unique_ptr<int>>::Push::Ok);
    EXPECT_EQ(a, nullptr);  // moved out on success
    auto b = std::make_unique<int>(2);
    EXPECT_EQ(q.try_push(b), BoundedQueue<std::unique_ptr<int>>::Push::Full);
    ASSERT_NE(b, nullptr);  // refused value stays with the caller
    EXPECT_EQ(*b, 2);
    q.close();
    EXPECT_EQ(q.try_push(b), BoundedQueue<std::unique_ptr<int>>::Push::Closed);
    ASSERT_NE(b, nullptr);
}

TEST(BoundedQueue, CloseDrainsAcceptedItemsThenRefuses) {
    BoundedQueue<int> q(8);
    for (int i = 0; i < 3; ++i) {
        int v = i;
        ASSERT_TRUE(q.push(v));
    }
    q.close();
    EXPECT_TRUE(q.closed());
    int v = 99;
    EXPECT_FALSE(q.push(v));
    int out = -1;
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(q.pop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(q.pop(out));  // closed and drained
}

TEST(BoundedQueue, PopUntilTimesOutOnEmpty) {
    BoundedQueue<int> q(2);
    int out = -1;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(q.pop_until(
        out, t0 + std::chrono::milliseconds(5)));
    EXPECT_GE(std::chrono::steady_clock::now() - t0,
              std::chrono::milliseconds(4));
}

TEST(BoundedQueue, BlockingPushUnblocksOnPop) {
    BoundedQueue<int> q(1);
    int v0 = 0;
    ASSERT_TRUE(q.push(v0));
    std::atomic<bool> second_pushed{false};
    std::thread producer([&] {
        int v1 = 1;
        ASSERT_TRUE(q.push(v1));  // blocks until the consumer pops
        second_pushed.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_FALSE(second_pushed.load());
    int out = -1;
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 0);
    producer.join();
    EXPECT_TRUE(second_pushed.load());
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 1);
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
    BoundedQueue<int> q(1);
    int v0 = 0;
    ASSERT_TRUE(q.push(v0));
    std::thread producer([&] {
        int v1 = 1;
        EXPECT_FALSE(q.push(v1));  // full, then woken by close: refused
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    producer.join();
    int out = -1;
    EXPECT_TRUE(q.pop(out));  // the accepted item still drains
    EXPECT_EQ(out, 0);
    EXPECT_FALSE(q.pop(out));
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
    BoundedQueue<int> q(1);
    std::thread consumer([&] {
        int out = -1;
        EXPECT_FALSE(q.pop(out));  // empty, then woken by close: drained
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    consumer.join();
}

TEST(BoundedQueue, MpmcStressDeliversEverythingOnce) {
    constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 250;
    BoundedQueue<int> q(16);
    std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
    for (auto& s : seen) s.store(0);
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p)
        threads.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                int v = p * kPerProducer + i;
                ASSERT_TRUE(q.push(v));
            }
        });
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c)
        consumers.emplace_back([&] {
            int out = -1;
            while (q.pop(out)) seen[static_cast<std::size_t>(out)]++;
        });
    for (auto& t : threads) t.join();
    q.close();
    for (auto& t : consumers) t.join();
    for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

// ---- latency histogram (moved here from serve; serve keeps an alias) --------

TEST(LatencyHistogram, PercentilesBoundedBySubBucketResolution) {
    LatencyHistogram h;
    for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.max_us(), 1000.0);
    EXPECT_NEAR(h.mean_us(), 500.5, 1e-9);
    // Log-bucketed estimates err high by at most one sub-bucket (~6%).
    EXPECT_GE(h.percentile(0.50), 500.0);
    EXPECT_LE(h.percentile(0.50), 500.0 * 1.07);
    EXPECT_GE(h.percentile(0.99), 990.0);
    EXPECT_LE(h.percentile(0.99), 1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
}

TEST(LatencyHistogram, EmptyAndSubMicrosecond) {
    LatencyHistogram h;
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    h.record(0.25);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_LE(h.percentile(0.99), 1.0);
}

// ---- randomized producer/consumer stress (seeded, satellite of the
// ---- admission-control PR; run under TSan in CI) ----------------------------

#include <map>
#include <mutex>

#include "serve/admission.hpp"
#include "serve/clock.hpp"

namespace {

// Encode (producer, sequence) so consumers can check per-producer FIFO
// without any out-of-band bookkeeping.
constexpr int kSeqBase = 1'000'000;
int encode(int producer, int seq) { return producer * kSeqBase + seq; }

}  // namespace

// Randomized (seeded ⇒ reproducible) MPMC interleavings: no accepted item
// is lost or duplicated, and items from one producer are consumed in the
// order that producer pushed them — the queue may interleave producers
// arbitrarily, but never reorders a single producer's stream.
TEST(BoundedQueueStress, SeededMpmcInterleavingsConserveItemsAndProducerFifo) {
    for (const std::uint64_t seed : {7ull, 21ull, 1968ull}) {
        Rng rng(seed);
        const int producers = static_cast<int>(rng.uniform_int(2, 4));
        const int consumers = static_cast<int>(rng.uniform_int(2, 4));
        const int per_producer = static_cast<int>(rng.uniform_int(200, 400));
        BoundedQueue<int> q(static_cast<std::size_t>(rng.uniform_int(1, 8)));

        std::vector<std::thread> threads;
        std::mutex consumed_m;
        std::vector<int> consumed;
        for (int p = 0; p < producers; ++p) {
            threads.emplace_back([&, p] {
                for (int s = 0; s < per_producer; ++s) {
                    int v = encode(p, s);
                    ASSERT_TRUE(q.push(v));  // Block mode: nothing is shed
                }
            });
        }
        std::atomic<int> remaining{producers * per_producer};
        for (int c = 0; c < consumers; ++c) {
            threads.emplace_back([&] {
                int out;
                std::vector<int> local;
                while (remaining.fetch_sub(1) > 0) {
                    if (!q.pop(out)) break;
                    local.push_back(out);
                }
                std::lock_guard<std::mutex> lock(consumed_m);
                consumed.insert(consumed.end(), local.begin(), local.end());
            });
        }
        // Consumers claim items via `remaining`, so exactly
        // producers*per_producer pops happen and every thread terminates.
        for (auto& t : threads) t.join();

        ASSERT_EQ(consumed.size(),
                  static_cast<std::size_t>(producers * per_producer))
            << "seed " << seed;
        // Conservation: each (producer, seq) appears exactly once.
        std::vector<int> sorted = consumed;
        std::sort(sorted.begin(), sorted.end());
        for (int p = 0, i = 0; p < producers; ++p)
            for (int s = 0; s < per_producer; ++s, ++i)
                ASSERT_EQ(sorted[static_cast<std::size_t>(i)], encode(p, s))
                    << "seed " << seed;
    }
}

// NOTE on FIFO-per-producer above: with multiple consumers, consumption
// order across consumers is not globally observable, so FIFO is asserted
// in the single-consumer variant below where the pop order IS the queue
// order.
TEST(BoundedQueueStress, SingleConsumerObservesPerProducerFifo) {
    Rng rng(4242);
    const int producers = 4;
    const int per_producer = 500;
    BoundedQueue<int> q(static_cast<std::size_t>(rng.uniform_int(2, 6)));

    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            for (int s = 0; s < per_producer; ++s) {
                int v = encode(p, s);
                ASSERT_TRUE(q.push(v));
            }
        });
    }
    std::vector<int> consumed;
    int out;
    for (int i = 0; i < producers * per_producer; ++i) {
        ASSERT_TRUE(q.pop(out));
        consumed.push_back(out);
    }
    for (auto& t : threads) t.join();

    std::map<int, int> next_seq;
    for (const int v : consumed) {
        const int p = v / kSeqBase;
        const int s = v % kSeqBase;
        ASSERT_EQ(s, next_seq[p]) << "producer " << p << " reordered";
        ++next_seq[p];
    }
}

// close() during a concurrent push storm: whatever the queue ACCEPTED is
// exactly what consumers drain — no accepted item vanishes, no refused
// item sneaks in.
TEST(BoundedQueueStress, CloseUnderConcurrentSubmittersDrainsExactlyAccepted) {
    BoundedQueue<int> q(4);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 300;
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<int> started{0};

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            started.fetch_add(1);
            for (int s = 0; s < kPerProducer; ++s) {
                int v = encode(p, s);
                if (q.try_push(v) == BoundedQueue<int>::Push::Ok)
                    accepted.fetch_add(1);
            }
        });
    }
    std::uint64_t consumed = 0;
    std::thread consumer([&] {
        int out;
        while (q.pop(out)) ++consumed;
    });
    while (started.load() < kProducers) std::this_thread::yield();
    q.close();  // races with in-flight try_push calls by design
    for (auto& t : producers) t.join();
    consumer.join();
    EXPECT_EQ(consumed, accepted.load());
}

// The same conservation law for the admission queue, with drops in the
// balance: accepted == admitted + dropped, every drop carries the right
// cause, and within one class a single consumer observes producer FIFO.
TEST(AdmissionQueueStress, ConcurrentProducersConserveEntriesAcrossClasses) {
    using neuro::serve::Admitted;
    using neuro::serve::AdmissionQueue;
    using neuro::serve::DropCause;
    using neuro::serve::Dropped;
    using neuro::serve::Priority;

    auto clk = std::make_shared<neuro::serve::ManualClock>();
    clk->set_us(1'000);
    AdmissionQueue<int> q(8, neuro::serve::AdmissionConfig{}, clk);

    constexpr int kProducers = 3;  // one per priority class
    constexpr int kPerProducer = 400;
    std::vector<std::thread> producers;
    std::atomic<std::uint64_t> expired_pushed{0};
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            Rng rng(100 + static_cast<std::uint64_t>(p));
            const auto cls = static_cast<Priority>(p);
            for (int s = 0; s < kPerProducer; ++s) {
                int v = encode(p, s);
                // ~25% of entries carry an already-expired deadline (the
                // clock is frozen at 1000, the deadline is 500): they must
                // surface as DeadlineExceeded drops, never dispatch.
                const bool expired = rng.bernoulli(0.25);
                if (expired) expired_pushed.fetch_add(1);
                ASSERT_TRUE(q.push(v, cls, expired ? 500u : 0u));
            }
        });
    }

    std::vector<int> admitted;
    std::vector<Dropped<int>> dropped;
    std::thread consumer([&] {
        Admitted<int> out;
        std::vector<Dropped<int>> drops;
        for (;;) {
            drops.clear();
            const bool got = q.pop(out, drops);
            dropped.insert(dropped.end(),
                           std::make_move_iterator(drops.begin()),
                           std::make_move_iterator(drops.end()));
            if (got)
                admitted.push_back(out.value);
            else if (drops.empty())
                break;  // terminal: closed and drained
        }
    });
    for (auto& t : producers) t.join();
    q.close();
    consumer.join();

    EXPECT_EQ(admitted.size() + dropped.size(),
              static_cast<std::size_t>(kProducers * kPerProducer));
    EXPECT_EQ(dropped.size(), expired_pushed.load());
    for (const auto& d : dropped)
        EXPECT_EQ(d.cause, DropCause::DeadlineExceeded);

    // Single consumer ⇒ per-class order is observable: the admitted and
    // dropped streams each replay their producer's sequence monotonically
    // (one producer per class; the queue never reorders within a class).
    std::map<int, int> next_admitted, next_dropped;
    for (const int v : admitted) {
        const int p = v / kSeqBase;
        ASSERT_GE(v % kSeqBase, next_admitted[p]);
        next_admitted[p] = v % kSeqBase;
    }
    for (const auto& d : dropped) {
        const int p = d.value / kSeqBase;
        ASSERT_GE(d.value % kSeqBase, next_dropped[p]);
        next_dropped[p] = d.value % kSeqBase;
    }

    const auto counters = q.counters();
    std::uint64_t acc = 0, disp = 0, dl = 0;
    for (std::size_t c = 0; c < neuro::serve::kPriorityClasses; ++c) {
        acc += counters.accepted[c];
        disp += counters.dispatched[c];
        dl += counters.deadline_dropped[c];
    }
    EXPECT_EQ(acc, static_cast<std::uint64_t>(kProducers * kPerProducer));
    EXPECT_EQ(disp, admitted.size());
    EXPECT_EQ(dl, dropped.size());
}
