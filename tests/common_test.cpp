// Unit tests for src/common: RNG determinism and distribution sanity,
// tensor algebra, fixed-point helpers, table/CSV rendering, CLI parsing,
// statistics, and the bounded MPMC queue.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/fixed.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/tensor.hpp"

using namespace neuro::common;

TEST(Rng, DeterministicStreams) {
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next_u64() == b.next_u64()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformMomentsAndRange) {
    Rng rng(7);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
        sq += u * u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
    EXPECT_NEAR(sq / n - 0.25, 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments) {
    Rng rng(9);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
    Rng rng(3);
    bool lo = false, hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        lo |= v == -2;
        hi |= v == 2;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, ShufflePermutes) {
    Rng rng(5);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
    auto w = v;
    rng.shuffle(w);
    std::sort(w.begin(), w.end());
    EXPECT_EQ(v, w);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng a(11);
    Rng child = a.split();
    // The child stream must not replay the parent's.
    Rng b(11);
    (void)b.next_u64();  // advance identically to the split call
    EXPECT_NE(child.next_u64(), b.next_u64());
}

TEST(Tensor, ShapeAndIndexing) {
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.size(), 24u);
    EXPECT_EQ(t.rank(), 3u);
    t.at3(1, 2, 3) = 5.0f;
    EXPECT_FLOAT_EQ(t[23], 5.0f);
    EXPECT_EQ(t.describe(), "Tensor[2x3x4]");
}

TEST(Tensor, ReshapePreservesCount) {
    Tensor t({4, 6});
    t.reshape({24});
    EXPECT_EQ(t.rank(), 1u);
    EXPECT_THROW(t.reshape({5}), std::invalid_argument);
}

TEST(Tensor, Arithmetic) {
    Tensor a({3});
    Tensor b({3});
    a.fill(2.0f);
    b.fill(1.5f);
    a += b;
    EXPECT_FLOAT_EQ(a[0], 3.5f);
    a -= b;
    EXPECT_FLOAT_EQ(a[1], 2.0f);
    a *= 2.0f;
    EXPECT_FLOAT_EQ(a[2], 4.0f);
    EXPECT_FLOAT_EQ(a.sum(), 12.0f);
    EXPECT_FLOAT_EQ(a.mean(), 4.0f);
}

TEST(Tensor, ArgmaxFirstOnTies) {
    Tensor t({4});
    t[0] = 1.0f;
    t[1] = 3.0f;
    t[2] = 3.0f;
    t[3] = 0.0f;
    EXPECT_EQ(t.argmax(), 1u);
}

TEST(Fixed, SaturateSigned) {
    EXPECT_EQ(saturate_signed(127, 8), 127);
    EXPECT_EQ(saturate_signed(128, 8), 127);
    EXPECT_EQ(saturate_signed(-128, 8), -128);
    EXPECT_EQ(saturate_signed(-129, 8), -128);
    EXPECT_EQ(saturate_signed(100000, 8), 127);
}

TEST(Fixed, SaturateUnsigned) {
    EXPECT_EQ(saturate_unsigned(127, 7), 127);
    EXPECT_EQ(saturate_unsigned(128, 7), 127);
    EXPECT_EQ(saturate_unsigned(-5, 7), 0);
}

TEST(Fixed, Decay12Extremes) {
    // delta = 0: perfect integrator. delta = 4096: clears in one step.
    EXPECT_EQ(decay12(1000, 0), 1000);
    EXPECT_EQ(decay12(1000, 4096), 0);
    // Halfway decay.
    EXPECT_EQ(decay12(1000, 2048), 500);
}

TEST(Fixed, QuantizeRoundTrip) {
    const float v = 0.37f;
    const auto q = quantize_signed(v, 1.0f, 8);
    EXPECT_NEAR(dequantize_signed(q, 1.0f, 8), v, 1.0f / 127.0f);
    EXPECT_EQ(quantize_signed(2.0f, 1.0f, 8), 127);   // saturates
    EXPECT_EQ(quantize_signed(-2.0f, 1.0f, 8), -128);
}

TEST(Table, AlignsAndFormats) {
    Table t({"name", "value"});
    t.add_row({"alpha", Table::fmt(1.5)});
    t.add_row({"b", Table::pct(0.945)});
    const std::string s = t.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
    EXPECT_NE(s.find("94.5%"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Csv, WritesEscapedFile) {
    const std::string dir = testing::TempDir() + "/neuro_csv_test";
    CsvWriter w(dir, "t", {"a", "b"});
    w.add_row({"x,y", "plain"});
    const std::string path = w.write();
    std::ifstream f(path);
    std::string line;
    std::getline(f, line);
    EXPECT_EQ(line, "a,b");
    std::getline(f, line);
    EXPECT_EQ(line, "\"x,y\",plain");
    std::filesystem::remove_all(dir);
}

TEST(Cli, ParsesKeysFlagsAndTypes) {
    const char* argv[] = {"prog", "--alpha=3", "--flag", "--rate=0.5",
                          "--name=test"};
    Cli cli(5, argv);
    EXPECT_FALSE(cli.error());
    EXPECT_EQ(cli.get_int("alpha", 0), 3);
    EXPECT_TRUE(cli.get_bool("flag", false));
    EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 0.5);
    EXPECT_EQ(cli.get("name", ""), "test");
    EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(Cli, RejectsPositional) {
    const char* argv[] = {"prog", "positional"};
    Cli cli(2, argv);
    EXPECT_TRUE(cli.error());
}

TEST(Stats, ConfusionAccuracyAndRecall) {
    Confusion c(3);
    c.add(0, 0);
    c.add(0, 1);
    c.add(1, 1);
    c.add(2, 2);
    EXPECT_DOUBLE_EQ(c.accuracy(), 0.75);
    EXPECT_DOUBLE_EQ(c.recall(0), 0.5);
    EXPECT_DOUBLE_EQ(c.recall(1), 1.0);
    EXPECT_DOUBLE_EQ(c.accuracy_over({0}), 0.5);
    EXPECT_DOUBLE_EQ(c.accuracy_over({1, 2}), 1.0);
    EXPECT_THROW(c.add(3, 0), std::out_of_range);
}

TEST(Stats, MeanStddevArgmax) {
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_NEAR(stddev({1.0, 2.0, 3.0}), 1.0, 1e-12);
    EXPECT_EQ(argmax(std::vector<double>{1.0, 5.0, 2.0}), 1u);
    EXPECT_EQ(argmax(std::vector<int>{3, 3, 1}), 0u);
}

TEST(BoundedQueue, FifoOrderAndSize) {
    BoundedQueue<int> q(4);
    EXPECT_EQ(q.capacity(), 4u);
    for (int i = 0; i < 4; ++i) {
        int v = i;
        EXPECT_TRUE(q.push(v));
    }
    EXPECT_EQ(q.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        int out = -1;
        EXPECT_TRUE(q.pop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, ZeroCapacityThrows) {
    EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

TEST(BoundedQueue, TryPushRefusesWhenFullAndKeepsValue) {
    BoundedQueue<std::unique_ptr<int>> q(1);
    auto a = std::make_unique<int>(1);
    EXPECT_EQ(q.try_push(a), BoundedQueue<std::unique_ptr<int>>::Push::Ok);
    EXPECT_EQ(a, nullptr);  // moved out on success
    auto b = std::make_unique<int>(2);
    EXPECT_EQ(q.try_push(b), BoundedQueue<std::unique_ptr<int>>::Push::Full);
    ASSERT_NE(b, nullptr);  // refused value stays with the caller
    EXPECT_EQ(*b, 2);
    q.close();
    EXPECT_EQ(q.try_push(b), BoundedQueue<std::unique_ptr<int>>::Push::Closed);
    ASSERT_NE(b, nullptr);
}

TEST(BoundedQueue, CloseDrainsAcceptedItemsThenRefuses) {
    BoundedQueue<int> q(8);
    for (int i = 0; i < 3; ++i) {
        int v = i;
        ASSERT_TRUE(q.push(v));
    }
    q.close();
    EXPECT_TRUE(q.closed());
    int v = 99;
    EXPECT_FALSE(q.push(v));
    int out = -1;
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(q.pop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(q.pop(out));  // closed and drained
}

TEST(BoundedQueue, PopUntilTimesOutOnEmpty) {
    BoundedQueue<int> q(2);
    int out = -1;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(q.pop_until(
        out, t0 + std::chrono::milliseconds(5)));
    EXPECT_GE(std::chrono::steady_clock::now() - t0,
              std::chrono::milliseconds(4));
}

TEST(BoundedQueue, BlockingPushUnblocksOnPop) {
    BoundedQueue<int> q(1);
    int v0 = 0;
    ASSERT_TRUE(q.push(v0));
    std::atomic<bool> second_pushed{false};
    std::thread producer([&] {
        int v1 = 1;
        ASSERT_TRUE(q.push(v1));  // blocks until the consumer pops
        second_pushed.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_FALSE(second_pushed.load());
    int out = -1;
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 0);
    producer.join();
    EXPECT_TRUE(second_pushed.load());
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 1);
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
    BoundedQueue<int> q(1);
    int v0 = 0;
    ASSERT_TRUE(q.push(v0));
    std::thread producer([&] {
        int v1 = 1;
        EXPECT_FALSE(q.push(v1));  // full, then woken by close: refused
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    producer.join();
    int out = -1;
    EXPECT_TRUE(q.pop(out));  // the accepted item still drains
    EXPECT_EQ(out, 0);
    EXPECT_FALSE(q.pop(out));
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
    BoundedQueue<int> q(1);
    std::thread consumer([&] {
        int out = -1;
        EXPECT_FALSE(q.pop(out));  // empty, then woken by close: drained
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    consumer.join();
}

TEST(BoundedQueue, MpmcStressDeliversEverythingOnce) {
    constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 250;
    BoundedQueue<int> q(16);
    std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
    for (auto& s : seen) s.store(0);
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p)
        threads.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                int v = p * kPerProducer + i;
                ASSERT_TRUE(q.push(v));
            }
        });
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c)
        consumers.emplace_back([&] {
            int out = -1;
            while (q.pop(out)) seen[static_cast<std::size_t>(out)]++;
        });
    for (auto& t : threads) t.join();
    q.close();
    for (auto& t : consumers) t.join();
    for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

// ---- latency histogram (moved here from serve; serve keeps an alias) --------

TEST(LatencyHistogram, PercentilesBoundedBySubBucketResolution) {
    LatencyHistogram h;
    for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.max_us(), 1000.0);
    EXPECT_NEAR(h.mean_us(), 500.5, 1e-9);
    // Log-bucketed estimates err high by at most one sub-bucket (~6%).
    EXPECT_GE(h.percentile(0.50), 500.0);
    EXPECT_LE(h.percentile(0.50), 500.0 * 1.07);
    EXPECT_GE(h.percentile(0.99), 990.0);
    EXPECT_LE(h.percentile(0.99), 1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
}

TEST(LatencyHistogram, EmptyAndSubMicrosecond) {
    LatencyHistogram h;
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    h.record(0.25);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_LE(h.percentile(0.99), 1.0);
}
