// Contract tests for the neurod wire protocol codec (netd/protocol.hpp) —
// the PURE layer, no sockets:
//   * request/response round-trips preserve every field bit-exactly
//     (deadline and priority fidelity is what admission control rides on),
//   * the incremental decoder yields identical frames no matter how the
//     byte stream is chunked (byte-at-a-time partial reads included),
//   * truncated, oversized, inconsistent and wrong-version frames are
//     rejected with a typed error and WITHOUT undefined behaviour — a
//     hostile length prefix or shape product never drives an allocation,
//   * v2 frames carry the model field both directions, v1 and v2 coexist
//     on one stream, and a declared model_len that overruns the body (or
//     the kMaxModelName ceiling) poisons the decoder (BadModel),
//   * v3 frames carry the trace flag / span block; undefined flag bits and
//     out-of-range span ids are rejected, and the block round-trips,
//   * a decoder that errored is poisoned: framing is unrecoverable.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "netd/protocol.hpp"

using namespace neuro;
using netd::DecodeError;
using netd::Decoder;
using netd::MsgKind;
using netd::RequestFrame;
using netd::ResponseFrame;
using netd::WireStatus;

namespace {

RequestFrame sample_request() {
    RequestFrame f;
    f.kind = MsgKind::Counts;
    f.priority = 1;  // serve::Priority::Batch
    f.request_id = 0xDEADBEEFCAFEF00Dull;
    f.deadline_us = 1'234'567;
    f.label = 7;
    f.shape = {2, 3, 4};
    f.data.resize(24);
    for (std::size_t i = 0; i < f.data.size(); ++i)
        f.data[i] = 0.25f * static_cast<float>(i) - 1.5f;
    return f;
}

ResponseFrame sample_response() {
    ResponseFrame f;
    f.status = WireStatus::Ok;
    f.reject_reason = 0;
    f.priority = 2;
    f.request_id = 42;
    f.label = 9;
    f.latency_us = 12'345;
    f.sojourn_us = 678;
    f.batch_size = 8;
    f.counts = {0, -3, 17, std::numeric_limits<std::int32_t>::min(),
                std::numeric_limits<std::int32_t>::max()};
    f.error = "";
    return f;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

/// Builds a raw request frame with full control over every header byte —
/// the malformed-input tests cannot go through encode(), which validates.
std::vector<std::uint8_t> raw_request(std::uint8_t version, std::uint8_t kind,
                                      std::uint8_t priority,
                                      std::uint8_t reserved, std::uint8_t rank,
                                      const std::vector<std::uint32_t>& dims,
                                      std::size_t payload_floats) {
    std::vector<std::uint8_t> body;
    body.push_back(version);
    body.push_back(kind);
    body.push_back(priority);
    body.push_back(reserved);
    for (int i = 0; i < 16; ++i) body.push_back(0);  // request_id, deadline
    put_u32(body, 0);                                // label
    body.push_back(rank);
    for (const std::uint32_t d : dims) put_u32(body, d);
    for (std::size_t i = 0; i < payload_floats * 4; ++i) body.push_back(0);

    std::vector<std::uint8_t> out;
    put_u32(out, static_cast<std::uint32_t>(body.size()));
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

/// Raw v2 request with a hand-controlled model_len declaration — possibly
/// lying about how many model bytes follow (the overrun tests).
std::vector<std::uint8_t> raw_v2_request(std::uint8_t declared_model_len,
                                         const std::string& model_bytes,
                                         std::uint8_t rank,
                                         const std::vector<std::uint32_t>& dims,
                                         std::size_t payload_floats) {
    std::vector<std::uint8_t> body;
    body.push_back(netd::kProtocolVersionV2);
    body.push_back(0);  // Predict
    body.push_back(0);  // priority
    body.push_back(0);  // reserved
    for (int i = 0; i < 16; ++i) body.push_back(0);  // request_id, deadline
    put_u32(body, 0);                                // label
    body.push_back(declared_model_len);
    for (const char c : model_bytes)
        body.push_back(static_cast<std::uint8_t>(c));
    body.push_back(rank);
    for (const std::uint32_t d : dims) put_u32(body, d);
    for (std::size_t i = 0; i < payload_floats * 4; ++i) body.push_back(0);

    std::vector<std::uint8_t> out;
    put_u32(out, static_cast<std::uint32_t>(body.size()));
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

DecodeError decode_error_of(const std::vector<std::uint8_t>& bytes) {
    Decoder d;
    d.feed(bytes.data(), bytes.size());
    RequestFrame f;
    EXPECT_EQ(d.next_request(f), Decoder::Result::Error);
    return d.error();
}

}  // namespace

// ---- round-trips ------------------------------------------------------------

TEST(NetdProtocol, RequestRoundTripPreservesEveryField) {
    const RequestFrame in = sample_request();
    const auto bytes = netd::encode(in);

    Decoder d;
    d.feed(bytes.data(), bytes.size());
    RequestFrame out;
    ASSERT_EQ(d.next_request(out), Decoder::Result::Frame);

    EXPECT_EQ(out.version, netd::kProtocolVersion);
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.priority, in.priority);
    EXPECT_EQ(out.request_id, in.request_id);
    EXPECT_EQ(out.deadline_us, in.deadline_us);
    EXPECT_EQ(out.label, in.label);
    EXPECT_EQ(out.shape, in.shape);
    EXPECT_EQ(out.data, in.data);
    EXPECT_EQ(d.buffered(), 0u);
    EXPECT_EQ(d.next_request(out), Decoder::Result::NeedMore);
}

TEST(NetdProtocol, ResponseRoundTripPreservesEveryField) {
    ResponseFrame in = sample_response();
    in.status = WireStatus::Error;
    in.reject_reason = 3;
    in.error = "backend exploded: size mismatch";
    const auto bytes = netd::encode(in);

    Decoder d;
    d.feed(bytes.data(), bytes.size());
    ResponseFrame out;
    ASSERT_EQ(d.next_response(out), Decoder::Result::Frame);

    EXPECT_EQ(out.status, in.status);
    EXPECT_EQ(out.reject_reason, in.reject_reason);
    EXPECT_EQ(out.priority, in.priority);
    EXPECT_EQ(out.request_id, in.request_id);
    EXPECT_EQ(out.label, in.label);
    EXPECT_EQ(out.latency_us, in.latency_us);
    EXPECT_EQ(out.sojourn_us, in.sojourn_us);
    EXPECT_EQ(out.batch_size, in.batch_size);
    EXPECT_EQ(out.counts, in.counts);
    EXPECT_EQ(out.error, in.error);
}

TEST(NetdProtocol, DeadlineAndPriorityTravelBitExact) {
    // The admission metadata is the point of the protocol — pin the edge
    // values (no deadline, 1us, u64 max) across every priority class.
    for (const std::uint64_t deadline :
         {std::uint64_t{0}, std::uint64_t{1},
          std::numeric_limits<std::uint64_t>::max()}) {
        for (std::uint8_t prio = 0; prio <= 2; ++prio) {
            RequestFrame in;
            in.priority = prio;
            in.deadline_us = deadline;
            in.shape = {4};
            in.data = {1, 2, 3, 4};
            const auto bytes = netd::encode(in);
            Decoder d;
            d.feed(bytes.data(), bytes.size());
            RequestFrame out;
            ASSERT_EQ(d.next_request(out), Decoder::Result::Frame);
            EXPECT_EQ(out.deadline_us, deadline);
            EXPECT_EQ(out.priority, prio);
        }
    }
}

// ---- incremental feeding ----------------------------------------------------

TEST(NetdProtocol, ByteAtATimeFeedYieldsTheSameFrame) {
    const RequestFrame in = sample_request();
    const auto bytes = netd::encode(in);

    Decoder d;
    RequestFrame out;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
        d.feed(&bytes[i], 1);
        ASSERT_EQ(d.next_request(out), Decoder::Result::NeedMore)
            << "frame completed early at byte " << i;
    }
    d.feed(&bytes[bytes.size() - 1], 1);
    ASSERT_EQ(d.next_request(out), Decoder::Result::Frame);
    EXPECT_EQ(out.request_id, in.request_id);
    EXPECT_EQ(out.data, in.data);
}

TEST(NetdProtocol, CoalescedFramesDecodeInOrder) {
    RequestFrame a = sample_request();
    a.request_id = 1;
    RequestFrame b = sample_request();
    b.request_id = 2;
    b.shape = {5};
    b.data = {9, 8, 7, 6, 5};

    auto bytes = netd::encode(a);
    const auto more = netd::encode(b);
    bytes.insert(bytes.end(), more.begin(), more.end());

    // Split the two-frame stream at an arbitrary awkward point.
    Decoder d;
    d.feed(bytes.data(), 7);
    d.feed(bytes.data() + 7, bytes.size() - 7);
    RequestFrame out;
    ASSERT_EQ(d.next_request(out), Decoder::Result::Frame);
    EXPECT_EQ(out.request_id, 1u);
    ASSERT_EQ(d.next_request(out), Decoder::Result::Frame);
    EXPECT_EQ(out.request_id, 2u);
    EXPECT_EQ(out.data, b.data);
    EXPECT_EQ(d.next_request(out), Decoder::Result::NeedMore);
}

TEST(NetdProtocol, LongStreamDoesNotAccumulateBuffer) {
    const auto bytes = netd::encode(sample_request());
    Decoder d;
    RequestFrame out;
    for (int i = 0; i < 200; ++i) {
        d.feed(bytes.data(), bytes.size());
        ASSERT_EQ(d.next_request(out), Decoder::Result::Frame);
    }
    EXPECT_EQ(d.buffered(), 0u);
}

// ---- malformed input --------------------------------------------------------

TEST(NetdProtocol, OversizedLengthPrefixRejectedFromFourBytes) {
    // 256 MiB claimed body: the decoder must reject from the prefix alone,
    // before any body arrives and before any allocation is sized by it.
    std::vector<std::uint8_t> bytes;
    put_u32(bytes, 256u << 20);
    Decoder d(netd::kDefaultMaxFrameBytes);
    d.feed(bytes.data(), bytes.size());
    RequestFrame f;
    EXPECT_EQ(d.next_request(f), Decoder::Result::Error);
    EXPECT_EQ(d.error(), DecodeError::Oversized);
}

TEST(NetdProtocol, ZeroLengthBodyIsMalformed) {
    std::vector<std::uint8_t> bytes;
    put_u32(bytes, 0);
    Decoder d;
    d.feed(bytes.data(), bytes.size());
    RequestFrame f;
    EXPECT_EQ(d.next_request(f), Decoder::Result::Error);
    EXPECT_EQ(d.error(), DecodeError::Malformed);
}

TEST(NetdProtocol, WrongVersionRejected) {
    // v1..v3 are the negotiable set; anything above is unknown.
    EXPECT_EQ(decode_error_of(raw_request(netd::kProtocolVersionV3 + 1, 0, 0,
                                          0, 1, {4}, 4)),
              DecodeError::BadVersion);
    EXPECT_EQ(decode_error_of(raw_request(0, 0, 0, 0, 1, {4}, 4)),
              DecodeError::BadVersion);
}

TEST(NetdProtocol, UnknownKindRejected) {
    EXPECT_EQ(
        decode_error_of(raw_request(netd::kProtocolVersion, 7, 0, 0, 1, {4}, 4)),
        DecodeError::BadKind);
}

TEST(NetdProtocol, OutOfRangePriorityRejected) {
    EXPECT_EQ(
        decode_error_of(raw_request(netd::kProtocolVersion, 0, 3, 0, 1, {4}, 4)),
        DecodeError::BadPriority);
}

TEST(NetdProtocol, NonZeroReservedByteRejected) {
    EXPECT_EQ(
        decode_error_of(raw_request(netd::kProtocolVersion, 0, 0, 9, 1, {4}, 4)),
        DecodeError::Malformed);
}

TEST(NetdProtocol, RankZeroAndRankFiveRejected) {
    EXPECT_EQ(
        decode_error_of(raw_request(netd::kProtocolVersion, 0, 0, 0, 0, {}, 0)),
        DecodeError::BadShape);
    EXPECT_EQ(decode_error_of(raw_request(netd::kProtocolVersion, 0, 0, 0, 5,
                                          {1, 1, 1, 1, 1}, 1)),
              DecodeError::BadShape);
}

TEST(NetdProtocol, ZeroDimensionRejected) {
    EXPECT_EQ(decode_error_of(
                  raw_request(netd::kProtocolVersion, 0, 0, 0, 2, {4, 0}, 0)),
              DecodeError::BadShape);
}

TEST(NetdProtocol, TruncatedPayloadRejected) {
    // Shape says 8 floats, body carries 4.
    EXPECT_EQ(decode_error_of(
                  raw_request(netd::kProtocolVersion, 0, 0, 0, 1, {8}, 4)),
              DecodeError::BadShape);
}

TEST(NetdProtocol, TrailingGarbageRejected) {
    // Shape says 2 floats, body carries 6.
    EXPECT_EQ(decode_error_of(
                  raw_request(netd::kProtocolVersion, 0, 0, 0, 1, {2}, 6)),
              DecodeError::BadShape);
}

TEST(NetdProtocol, HugeShapeProductRejectedWithoutOverflow) {
    // 0xFFFFFFFF^4 overflows u64 ~ 2^128; the decoder must reject on the
    // body-length bound long before the product wraps into plausibility.
    EXPECT_EQ(decode_error_of(raw_request(
                  netd::kProtocolVersion, 0, 0, 0, 4,
                  {0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu}, 8)),
              DecodeError::BadShape);
}

TEST(NetdProtocol, HeaderShorterThanFixedFieldsIsMalformed) {
    std::vector<std::uint8_t> bytes;
    put_u32(bytes, 3);  // 3-byte body cannot hold the fixed header
    bytes.push_back(netd::kProtocolVersion);
    bytes.push_back(0);
    bytes.push_back(0);
    Decoder d;
    d.feed(bytes.data(), bytes.size());
    RequestFrame f;
    EXPECT_EQ(d.next_request(f), Decoder::Result::Error);
    EXPECT_EQ(d.error(), DecodeError::Malformed);
}

TEST(NetdProtocol, ErrorPoisonsTheDecoder) {
    Decoder d;
    const auto bad =
        raw_request(netd::kProtocolVersionV3 + 1, 0, 0, 0, 1, {4}, 4);
    d.feed(bad.data(), bad.size());
    RequestFrame f;
    ASSERT_EQ(d.next_request(f), Decoder::Result::Error);

    // Even a perfectly valid follow-up frame must NOT decode: framing is
    // lost, the only safe move is closing the connection.
    const auto good = netd::encode(sample_request());
    d.feed(good.data(), good.size());
    EXPECT_EQ(d.next_request(f), Decoder::Result::Error);
    EXPECT_EQ(d.error(), DecodeError::BadVersion);
}

TEST(NetdProtocol, ResponseCountsOverrunIsMalformed) {
    auto bytes = netd::encode(sample_response());
    // Patch ncounts (offset: 4 len + 4 hdr + 8 id + 4 label + 8 + 8 + 4) to
    // claim more entries than the body holds.
    const std::size_t ncounts_off = 4 + 4 + 8 + 4 + 8 + 8 + 4;
    bytes[ncounts_off] = 0xFF;
    bytes[ncounts_off + 1] = 0xFF;
    Decoder d;
    d.feed(bytes.data(), bytes.size());
    ResponseFrame f;
    EXPECT_EQ(d.next_response(f), Decoder::Result::Error);
    EXPECT_EQ(d.error(), DecodeError::Malformed);
}

// ---- v2: the model field ----------------------------------------------------

TEST(NetdProtocol, V2RequestRoundTripPreservesModel) {
    RequestFrame in = sample_request();
    in.version = netd::kProtocolVersionV2;
    in.model = "tenant-a.v3";
    const auto bytes = netd::encode(in);

    Decoder d;
    d.feed(bytes.data(), bytes.size());
    RequestFrame out;
    ASSERT_EQ(d.next_request(out), Decoder::Result::Frame);
    EXPECT_EQ(out.version, netd::kProtocolVersionV2);
    EXPECT_EQ(out.model, in.model);
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.priority, in.priority);
    EXPECT_EQ(out.request_id, in.request_id);
    EXPECT_EQ(out.deadline_us, in.deadline_us);
    EXPECT_EQ(out.shape, in.shape);
    EXPECT_EQ(out.data, in.data);
    EXPECT_EQ(d.buffered(), 0u);
}

TEST(NetdProtocol, V2ResponseRoundTripPreservesModel) {
    ResponseFrame in = sample_response();
    in.version = netd::kProtocolVersionV2;
    in.model = "tenant-b";
    const auto bytes = netd::encode(in);

    Decoder d;
    d.feed(bytes.data(), bytes.size());
    ResponseFrame out;
    ASSERT_EQ(d.next_response(out), Decoder::Result::Frame);
    EXPECT_EQ(out.version, netd::kProtocolVersionV2);
    EXPECT_EQ(out.model, in.model);
    EXPECT_EQ(out.request_id, in.request_id);
    EXPECT_EQ(out.counts, in.counts);
}

TEST(NetdProtocol, V2EmptyModelMeansDefaultAndRoundTrips) {
    RequestFrame in = sample_request();
    in.version = netd::kProtocolVersionV2;
    in.model = "";
    const auto bytes = netd::encode(in);
    Decoder d;
    d.feed(bytes.data(), bytes.size());
    RequestFrame out;
    ASSERT_EQ(d.next_request(out), Decoder::Result::Frame);
    EXPECT_EQ(out.version, netd::kProtocolVersionV2);
    EXPECT_TRUE(out.model.empty());
    EXPECT_EQ(out.data, in.data);
}

TEST(NetdProtocol, V1AndV2FramesCoexistOnOneStream) {
    // Per-frame negotiation: the same decoder must handle both versions
    // back to back — that is what lets a fleet client keep a v1 library
    // talking while newer code sends v2.
    RequestFrame v1 = sample_request();
    v1.request_id = 1;
    RequestFrame v2 = sample_request();
    v2.version = netd::kProtocolVersionV2;
    v2.model = "m";
    v2.request_id = 2;

    auto bytes = netd::encode(v1);
    const auto more = netd::encode(v2);
    bytes.insert(bytes.end(), more.begin(), more.end());

    Decoder d;
    d.feed(bytes.data(), bytes.size());
    RequestFrame out;
    ASSERT_EQ(d.next_request(out), Decoder::Result::Frame);
    EXPECT_EQ(out.version, netd::kProtocolVersion);
    EXPECT_TRUE(out.model.empty());
    ASSERT_EQ(d.next_request(out), Decoder::Result::Frame);
    EXPECT_EQ(out.version, netd::kProtocolVersionV2);
    EXPECT_EQ(out.model, "m");
}

TEST(NetdProtocol, V2ByteAtATimeFeedYieldsTheSameFrame) {
    RequestFrame in = sample_request();
    in.version = netd::kProtocolVersionV2;
    in.model = "slow-reader";
    const auto bytes = netd::encode(in);

    Decoder d;
    RequestFrame out;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
        d.feed(&bytes[i], 1);
        ASSERT_EQ(d.next_request(out), Decoder::Result::NeedMore);
    }
    d.feed(&bytes[bytes.size() - 1], 1);
    ASSERT_EQ(d.next_request(out), Decoder::Result::Frame);
    EXPECT_EQ(out.model, in.model);
    EXPECT_EQ(out.data, in.data);
}

TEST(NetdProtocol, ModelLenOverrunningBodyRejected) {
    // Declares 40 model bytes but carries 4: the rest of the "name" would
    // be the rank/dims/payload bytes — framing is untrustworthy.
    EXPECT_EQ(decode_error_of(raw_v2_request(40, "abcd", 1, {4}, 4)),
              DecodeError::BadModel);
}

TEST(NetdProtocol, ModelLenAboveCeilingRejected) {
    // 65 > kMaxModelName even though the body really does carry 65 bytes.
    const std::string name(65, 'x');
    EXPECT_EQ(decode_error_of(raw_v2_request(
                  static_cast<std::uint8_t>(name.size()), name, 1, {4}, 4)),
              DecodeError::BadModel);
}

TEST(NetdProtocol, ModelLenEatingTheWholeBodyRejected) {
    // model_len swallows every remaining byte including the tensor header:
    // caught as BadModel or a downstream Malformed, never UB. Build a body
    // whose declared name length exactly equals what is left.
    const auto frame = raw_v2_request(13, "abcd", 1, {1}, 1);
    Decoder d;
    d.feed(frame.data(), frame.size());
    RequestFrame f;
    EXPECT_EQ(d.next_request(f), Decoder::Result::Error);
}

TEST(NetdProtocol, BadModelPoisonsTheDecoder) {
    Decoder d;
    const auto bad = raw_v2_request(40, "abcd", 1, {4}, 4);
    d.feed(bad.data(), bad.size());
    RequestFrame f;
    ASSERT_EQ(d.next_request(f), Decoder::Result::Error);
    EXPECT_EQ(d.error(), DecodeError::BadModel);

    const auto good = netd::encode(sample_request());
    d.feed(good.data(), good.size());
    EXPECT_EQ(d.next_request(f), Decoder::Result::Error);
    EXPECT_EQ(d.error(), DecodeError::BadModel);
}

TEST(NetdProtocol, V2ResponseModelOverrunRejected) {
    // Corrupt an encoded v2 response's model_len to overrun the body.
    ResponseFrame in = sample_response();
    in.version = netd::kProtocolVersionV2;
    in.model = "ab";
    auto bytes = netd::encode(in);
    // Offset: 4 len + 4 header (version/status/reject/priority) + 8 id.
    const std::size_t model_len_off = 4 + 4 + 8;
    ASSERT_EQ(bytes[model_len_off], 2u);
    bytes[model_len_off] = 0xFF;
    Decoder d;
    d.feed(bytes.data(), bytes.size());
    ResponseFrame out;
    EXPECT_EQ(d.next_response(out), Decoder::Result::Error);
    EXPECT_EQ(d.error(), DecodeError::BadModel);
}

// ---- v3: trace flag and span block ------------------------------------------

TEST(NetdProtocol, V3RequestRoundTripPreservesFlagsAndModel) {
    RequestFrame in = sample_request();
    in.version = netd::kProtocolVersionV3;
    in.model = "tenant-a";
    in.flags = netd::kFlagTrace;
    const auto bytes = netd::encode(in);

    Decoder d;
    d.feed(bytes.data(), bytes.size());
    RequestFrame out;
    ASSERT_EQ(d.next_request(out), Decoder::Result::Frame);
    EXPECT_EQ(out.version, netd::kProtocolVersionV3);
    EXPECT_EQ(out.flags, netd::kFlagTrace);
    EXPECT_EQ(out.model, in.model);
    EXPECT_EQ(out.deadline_us, in.deadline_us);
    EXPECT_EQ(out.data, in.data);
    EXPECT_EQ(d.buffered(), 0u);
}

TEST(NetdProtocol, V3ResponseRoundTripPreservesTraceSpans) {
    ResponseFrame in = sample_response();
    in.version = netd::kProtocolVersionV3;
    in.model = "tenant-a";
    for (std::uint8_t id = 1; id <= 7; ++id)
        in.trace.push_back({id, 1000ull * id + id});
    const auto bytes = netd::encode(in);

    Decoder d;
    d.feed(bytes.data(), bytes.size());
    ResponseFrame out;
    ASSERT_EQ(d.next_response(out), Decoder::Result::Frame);
    EXPECT_EQ(out.version, netd::kProtocolVersionV3);
    ASSERT_EQ(out.trace.size(), in.trace.size());
    for (std::size_t i = 0; i < in.trace.size(); ++i) {
        EXPECT_EQ(out.trace[i].id, in.trace[i].id);
        EXPECT_EQ(out.trace[i].value, in.trace[i].value);
    }
}

TEST(NetdProtocol, V3EmptyTraceBlockRoundTripsUntraced) {
    // flags = 0 on the request, nspans = 0 on the response: v3 without
    // tracing costs one byte each way and decodes to empty fields.
    RequestFrame req = sample_request();
    req.version = netd::kProtocolVersionV3;
    const auto rbytes = netd::encode(req);
    Decoder dr;
    dr.feed(rbytes.data(), rbytes.size());
    RequestFrame rout;
    ASSERT_EQ(dr.next_request(rout), Decoder::Result::Frame);
    EXPECT_EQ(rout.flags, 0u);

    ResponseFrame resp = sample_response();
    resp.version = netd::kProtocolVersionV3;
    const auto bytes = netd::encode(resp);
    Decoder d;
    d.feed(bytes.data(), bytes.size());
    ResponseFrame out;
    ASSERT_EQ(d.next_response(out), Decoder::Result::Frame);
    EXPECT_TRUE(out.trace.empty());
}

TEST(NetdProtocol, V3UndefinedFlagBitsRejectedOnDecode) {
    RequestFrame in = sample_request();
    in.version = netd::kProtocolVersionV3;
    in.flags = netd::kFlagTrace;
    auto bytes = netd::encode(in);
    // Body layout: version..reserved (4) + id/deadline (16) + label (4) +
    // model_len (1, empty model) + flags — so flags sits at 4 + 25.
    const std::size_t flags_off = 4 + 25;
    ASSERT_EQ(bytes[flags_off], netd::kFlagTrace);
    bytes[flags_off] = 0x03;  // bit1 is reserved
    EXPECT_EQ(decode_error_of(bytes), DecodeError::Malformed);
}

TEST(NetdProtocol, V3SpanIdOutOfRangeRejectedOnDecode) {
    ResponseFrame in = sample_response();
    in.version = netd::kProtocolVersionV3;
    in.trace = {{7, 123}};
    auto bytes = netd::encode(in);
    // The span block is the frame's tail: nspans, then (id, u64) — the id
    // byte sits 9 bytes from the end regardless of counts/error lengths.
    const std::size_t id_off = bytes.size() - 9;
    ASSERT_EQ(bytes[id_off], 7u);
    bytes[id_off] = 8;
    Decoder d;
    d.feed(bytes.data(), bytes.size());
    ResponseFrame out;
    EXPECT_EQ(d.next_response(out), Decoder::Result::Error);
    EXPECT_EQ(d.error(), DecodeError::Malformed);
}

TEST(NetdProtocol, V3EncodeRejectsFlagAndSpanMisuse) {
    // Flags need v3; span ids must be 1..7 and the block at most 7 long.
    RequestFrame f = sample_request();
    f.version = netd::kProtocolVersionV2;
    f.flags = netd::kFlagTrace;
    EXPECT_THROW(netd::encode(f), std::invalid_argument);

    ResponseFrame r = sample_response();
    r.version = netd::kProtocolVersionV3;
    r.trace = {{0, 1}};
    EXPECT_THROW(netd::encode(r), std::invalid_argument);
    r.trace = {{8, 1}};
    EXPECT_THROW(netd::encode(r), std::invalid_argument);
    r.trace.assign(8, {1, 1});
    EXPECT_THROW(netd::encode(r), std::invalid_argument);
}

// ---- encoder validation -----------------------------------------------------

TEST(NetdProtocol, EncodeRejectsSelfInconsistentFrames) {
    RequestFrame f;
    f.shape = {2, 2};
    f.data = {1, 2, 3};  // 3 != 4
    EXPECT_THROW(netd::encode(f), std::invalid_argument);

    f.shape = {};
    f.data = {};
    EXPECT_THROW(netd::encode(f), std::invalid_argument);

    f.shape = {1, 1, 1, 1, 1};  // rank 5
    f.data = {0.f};
    EXPECT_THROW(netd::encode(f), std::invalid_argument);

    f.shape = {0};
    f.data = {};
    EXPECT_THROW(netd::encode(f), std::invalid_argument);
}

TEST(NetdProtocol, EncodeRejectsModelMisuse) {
    // A v1 frame cannot carry a model name (no field to put it in), an
    // unknown version cannot be emitted at all, and an over-long name
    // would be rejected by every decoder — encode() refuses all three.
    RequestFrame f;
    f.shape = {4};
    f.data = {1, 2, 3, 4};
    f.model = "tenant-a";  // still version 1
    EXPECT_THROW(netd::encode(f), std::invalid_argument);

    f.version = netd::kProtocolVersionV3 + 1;
    f.model = "";
    EXPECT_THROW(netd::encode(f), std::invalid_argument);

    f.version = netd::kProtocolVersionV2;
    f.model = std::string(netd::kMaxModelName + 1, 'x');
    EXPECT_THROW(netd::encode(f), std::invalid_argument);

    ResponseFrame r = sample_response();
    r.model = "tenant-a";  // version 1
    EXPECT_THROW(netd::encode(r), std::invalid_argument);
}
