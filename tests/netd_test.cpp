// End-to-end loopback tests for the neurod daemon (netd/daemon.hpp):
//   * predictions over the wire are bit-identical to in-process serving
//     (which is itself bit-identical to sequential Session inference),
//   * pipelined requests resolve out-of-order-safe by request id,
//   * admission metadata survives the wire: a deadline that expires while
//     queued comes back Rejected{DeadlineExceeded}, pinned on a ManualClock,
//   * malformed/oversized frames close that connection and ONLY that
//     connection — the daemon keeps serving,
//   * a client that disconnects mid-flight leaks nothing (ASan-enforced)
//     and never wedges the drain,
//   * drain/shutdown semantics: accepted-implies-responded, control socket
//     survives a pure drain,
//   * control commands: ping/stats/version, and registry pin/rollback
//     round-trips through online::ModelRegistry into live published weights,
//   * multi-model (v2): one connection routes to several fleet entries
//     bit-identically to dedicated sessions, responses echo version+model,
//     and the fleet control commands (models/load/pin/canary/unload)
//     drive the router end-to-end.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "netd/client.hpp"
#include "netd/daemon.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "online/registry.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/clock.hpp"
#include "serve/server.hpp"

using namespace neuro;
using netd::MsgKind;
using netd::RequestFrame;
using netd::ResponseFrame;
using netd::WireStatus;

namespace {

constexpr std::size_t kSide = 12;
constexpr std::size_t kClasses = 10;

std::shared_ptr<const runtime::CompiledModel> make_model() {
    runtime::ModelSpec spec;
    spec.input(1, kSide, kSide).hidden_layers({40}).output_classes(kClasses);
    return runtime::CompiledModel::compile(spec,
                                           runtime::BackendKind::LoihiSim);
}

data::Dataset make_images(std::size_t n) {
    data::GenOptions gen;
    gen.count = n;
    gen.seed = 33;
    gen.height = kSide;
    gen.width = kSide;
    return data::make_digits(gen);
}

RequestFrame make_frame(const common::Tensor& img, std::uint64_t id,
                        MsgKind kind = MsgKind::Predict) {
    RequestFrame f;
    f.kind = kind;
    f.request_id = id;
    f.shape.assign(img.shape().begin(), img.shape().end());
    f.data.assign(img.data(), img.data() + img.size());
    return f;
}

/// A v2 frame addressed to a fleet entry ("" = default model).
RequestFrame make_v2_frame(const common::Tensor& img, std::uint64_t id,
                           const std::string& model,
                           MsgKind kind = MsgKind::Predict) {
    RequestFrame f = make_frame(img, id, kind);
    f.version = netd::kProtocolVersionV2;
    f.model = model;
    return f;
}

/// Polls `cond` generously (sized for TSan's slowdown; real waits are ms).
template <typename F>
bool eventually(F cond) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(90);
    while (std::chrono::steady_clock::now() < deadline) {
        if (cond()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return cond();
}

/// A weight image whose output layer always predicts `winner` — makes
/// control-socket weight pinning observable through the data socket.
runtime::WeightSnapshot forced_snapshot(const runtime::CompiledModel& model,
                                        std::size_t winner) {
    runtime::WeightSnapshot snap = model.initial_weights();
    auto& out = snap.layers.back();
    const std::size_t fan_in = out.size() / kClasses;
    for (std::size_t c = 0; c < kClasses; ++c)
        for (std::size_t i = 0; i < fan_in; ++i)
            out[c * fan_in + i] = c == winner ? 60 : -60;
    return snap;
}

/// A fleet root with one single-version registry per (name, winner).
std::string make_fleet(
    const std::string& tag, const runtime::CompiledModel& model,
    const std::vector<std::pair<std::string, std::size_t>>& entries) {
    const auto root = std::filesystem::temp_directory_path() /
                      ("neuro_netd_fleet_" + std::to_string(::getpid()) +
                       "_" + tag);
    std::filesystem::remove_all(root);
    std::filesystem::create_directories(root);
    for (const auto& [name, winner] : entries) {
        online::ModelRegistry reg((root / name).string());
        reg.record(1, 0.9, forced_snapshot(model, winner));
    }
    return root.string();
}

/// One daemon on unique Unix socket paths, run on a dedicated thread.
/// Tests tweak the public option fields before start().
struct Harness {
    std::shared_ptr<const runtime::CompiledModel> model = make_model();
    serve::ServerOptions sopt;
    netd::DaemonOptions dopt;
    std::shared_ptr<online::ModelRegistry> registry;
    /// When set, start() builds a fleet-enabled ModelRouter and the
    /// router-native Daemon instead of the legacy Server + compat ctor.
    std::string fleet_dir;
    std::size_t budget_bytes = 0;
    /// Observability knobs for the fleet branch (RouterOptions).
    obs::FlightRecorder* recorder = nullptr;
    std::uint64_t slow_request_us = 0;

    std::shared_ptr<serve::Server> server;
    std::shared_ptr<serve::ModelRouter> router;
    std::unique_ptr<netd::Daemon> daemon;
    std::thread thread;

    Harness() {
        static std::atomic<int> counter{0};
        const auto base =
            std::filesystem::temp_directory_path() /
            ("neuro_netd_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
        dopt.data_path = base.string() + ".sock";
        dopt.control_path = base.string() + ".ctl";
        sopt.workers = 2;
        sopt.queue_capacity = 64;
        sopt.backpressure = serve::Backpressure::Shed;
    }

    void start(bool start_server = true) {
        if (fleet_dir.empty()) {
            server = std::make_shared<serve::Server>(model, sopt);
            router = server->router();
            if (start_server) server->start();
            daemon =
                std::make_unique<netd::Daemon>(server, model, dopt, registry);
        } else {
            serve::RouterOptions ropt;
            ropt.workers = sopt.workers;
            ropt.queue_capacity = sopt.queue_capacity;
            ropt.batch = sopt.batch;
            ropt.backpressure = sopt.backpressure;
            ropt.admission = sopt.admission;
            ropt.clock = sopt.clock;
            ropt.fleet_dir = fleet_dir;
            ropt.resident_budget_bytes = budget_bytes;
            ropt.recorder = recorder;
            ropt.slow_request_us = slow_request_us;
            router = std::make_shared<serve::ModelRouter>(model, ropt);
            if (start_server) router->start();
            daemon = std::make_unique<netd::Daemon>(router, dopt, registry);
        }
        thread = std::thread([this] { daemon->run(); });
        // The daemon binds on its own thread; wait until it answers.
        ASSERT_TRUE(eventually([&] {
            try {
                netd::Client::connect_unix(dopt.data_path);
                return true;
            } catch (const std::exception&) {
                return false;
            }
        }));
    }

    netd::Client connect() { return netd::Client::connect_unix(dopt.data_path); }
    std::string control(const std::string& cmd) {
        return netd::control_request(dopt.control_path, cmd);
    }

    void stop() {
        if (daemon && !daemon->finished()) daemon->request_shutdown();
        if (thread.joinable()) thread.join();
        if (server)
            server->shutdown();
        else if (router)
            router->shutdown();
    }

    ~Harness() {
        stop();
        std::filesystem::remove(dopt.data_path);
        std::filesystem::remove(dopt.control_path);
    }
};

}  // namespace

// ---- data path --------------------------------------------------------------

TEST(Netd, PredictAndCountsBitIdenticalToInProcess) {
    Harness h;
    h.start();
    const auto images = make_images(16);
    const auto session = h.model->open_session();
    auto client = h.connect();

    std::uint64_t id = 1;
    for (const auto& sample : images.samples) {
        const auto resp = client.call(make_frame(sample.image, id++));
        ASSERT_EQ(resp.status, WireStatus::Ok) << resp.error;
        EXPECT_EQ(resp.label, session->predict(sample.image));
        EXPECT_GE(resp.batch_size, 1u);

        const auto counts =
            client.call(make_frame(sample.image, id++, MsgKind::Counts));
        ASSERT_EQ(counts.status, WireStatus::Ok) << counts.error;
        EXPECT_EQ(counts.counts, session->output_counts(sample.image));
    }
}

TEST(Netd, PipelinedRequestsResolveByRequestId) {
    Harness h;
    h.start();
    const auto images = make_images(12);
    const auto session = h.model->open_session();

    std::map<std::uint64_t, std::size_t> expected;
    auto client = h.connect();
    std::uint64_t id = 100;
    for (const auto& sample : images.samples) {
        client.send(make_frame(sample.image, id));
        expected[id++] = session->predict(sample.image);
    }
    // Responses may arrive in any order (each is written back the moment
    // its completion fires) — match them by echoed id.
    const std::size_t total = expected.size();
    for (std::size_t i = 0; i < total; ++i) {
        ResponseFrame resp;
        ASSERT_TRUE(client.recv_response(resp));
        ASSERT_EQ(resp.status, WireStatus::Ok) << resp.error;
        auto it = expected.find(resp.request_id);
        ASSERT_NE(it, expected.end());
        EXPECT_EQ(resp.label, it->second);
        expected.erase(it);
    }
    EXPECT_TRUE(expected.empty());
}

TEST(Netd, WireDeadlineExpiresIntoRejectedFrame) {
    // ManualClock + a not-yet-started server pin the race: the request is
    // accepted over the wire, virtual time jumps past its deadline, and
    // only then do workers run — the head drop must come back as a frame.
    Harness h;
    const auto clock = std::make_shared<serve::ManualClock>();
    h.sopt.clock = clock;
    h.start(/*start_server=*/false);

    auto client = h.connect();
    auto frame = make_frame(make_images(1).samples[0].image, 77);
    frame.deadline_us = 1'000;
    client.send(frame);
    ASSERT_TRUE(eventually([&] { return h.server->stats().accepted >= 1; }));

    clock->advance_us(2'000);  // the SLO passes while queued
    h.server->start();

    ResponseFrame resp;
    ASSERT_TRUE(client.recv_response(resp));
    EXPECT_EQ(resp.request_id, 77u);
    EXPECT_EQ(resp.status, WireStatus::Rejected);
    EXPECT_EQ(resp.reject_reason,
              static_cast<std::uint8_t>(serve::RejectReason::DeadlineExceeded));
    EXPECT_GE(resp.sojourn_us, 1'000u);
}

TEST(Netd, FeedbackFramesFeedTheLearnerQueue) {
    Harness h;
    h.sopt.admission.feedback_capacity = 8;
    h.start();
    const auto img = make_images(1).samples[0].image;

    auto client = h.connect();
    auto frame = make_frame(img, 5, MsgKind::Feedback);
    frame.label = 3;
    const auto resp = client.call(frame);
    EXPECT_EQ(resp.status, WireStatus::Ok);
    EXPECT_EQ(resp.label, 3u);
    EXPECT_EQ(resp.priority,
              static_cast<std::uint8_t>(serve::Priority::Feedback));

    // With the feedback intake disabled the same frame is refused, not
    // dropped silently.
    Harness off;
    off.start();
    auto client2 = off.connect();
    const auto refused = client2.call(frame);
    EXPECT_EQ(refused.status, WireStatus::Rejected);
    EXPECT_EQ(refused.reject_reason,
              static_cast<std::uint8_t>(serve::RejectReason::QueueFull));
}

// ---- fault containment ------------------------------------------------------

TEST(Netd, MalformedFrameClosesOnlyThatConnection) {
    Harness h;
    h.start();

    auto bad = h.connect();
    const std::uint8_t garbage[] = {0x10, 0x00, 0x00, 0x00,  // 16-byte body
                                    0xFF, 0xFF, 0xFF, 0xFF,  // bad version...
                                    0,    0,    0,    0,
                                    0,    0,    0,    0,
                                    0,    0,    0,    0};
    bad.send_raw(garbage, sizeof(garbage));
    std::uint8_t buf[16];
    EXPECT_EQ(bad.recv_raw(buf, sizeof(buf)), 0u);  // EOF, no reply
    EXPECT_TRUE(
        eventually([&] { return h.daemon->stats().malformed_closed >= 1; }));

    // The daemon itself is healthy: a fresh connection serves normally.
    auto good = h.connect();
    const auto resp = good.call(make_frame(make_images(1).samples[0].image, 1));
    EXPECT_EQ(resp.status, WireStatus::Ok) << resp.error;
}

TEST(Netd, OversizedLengthPrefixClosesTheConnection) {
    Harness h;
    h.start();
    auto client = h.connect();
    const std::uint8_t huge[] = {0x00, 0x00, 0x00, 0x10};  // 256 MiB body
    client.send_raw(huge, sizeof(huge));
    std::uint8_t buf[16];
    EXPECT_EQ(client.recv_raw(buf, sizeof(buf)), 0u);
    EXPECT_TRUE(
        eventually([&] { return h.daemon->stats().malformed_closed >= 1; }));
}

TEST(Netd, ClientDisconnectMidFlightDoesNotWedgeTheDaemon) {
    Harness h;
    h.start();
    const auto img = make_images(1).samples[0].image;
    {
        auto client = h.connect();
        for (std::uint64_t id = 0; id < 8; ++id)
            client.send(make_frame(img, id));
        // Destructor closes the socket with every request still in flight;
        // completions hit a closed connection and must be discarded.
    }
    EXPECT_TRUE(eventually([&] {
        const auto s = h.daemon->stats();
        return s.inflight == 0 && s.connections_open == 0;
    }));
    auto client = h.connect();
    const auto resp = client.call(make_frame(img, 99));
    EXPECT_EQ(resp.status, WireStatus::Ok) << resp.error;
}

// ---- drain / shutdown -------------------------------------------------------

TEST(Netd, GracefulShutdownAnswersEverythingItRead) {
    Harness h;
    h.start();
    const auto img = make_images(1).samples[0].image;
    auto client = h.connect();
    constexpr std::uint64_t kRequests = 16;
    for (std::uint64_t id = 0; id < kRequests; ++id)
        client.send(make_frame(img, id));
    // Wait until every frame is in the daemon before pulling the plug, so
    // "accepted" is exact; then every accepted request must still answer.
    ASSERT_TRUE(
        eventually([&] { return h.daemon->stats().frames_in == kRequests; }));
    h.daemon->request_shutdown();

    std::size_t answered = 0;
    ResponseFrame resp;
    while (client.recv_response(resp)) ++answered;  // reads until EOF
    EXPECT_EQ(answered, kRequests);
    EXPECT_TRUE(eventually([&] { return h.daemon->finished(); }));
    h.thread.join();
}

TEST(Netd, DrainClosesDataPlaneButKeepsControlUp) {
    Harness h;
    h.start();
    EXPECT_EQ(h.control("drain"), "ok draining");

    // The data listener goes away (its socket file is unlinked)...
    EXPECT_TRUE(eventually([&] {
        try {
            h.connect();
            return false;
        } catch (const std::exception&) {
            return true;
        }
    }));
    // ...while the control plane still answers, and can then escalate.
    EXPECT_EQ(h.control("ping"), "ok pong");
    EXPECT_EQ(h.control("shutdown"), "ok shutting-down");
    EXPECT_TRUE(eventually([&] { return h.daemon->finished(); }));
    h.thread.join();
}

// ---- control socket ---------------------------------------------------------

TEST(Netd, ControlPingStatsAndVersion) {
    Harness h;
    h.start();
    EXPECT_EQ(h.control("ping"), "ok pong");
    EXPECT_EQ(h.control("version"), "ok 0");
    EXPECT_EQ(h.control("bogus"), "err unknown command: bogus");
    EXPECT_EQ(h.control("load 1"), "err no registry");

    const std::string stats = h.control("stats");
    ASSERT_EQ(stats.rfind("ok {", 0), 0u) << stats;
    EXPECT_NE(stats.find("\"server\":{"), std::string::npos);
    EXPECT_NE(stats.find("\"daemon\":{"), std::string::npos);
    EXPECT_NE(stats.find("\"connections\":["), std::string::npos);
    EXPECT_NE(stats.find("\"control_commands\""), std::string::npos);
}

TEST(Netd, RegistryPinAndRollbackRoundTrip) {
    Harness h;
    const auto dir = std::filesystem::temp_directory_path() /
                     ("neuro_netd_reg_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    h.registry = std::make_shared<online::ModelRegistry>(dir.string());
    h.registry->record(1, 0.81, forced_snapshot(*h.model, 1));
    h.registry->record(2, 0.86, forced_snapshot(*h.model, 2));
    h.start();

    const auto img = make_images(1).samples[0].image;
    auto client = h.connect();

    EXPECT_EQ(h.control("load latest"), "ok pinned 2 published 1");
    // Worker sessions adopt the published image at their next batch
    // boundary; the forced output layer then predicts the winner.
    EXPECT_TRUE(eventually([&] {
        static std::uint64_t id = 1000;
        return client.call(make_frame(img, id++)).label == 2u;
    }));

    EXPECT_EQ(h.control("rollback"), "ok pinned 1 published 2");
    EXPECT_TRUE(eventually([&] {
        static std::uint64_t id = 2000;
        return client.call(make_frame(img, id++)).label == 1u;
    }));

    EXPECT_EQ(h.control("rollback"), "err nothing to roll back to");
    EXPECT_EQ(h.control("load 9"), "err unknown version: 9");
    EXPECT_EQ(h.control("version"), "ok 2");
    EXPECT_EQ(h.control("unload"), "ok unloaded");
    EXPECT_EQ(h.control("version"), "ok 3");

    const std::string versions = h.control("versions");
    EXPECT_NE(versions.find("\"version\":1"), std::string::npos);
    EXPECT_NE(versions.find("\"version\":2"), std::string::npos);

    h.stop();
    std::filesystem::remove_all(dir);
}

// ---- multi-model (protocol v2) ----------------------------------------------

TEST(Netd, V2RoutesToMultipleModelsBitIdentically) {
    Harness h;
    h.fleet_dir = make_fleet("route", *h.model, {{"alpha", 1}, {"beta", 2}});
    h.start();
    const auto images = make_images(8);

    // Ground truth: dedicated sessions per weight image, outside the daemon.
    const auto plain = h.model->open_session();
    const auto alpha =
        h.model->with_weights(forced_snapshot(*h.model, 1))->open_session();
    const auto beta =
        h.model->with_weights(forced_snapshot(*h.model, 2))->open_session();

    // Pipeline all three tenants interleaved over ONE connection and match
    // replies by id — routing must never bleed one model's weights into
    // another's answers.
    auto client = h.connect();
    std::map<std::uint64_t, std::pair<std::string, std::size_t>> expected;
    std::uint64_t id = 1;
    for (const auto& sample : images.samples) {
        client.send(make_v2_frame(sample.image, id, ""));
        expected[id++] = {"", plain->predict(sample.image)};
        client.send(make_v2_frame(sample.image, id, "alpha"));
        expected[id++] = {"alpha", alpha->predict(sample.image)};
        client.send(make_v2_frame(sample.image, id, "beta"));
        expected[id++] = {"beta", beta->predict(sample.image)};
    }
    const std::size_t total = expected.size();
    for (std::size_t i = 0; i < total; ++i) {
        ResponseFrame resp;
        ASSERT_TRUE(client.recv_response(resp));
        ASSERT_EQ(resp.status, WireStatus::Ok) << resp.error;
        auto it = expected.find(resp.request_id);
        ASSERT_NE(it, expected.end());
        EXPECT_EQ(resp.version, netd::kProtocolVersionV2);
        EXPECT_EQ(resp.model, it->second.first);
        EXPECT_EQ(resp.label, it->second.second);
        expected.erase(it);
    }
    EXPECT_TRUE(expected.empty());

    // Counts go through the same per-model sessions, bit-identically.
    const auto& img = images.samples[0].image;
    const auto counts =
        client.call(make_v2_frame(img, 9000, "alpha", MsgKind::Counts));
    ASSERT_EQ(counts.status, WireStatus::Ok) << counts.error;
    EXPECT_EQ(counts.counts, alpha->output_counts(img));
}

TEST(Netd, V2UnknownModelRejectsOnTheWire) {
    Harness h;
    h.fleet_dir = make_fleet("ghost", *h.model, {{"alpha", 1}});
    h.start();
    auto client = h.connect();

    const auto resp =
        client.call(make_v2_frame(make_images(1).samples[0].image, 7, "nope"));
    EXPECT_EQ(resp.status, WireStatus::Rejected);
    EXPECT_EQ(resp.reject_reason,
              static_cast<std::uint8_t>(serve::RejectReason::UnknownModel));
    EXPECT_EQ(resp.version, netd::kProtocolVersionV2);
    EXPECT_EQ(resp.model, "nope");
}

TEST(Netd, V1FramesStillServeTheDefaultModelOnAFleetDaemon) {
    // A v1 client pointed at a fleet-enabled daemon must see exactly what it
    // saw before multi-model existed: default-model answers in v1 frames.
    Harness h;
    h.fleet_dir = make_fleet("compat", *h.model, {{"alpha", 1}});
    h.start();
    const auto img = make_images(1).samples[0].image;
    const auto session = h.model->open_session();

    auto client = h.connect();
    const auto resp = client.call(make_frame(img, 42));
    ASSERT_EQ(resp.status, WireStatus::Ok) << resp.error;
    EXPECT_EQ(resp.version, netd::kProtocolVersion);
    EXPECT_TRUE(resp.model.empty());
    EXPECT_EQ(resp.label, session->predict(img));
}

TEST(Netd, FleetControlCommandsDriveTheRouter) {
    Harness h;
    h.fleet_dir = make_fleet("ctl", *h.model, {{"alpha", 1}, {"beta", 2}});
    // A second alpha version with a different forced winner makes pin and
    // canary switches observable through the data socket.
    {
        online::ModelRegistry reg(
            (std::filesystem::path(h.fleet_dir) / "alpha").string());
        reg.record(2, 0.95, forced_snapshot(*h.model, 3));
    }
    h.start();
    const auto img = make_images(1).samples[0].image;
    auto client = h.connect();

    // Discovery before anything is resident.
    const std::string cold = h.control("models");
    ASSERT_EQ(cold.rfind("ok [", 0), 0u) << cold;
    EXPECT_NE(cold.find("\"name\":\"alpha\""), std::string::npos);
    EXPECT_NE(cold.find("\"name\":\"beta\""), std::string::npos);
    EXPECT_NE(cold.find("\"resident\":false"), std::string::npos);

    // Explicit load picks the registry's last good version (2).
    EXPECT_EQ(h.control("load alpha"), "ok loaded alpha version 2");
    EXPECT_TRUE(eventually([&] {
        static std::uint64_t id = 1000;
        return client.call(make_v2_frame(img, id++, "alpha")).label == 3u;
    }));

    // Pin rolls the base arm back to version 1 on the live entry.
    EXPECT_EQ(h.control("pin alpha 1"), "ok pinned alpha 1");
    EXPECT_TRUE(eventually([&] {
        static std::uint64_t id = 2000;
        return client.call(make_v2_frame(img, id++, "alpha")).label == 1u;
    }));

    // Canary at 100% sends every request to version 2's arm...
    EXPECT_EQ(h.control("canary alpha 2 100"), "ok canary alpha version 2 pct 100");
    EXPECT_TRUE(eventually([&] {
        static std::uint64_t id = 3000;
        return client.call(make_v2_frame(img, id++, "alpha")).label == 3u;
    }));
    // ...and clearing it restores the pinned base.
    EXPECT_EQ(h.control("canary alpha 0 0"), "ok canary alpha version 0 pct 0");
    EXPECT_TRUE(eventually([&] {
        static std::uint64_t id = 4000;
        return client.call(make_v2_frame(img, id++, "alpha")).label == 1u;
    }));

    // Per-entry stats narrow to one JSON object with live counters.
    const std::string stats = h.control("stats alpha");
    ASSERT_EQ(stats.rfind("ok {", 0), 0u) << stats;
    EXPECT_NE(stats.find("\"name\":\"alpha\""), std::string::npos);
    EXPECT_NE(stats.find("\"resident\":true"), std::string::npos);
    // The daemon-wide stats JSON now carries the fleet too.
    const std::string all = h.control("stats");
    EXPECT_NE(all.find("\"models\":["), std::string::npos);

    EXPECT_EQ(h.control("unload alpha"), "ok unloaded alpha");
    const std::string after = h.control("models");
    EXPECT_NE(after.find("\"name\":\"alpha\""), std::string::npos);

    std::filesystem::remove_all(h.fleet_dir);
}

// ---- observability (docs/ARCHITECTURE.md §14) -------------------------------

TEST(Netd, MetricsScrapeExposesServerAndDaemonFamilies) {
    obs::Registry reg;
    Harness h;
    h.dopt.metrics = &reg;
    h.start();
    const auto img = make_images(1).samples[0].image;
    auto client = h.connect();
    for (std::uint64_t id = 1; id <= 4; ++id) {
        const auto resp = client.call(make_frame(img, id));
        ASSERT_EQ(resp.status, WireStatus::Ok) << resp.error;
    }

    const std::string text =
        netd::control_request_multiline(h.dopt.control_path, "metrics");
    // Well-formed exposition: HELP/TYPE headers, the absorbed ServerStats
    // and DaemonStats families with live values, "# EOF" terminator line.
    EXPECT_NE(text.find("# TYPE "), std::string::npos) << text;
    EXPECT_NE(text.find("# HELP "), std::string::npos);
    EXPECT_NE(text.find("neuro_server_accepted_total 4"), std::string::npos)
        << text;
    EXPECT_NE(text.find("neuro_server_completed_total 4"), std::string::npos);
    EXPECT_NE(text.find("neuro_daemon_frames_in_total 4"), std::string::npos);
    EXPECT_NE(text.find("neuro_daemon_connections_open "), std::string::npos);
    EXPECT_NE(text.find("neuro_server_latency_us{quantile=\"0.99\"}"),
              std::string::npos);
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
    // Scrapes are deterministic in shape: a second one still terminates.
    const std::string again =
        netd::control_request_multiline(h.dopt.control_path, "metrics");
    EXPECT_EQ(again.substr(again.size() - 6), "# EOF\n");
}

TEST(Netd, MetricsScrapeCoversTheFleetPerModelFamilies) {
    obs::Registry reg;
    Harness h;
    h.fleet_dir = make_fleet("metrics", *h.model, {{"alpha", 1}});
    h.dopt.metrics = &reg;
    h.start();
    EXPECT_EQ(h.control("load alpha"), "ok loaded alpha version 1");
    const auto img = make_images(1).samples[0].image;
    auto client = h.connect();
    const auto resp = client.call(make_v2_frame(img, 1, "alpha"));
    ASSERT_EQ(resp.status, WireStatus::Ok) << resp.error;

    const std::string text =
        netd::control_request_multiline(h.dopt.control_path, "metrics");
    EXPECT_NE(text.find("{model=\"alpha\""), std::string::npos) << text;
    EXPECT_NE(text.find("neuro_model_dispatched_total"), std::string::npos);
    EXPECT_NE(text.find("neuro_model_weight_bytes{model=\"alpha\"}"),
              std::string::npos);
    std::filesystem::remove_all(h.fleet_dir);
}

TEST(Netd, MetricsWithoutRegistryAndEventsWithoutRecorderErr) {
    Harness h;
    h.start();
    EXPECT_EQ(h.control("metrics"), "err no metrics registry");
    EXPECT_EQ(h.control("events"), "err no recorder");
    // The multiline client returns a bare err line without waiting for a
    // terminator that will never come.
    EXPECT_EQ(netd::control_request_multiline(h.dopt.control_path, "metrics"),
              "err no metrics registry");
}

TEST(Netd, EventsDumpRecordsControlPlaneHistory) {
    obs::FlightRecorder rec(64);
    Harness h;
    h.fleet_dir = make_fleet("events", *h.model, {{"alpha", 1}});
    h.recorder = &rec;
    h.start();
    EXPECT_EQ(h.control("load alpha"), "ok loaded alpha version 1");
    EXPECT_EQ(h.control("pin alpha 1"), "ok pinned alpha 1");

    const std::string events = h.control("events");
    ASSERT_EQ(events.rfind("ok [", 0), 0u) << events;
    EXPECT_NE(events.find("\"kind\":\"model_load\""), std::string::npos)
        << events;
    EXPECT_NE(events.find("\"kind\":\"weight_publish\""), std::string::npos);
    EXPECT_NE(events.find("\"detail\":\"alpha\""), std::string::npos);

    // `events N` narrows the dump to the newest N.
    const std::string one = h.control("events 1");
    ASSERT_EQ(one.rfind("ok [", 0), 0u) << one;
    EXPECT_EQ(one.find("\"kind\":\"model_load\""), std::string::npos) << one;
    std::filesystem::remove_all(h.fleet_dir);
}

TEST(Netd, SlowRequestEventsCarryTheSpanBreakdown) {
    obs::FlightRecorder rec(64);
    Harness h;
    h.fleet_dir = make_fleet("slow", *h.model, {{"alpha", 1}});
    h.recorder = &rec;
    h.slow_request_us = 1;  // every dispatched request is "slow"
    h.start();
    const auto img = make_images(1).samples[0].image;
    auto client = h.connect();
    const auto resp = client.call(make_v2_frame(img, 31, "alpha"));
    ASSERT_EQ(resp.status, WireStatus::Ok) << resp.error;

    ASSERT_TRUE(eventually([&] {
        return h.control("events").find("\"kind\":\"slow_request\"") !=
               std::string::npos;
    }));
    const std::string events = h.control("events");
    EXPECT_NE(events.find("\"spans\":{"), std::string::npos) << events;
    EXPECT_NE(events.find("\"compute_us\":"), std::string::npos);
    std::filesystem::remove_all(h.fleet_dir);
}

TEST(Netd, V3TraceEchoTelescopesToTheWireLatency) {
    Harness h;
    h.start();
    const auto img = make_images(1).samples[0].image;
    auto client = h.connect();

    RequestFrame f = make_frame(img, 41);
    f.version = netd::kProtocolVersionV3;
    f.flags = netd::kFlagTrace;
    const auto resp = client.call(f);
    ASSERT_EQ(resp.status, WireStatus::Ok) << resp.error;
    EXPECT_EQ(resp.version, netd::kProtocolVersionV3);
    ASSERT_FALSE(resp.trace.empty());

    std::map<std::uint8_t, std::uint64_t> spans;
    for (const auto& s : resp.trace) {
        EXPECT_GE(s.id, 1);
        EXPECT_LE(s.id, 7);
        EXPECT_TRUE(spans.emplace(s.id, s.value).second)
            << "duplicate span id " << int(s.id);
    }
    const std::uint64_t total =
        spans[static_cast<std::uint8_t>(obs::SpanId::TotalUs)];
    const std::uint64_t sum =
        spans[static_cast<std::uint8_t>(obs::SpanId::QueueUs)] +
        spans[static_cast<std::uint8_t>(obs::SpanId::BatchUs)] +
        spans[static_cast<std::uint8_t>(obs::SpanId::ComputeUs)] +
        spans[static_cast<std::uint8_t>(obs::SpanId::ResolveUs)];
    // The phases telescope by construction: their sum IS the total span.
    EXPECT_EQ(sum, total);
    // And the total reconciles with the latency the server measured — the
    // end-to-end acceptance criterion (5% plus clock-coarseness slack).
    const double slack =
        std::max(0.05 * static_cast<double>(resp.latency_us), 200.0);
    EXPECT_LE(static_cast<double>(total),
              static_cast<double>(resp.latency_us) + slack);
    EXPECT_GE(static_cast<double>(total) + slack,
              static_cast<double>(resp.latency_us));
}

TEST(Netd, V3WithoutTheFlagAndOlderVersionsGetNoTraceBlock) {
    Harness h;
    h.start();
    const auto img = make_images(1).samples[0].image;
    auto client = h.connect();

    RequestFrame v3 = make_frame(img, 51);
    v3.version = netd::kProtocolVersionV3;  // flags stay 0
    const auto resp3 = client.call(v3);
    ASSERT_EQ(resp3.status, WireStatus::Ok) << resp3.error;
    EXPECT_EQ(resp3.version, netd::kProtocolVersionV3);
    EXPECT_TRUE(resp3.trace.empty());

    const auto resp1 = client.call(make_frame(img, 52));
    ASSERT_EQ(resp1.status, WireStatus::Ok) << resp1.error;
    EXPECT_EQ(resp1.version, netd::kProtocolVersion);
    EXPECT_TRUE(resp1.trace.empty());
}
