// End-to-end loopback tests for the neurod daemon (netd/daemon.hpp):
//   * predictions over the wire are bit-identical to in-process serving
//     (which is itself bit-identical to sequential Session inference),
//   * pipelined requests resolve out-of-order-safe by request id,
//   * admission metadata survives the wire: a deadline that expires while
//     queued comes back Rejected{DeadlineExceeded}, pinned on a ManualClock,
//   * malformed/oversized frames close that connection and ONLY that
//     connection — the daemon keeps serving,
//   * a client that disconnects mid-flight leaks nothing (ASan-enforced)
//     and never wedges the drain,
//   * drain/shutdown semantics: accepted-implies-responded, control socket
//     survives a pure drain,
//   * control commands: ping/stats/version, and registry pin/rollback
//     round-trips through online::ModelRegistry into live published weights.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "netd/client.hpp"
#include "netd/daemon.hpp"
#include "online/registry.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/clock.hpp"
#include "serve/server.hpp"

using namespace neuro;
using netd::MsgKind;
using netd::RequestFrame;
using netd::ResponseFrame;
using netd::WireStatus;

namespace {

constexpr std::size_t kSide = 12;
constexpr std::size_t kClasses = 10;

std::shared_ptr<const runtime::CompiledModel> make_model() {
    runtime::ModelSpec spec;
    spec.input(1, kSide, kSide).hidden_layers({40}).output_classes(kClasses);
    return runtime::CompiledModel::compile(spec,
                                           runtime::BackendKind::LoihiSim);
}

data::Dataset make_images(std::size_t n) {
    data::GenOptions gen;
    gen.count = n;
    gen.seed = 33;
    gen.height = kSide;
    gen.width = kSide;
    return data::make_digits(gen);
}

RequestFrame make_frame(const common::Tensor& img, std::uint64_t id,
                        MsgKind kind = MsgKind::Predict) {
    RequestFrame f;
    f.kind = kind;
    f.request_id = id;
    f.shape.assign(img.shape().begin(), img.shape().end());
    f.data.assign(img.data(), img.data() + img.size());
    return f;
}

/// Polls `cond` generously (sized for TSan's slowdown; real waits are ms).
template <typename F>
bool eventually(F cond) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(90);
    while (std::chrono::steady_clock::now() < deadline) {
        if (cond()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return cond();
}

/// A weight image whose output layer always predicts `winner` — makes
/// control-socket weight pinning observable through the data socket.
runtime::WeightSnapshot forced_snapshot(const runtime::CompiledModel& model,
                                        std::size_t winner) {
    runtime::WeightSnapshot snap = model.initial_weights();
    auto& out = snap.layers.back();
    const std::size_t fan_in = out.size() / kClasses;
    for (std::size_t c = 0; c < kClasses; ++c)
        for (std::size_t i = 0; i < fan_in; ++i)
            out[c * fan_in + i] = c == winner ? 60 : -60;
    return snap;
}

/// One daemon on unique Unix socket paths, run on a dedicated thread.
/// Tests tweak the public option fields before start().
struct Harness {
    std::shared_ptr<const runtime::CompiledModel> model = make_model();
    serve::ServerOptions sopt;
    netd::DaemonOptions dopt;
    std::shared_ptr<online::ModelRegistry> registry;

    std::shared_ptr<serve::Server> server;
    std::unique_ptr<netd::Daemon> daemon;
    std::thread thread;

    Harness() {
        static std::atomic<int> counter{0};
        const auto base =
            std::filesystem::temp_directory_path() /
            ("neuro_netd_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
        dopt.data_path = base.string() + ".sock";
        dopt.control_path = base.string() + ".ctl";
        sopt.workers = 2;
        sopt.queue_capacity = 64;
        sopt.backpressure = serve::Backpressure::Shed;
    }

    void start(bool start_server = true) {
        server = std::make_shared<serve::Server>(model, sopt);
        if (start_server) server->start();
        daemon = std::make_unique<netd::Daemon>(server, model, dopt, registry);
        thread = std::thread([this] { daemon->run(); });
        // The daemon binds on its own thread; wait until it answers.
        ASSERT_TRUE(eventually([&] {
            try {
                netd::Client::connect_unix(dopt.data_path);
                return true;
            } catch (const std::exception&) {
                return false;
            }
        }));
    }

    netd::Client connect() { return netd::Client::connect_unix(dopt.data_path); }
    std::string control(const std::string& cmd) {
        return netd::control_request(dopt.control_path, cmd);
    }

    void stop() {
        if (daemon && !daemon->finished()) daemon->request_shutdown();
        if (thread.joinable()) thread.join();
        if (server) server->shutdown();
    }

    ~Harness() {
        stop();
        std::filesystem::remove(dopt.data_path);
        std::filesystem::remove(dopt.control_path);
    }
};

}  // namespace

// ---- data path --------------------------------------------------------------

TEST(Netd, PredictAndCountsBitIdenticalToInProcess) {
    Harness h;
    h.start();
    const auto images = make_images(16);
    const auto session = h.model->open_session();
    auto client = h.connect();

    std::uint64_t id = 1;
    for (const auto& sample : images.samples) {
        const auto resp = client.call(make_frame(sample.image, id++));
        ASSERT_EQ(resp.status, WireStatus::Ok) << resp.error;
        EXPECT_EQ(resp.label, session->predict(sample.image));
        EXPECT_GE(resp.batch_size, 1u);

        const auto counts =
            client.call(make_frame(sample.image, id++, MsgKind::Counts));
        ASSERT_EQ(counts.status, WireStatus::Ok) << counts.error;
        EXPECT_EQ(counts.counts, session->output_counts(sample.image));
    }
}

TEST(Netd, PipelinedRequestsResolveByRequestId) {
    Harness h;
    h.start();
    const auto images = make_images(12);
    const auto session = h.model->open_session();

    std::map<std::uint64_t, std::size_t> expected;
    auto client = h.connect();
    std::uint64_t id = 100;
    for (const auto& sample : images.samples) {
        client.send(make_frame(sample.image, id));
        expected[id++] = session->predict(sample.image);
    }
    // Responses may arrive in any order (each is written back the moment
    // its completion fires) — match them by echoed id.
    const std::size_t total = expected.size();
    for (std::size_t i = 0; i < total; ++i) {
        ResponseFrame resp;
        ASSERT_TRUE(client.recv_response(resp));
        ASSERT_EQ(resp.status, WireStatus::Ok) << resp.error;
        auto it = expected.find(resp.request_id);
        ASSERT_NE(it, expected.end());
        EXPECT_EQ(resp.label, it->second);
        expected.erase(it);
    }
    EXPECT_TRUE(expected.empty());
}

TEST(Netd, WireDeadlineExpiresIntoRejectedFrame) {
    // ManualClock + a not-yet-started server pin the race: the request is
    // accepted over the wire, virtual time jumps past its deadline, and
    // only then do workers run — the head drop must come back as a frame.
    Harness h;
    const auto clock = std::make_shared<serve::ManualClock>();
    h.sopt.clock = clock;
    h.start(/*start_server=*/false);

    auto client = h.connect();
    auto frame = make_frame(make_images(1).samples[0].image, 77);
    frame.deadline_us = 1'000;
    client.send(frame);
    ASSERT_TRUE(eventually([&] { return h.server->stats().accepted >= 1; }));

    clock->advance_us(2'000);  // the SLO passes while queued
    h.server->start();

    ResponseFrame resp;
    ASSERT_TRUE(client.recv_response(resp));
    EXPECT_EQ(resp.request_id, 77u);
    EXPECT_EQ(resp.status, WireStatus::Rejected);
    EXPECT_EQ(resp.reject_reason,
              static_cast<std::uint8_t>(serve::RejectReason::DeadlineExceeded));
    EXPECT_GE(resp.sojourn_us, 1'000u);
}

TEST(Netd, FeedbackFramesFeedTheLearnerQueue) {
    Harness h;
    h.sopt.admission.feedback_capacity = 8;
    h.start();
    const auto img = make_images(1).samples[0].image;

    auto client = h.connect();
    auto frame = make_frame(img, 5, MsgKind::Feedback);
    frame.label = 3;
    const auto resp = client.call(frame);
    EXPECT_EQ(resp.status, WireStatus::Ok);
    EXPECT_EQ(resp.label, 3u);
    EXPECT_EQ(resp.priority,
              static_cast<std::uint8_t>(serve::Priority::Feedback));

    // With the feedback intake disabled the same frame is refused, not
    // dropped silently.
    Harness off;
    off.start();
    auto client2 = off.connect();
    const auto refused = client2.call(frame);
    EXPECT_EQ(refused.status, WireStatus::Rejected);
    EXPECT_EQ(refused.reject_reason,
              static_cast<std::uint8_t>(serve::RejectReason::QueueFull));
}

// ---- fault containment ------------------------------------------------------

TEST(Netd, MalformedFrameClosesOnlyThatConnection) {
    Harness h;
    h.start();

    auto bad = h.connect();
    const std::uint8_t garbage[] = {0x10, 0x00, 0x00, 0x00,  // 16-byte body
                                    0xFF, 0xFF, 0xFF, 0xFF,  // bad version...
                                    0,    0,    0,    0,
                                    0,    0,    0,    0,
                                    0,    0,    0,    0};
    bad.send_raw(garbage, sizeof(garbage));
    std::uint8_t buf[16];
    EXPECT_EQ(bad.recv_raw(buf, sizeof(buf)), 0u);  // EOF, no reply
    EXPECT_TRUE(
        eventually([&] { return h.daemon->stats().malformed_closed >= 1; }));

    // The daemon itself is healthy: a fresh connection serves normally.
    auto good = h.connect();
    const auto resp = good.call(make_frame(make_images(1).samples[0].image, 1));
    EXPECT_EQ(resp.status, WireStatus::Ok) << resp.error;
}

TEST(Netd, OversizedLengthPrefixClosesTheConnection) {
    Harness h;
    h.start();
    auto client = h.connect();
    const std::uint8_t huge[] = {0x00, 0x00, 0x00, 0x10};  // 256 MiB body
    client.send_raw(huge, sizeof(huge));
    std::uint8_t buf[16];
    EXPECT_EQ(client.recv_raw(buf, sizeof(buf)), 0u);
    EXPECT_TRUE(
        eventually([&] { return h.daemon->stats().malformed_closed >= 1; }));
}

TEST(Netd, ClientDisconnectMidFlightDoesNotWedgeTheDaemon) {
    Harness h;
    h.start();
    const auto img = make_images(1).samples[0].image;
    {
        auto client = h.connect();
        for (std::uint64_t id = 0; id < 8; ++id)
            client.send(make_frame(img, id));
        // Destructor closes the socket with every request still in flight;
        // completions hit a closed connection and must be discarded.
    }
    EXPECT_TRUE(eventually([&] {
        const auto s = h.daemon->stats();
        return s.inflight == 0 && s.connections_open == 0;
    }));
    auto client = h.connect();
    const auto resp = client.call(make_frame(img, 99));
    EXPECT_EQ(resp.status, WireStatus::Ok) << resp.error;
}

// ---- drain / shutdown -------------------------------------------------------

TEST(Netd, GracefulShutdownAnswersEverythingItRead) {
    Harness h;
    h.start();
    const auto img = make_images(1).samples[0].image;
    auto client = h.connect();
    constexpr std::uint64_t kRequests = 16;
    for (std::uint64_t id = 0; id < kRequests; ++id)
        client.send(make_frame(img, id));
    // Wait until every frame is in the daemon before pulling the plug, so
    // "accepted" is exact; then every accepted request must still answer.
    ASSERT_TRUE(
        eventually([&] { return h.daemon->stats().frames_in == kRequests; }));
    h.daemon->request_shutdown();

    std::size_t answered = 0;
    ResponseFrame resp;
    while (client.recv_response(resp)) ++answered;  // reads until EOF
    EXPECT_EQ(answered, kRequests);
    EXPECT_TRUE(eventually([&] { return h.daemon->finished(); }));
    h.thread.join();
}

TEST(Netd, DrainClosesDataPlaneButKeepsControlUp) {
    Harness h;
    h.start();
    EXPECT_EQ(h.control("drain"), "ok draining");

    // The data listener goes away (its socket file is unlinked)...
    EXPECT_TRUE(eventually([&] {
        try {
            h.connect();
            return false;
        } catch (const std::exception&) {
            return true;
        }
    }));
    // ...while the control plane still answers, and can then escalate.
    EXPECT_EQ(h.control("ping"), "ok pong");
    EXPECT_EQ(h.control("shutdown"), "ok shutting-down");
    EXPECT_TRUE(eventually([&] { return h.daemon->finished(); }));
    h.thread.join();
}

// ---- control socket ---------------------------------------------------------

TEST(Netd, ControlPingStatsAndVersion) {
    Harness h;
    h.start();
    EXPECT_EQ(h.control("ping"), "ok pong");
    EXPECT_EQ(h.control("version"), "ok 0");
    EXPECT_EQ(h.control("bogus"), "err unknown command: bogus");
    EXPECT_EQ(h.control("load 1"), "err no registry");

    const std::string stats = h.control("stats");
    ASSERT_EQ(stats.rfind("ok {", 0), 0u) << stats;
    EXPECT_NE(stats.find("\"server\":{"), std::string::npos);
    EXPECT_NE(stats.find("\"daemon\":{"), std::string::npos);
    EXPECT_NE(stats.find("\"connections\":["), std::string::npos);
    EXPECT_NE(stats.find("\"control_commands\""), std::string::npos);
}

TEST(Netd, RegistryPinAndRollbackRoundTrip) {
    Harness h;
    const auto dir = std::filesystem::temp_directory_path() /
                     ("neuro_netd_reg_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    h.registry = std::make_shared<online::ModelRegistry>(dir.string());
    h.registry->record(1, 0.81, forced_snapshot(*h.model, 1));
    h.registry->record(2, 0.86, forced_snapshot(*h.model, 2));
    h.start();

    const auto img = make_images(1).samples[0].image;
    auto client = h.connect();

    EXPECT_EQ(h.control("load latest"), "ok pinned 2 published 1");
    // Worker sessions adopt the published image at their next batch
    // boundary; the forced output layer then predicts the winner.
    EXPECT_TRUE(eventually([&] {
        static std::uint64_t id = 1000;
        return client.call(make_frame(img, id++)).label == 2u;
    }));

    EXPECT_EQ(h.control("rollback"), "ok pinned 1 published 2");
    EXPECT_TRUE(eventually([&] {
        static std::uint64_t id = 2000;
        return client.call(make_frame(img, id++)).label == 1u;
    }));

    EXPECT_EQ(h.control("rollback"), "err nothing to roll back to");
    EXPECT_EQ(h.control("load 9"), "err unknown version: 9");
    EXPECT_EQ(h.control("version"), "ok 2");
    EXPECT_EQ(h.control("unload"), "ok unloaded");
    EXPECT_EQ(h.control("version"), "ok 3");

    const std::string versions = h.control("versions");
    EXPECT_NE(versions.find("\"version\":1"), std::string::npos);
    EXPECT_NE(versions.find("\"version\":2"), std::string::npos);

    h.stop();
    std::filesystem::remove_all(dir);
}
