#!/usr/bin/env python3
"""Unit tests for tools/check_bench_regression.py — the CI bench gate is
itself gated (registered with ctest as check_bench_regression_py).

Runs the tool as a subprocess against synthetic baseline/result trees in a
temp dir, covering: pass/fail tolerance edges, same-run ratio
normalization, the min_baseline signal floor, missing baselines/results/
metrics/rows, --only filtering, and malformed JSON.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL = os.path.join(REPO_ROOT, "tools", "check_bench_regression.py")


def run_tool(*args):
    proc = subprocess.run(
        [sys.executable, TOOL, *args],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout + proc.stderr


def throughput_rows(serial_dense, others):
    """throughput_parallel-shaped rows: one normalization row + extras."""
    rows = [{"config": "serial, dense sweep", "threads": 1,
             "samples_per_sec": serial_dense}]
    for config, rate in others.items():
        rows.append({"config": config, "threads": 2,
                     "samples_per_sec": rate})
    return rows


class GateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.baselines = os.path.join(self.tmp.name, "baselines")
        self.results = os.path.join(self.tmp.name, "results")
        os.makedirs(self.baselines)
        os.makedirs(self.results)

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, where, name, rows):
        with open(os.path.join(where, name + ".json"), "w",
                  encoding="utf-8") as f:
            json.dump(rows, f)

    def run_gate(self, *extra):
        return run_tool("--baselines", self.baselines,
                        "--results", self.results, *extra)

    # ---- normalization + tolerance edges ------------------------------------

    def test_ratio_normalization_ignores_absolute_machine_speed(self):
        # Baseline machine: 100 -> 200 (2x). Current machine 10x slower
        # overall but with the same ratio: must pass.
        self.write(self.baselines, "throughput_parallel",
                   throughput_rows(100.0, {"parallel": 200.0}))
        self.write(self.results, "throughput_parallel",
                   throughput_rows(10.0, {"parallel": 20.0}))
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)

    def test_ratio_regression_fails(self):
        # Ratio drops 2.0 -> 1.0 (50% > 20% tolerance) even though the raw
        # current rate is higher than baseline.
        self.write(self.baselines, "throughput_parallel",
                   throughput_rows(100.0, {"parallel": 200.0}))
        self.write(self.results, "throughput_parallel",
                   throughput_rows(300.0, {"parallel": 300.0}))
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("regressed", out)

    def test_exactly_at_tolerance_floor_passes(self):
        # floor = 2.0 * (1 - 0.25) = 1.5; current ratio exactly 1.5.
        self.write(self.baselines, "throughput_parallel",
                   throughput_rows(100.0, {"parallel": 200.0}))
        self.write(self.results, "throughput_parallel",
                   throughput_rows(100.0, {"parallel": 150.0}))
        code, out = self.run_gate("--tolerance", "0.25")
        self.assertEqual(code, 0, out)

    def test_just_below_tolerance_floor_fails(self):
        self.write(self.baselines, "throughput_parallel",
                   throughput_rows(100.0, {"parallel": 200.0}))
        self.write(self.results, "throughput_parallel",
                   throughput_rows(100.0, {"parallel": 149.0}))
        code, out = self.run_gate("--tolerance", "0.25")
        self.assertEqual(code, 1, out)

    def test_zero_tolerance_requires_no_drop_at_all(self):
        self.write(self.baselines, "throughput_parallel",
                   throughput_rows(100.0, {"parallel": 200.0}))
        self.write(self.results, "throughput_parallel",
                   throughput_rows(100.0, {"parallel": 199.9}))
        code, _ = self.run_gate("--tolerance", "0.0")
        self.assertEqual(code, 1)
        self.write(self.results, "throughput_parallel",
                   throughput_rows(100.0, {"parallel": 200.0}))
        code, _ = self.run_gate("--tolerance", "0.0")
        self.assertEqual(code, 0)

    def test_missing_normalization_row_is_an_error(self):
        self.write(self.baselines, "throughput_parallel",
                   throughput_rows(100.0, {"parallel": 200.0}))
        self.write(self.results, "throughput_parallel",
                   [{"config": "parallel", "samples_per_sec": 200.0}])
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("normalization row", out)

    def test_serving_load_rule_normalizes_by_single_worker(self):
        base = [
            {"config": "closed, workers=1, batch=1", "throughput_rps": 100.0},
            {"config": "closed, workers=4, batch=1", "throughput_rps": 300.0},
        ]
        cur_ok = [
            {"config": "closed, workers=1, batch=1", "throughput_rps": 50.0},
            {"config": "closed, workers=4, batch=1", "throughput_rps": 150.0},
        ]
        self.write(self.baselines, "serving_load", base)
        self.write(self.results, "serving_load", cur_ok)
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)
        # Scale-out collapse (3x -> 1x) must fail.
        cur_bad = [
            {"config": "closed, workers=1, batch=1", "throughput_rps": 100.0},
            {"config": "closed, workers=4, batch=1", "throughput_rps": 100.0},
        ]
        self.write(self.results, "serving_load", cur_bad)
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)

    # ---- multi-model fan-out tax (serving_multimodel) ------------------------

    @staticmethod
    def multimodel_rows(single, others):
        rows = [{"config": "multimodel, models=1", "models": 1,
                 "throughput_rps": single}]
        for m, rate in others.items():
            rows.append({"config": f"multimodel, models={m}", "models": m,
                         "throughput_rps": rate})
        return rows

    def test_multimodel_fanout_ratio_transfers_across_machines(self):
        # Baseline: models=4 holds 90% of the single-tenant rate. Current
        # machine is 10x slower with the same fan-out tax: must pass.
        self.write(self.baselines, "serving_multimodel",
                   self.multimodel_rows(1000.0, {2: 950.0, 4: 900.0}))
        self.write(self.results, "serving_multimodel",
                   self.multimodel_rows(100.0, {2: 95.0, 4: 90.0}))
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)

    def test_multimodel_fanout_collapse_fails(self):
        # Fan-out ratio 0.9 -> 0.5 (44% > 20% tolerance): routing across
        # four pools suddenly costs half the throughput — gate must fail
        # even though the raw current rate beats the baseline's.
        self.write(self.baselines, "serving_multimodel",
                   self.multimodel_rows(1000.0, {2: 950.0, 4: 900.0}))
        self.write(self.results, "serving_multimodel",
                   self.multimodel_rows(2000.0, {2: 1900.0, 4: 1000.0}))
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("models=4", out)
        self.assertIn("throughput_rps regressed", out)

    def test_multimodel_missing_reference_row_is_an_error(self):
        self.write(self.baselines, "serving_multimodel",
                   self.multimodel_rows(1000.0, {4: 900.0}))
        self.write(self.results, "serving_multimodel",
                   [{"config": "multimodel, models=4", "models": 4,
                     "throughput_rps": 900.0}])
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("normalization row", out)

    # ---- lower-is-better metrics (serving_overload max_metrics) --------------

    @staticmethod
    def overload_rows(shed_goodput, shed_p99, codel_goodput, codel_p99):
        return [
            {"config": "overload, shed-only",
             "goodput_rps": shed_goodput, "p99_us": shed_p99},
            {"config": "overload, codel",
             "goodput_rps": codel_goodput, "p99_us": codel_p99},
        ]

    def test_overload_p99_within_ceiling_passes(self):
        # Baseline: codel p99 at 0.6x of blunt shedding. Current run is a
        # 10x slower machine with the same ratios: must pass.
        self.write(self.baselines, "serving_overload",
                   self.overload_rows(1000.0, 100000.0, 950.0, 60000.0))
        self.write(self.results, "serving_overload",
                   self.overload_rows(100.0, 1000000.0, 95.0, 600000.0))
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)

    def test_overload_p99_blowup_fails_even_with_goodput_held(self):
        # p99 ratio 0.6 -> 0.9 (+50% > 20% tolerance): the tail is no
        # longer bounded relative to blunt shedding, so the gate fails even
        # though goodput is fine and ABSOLUTE p99 improved.
        self.write(self.baselines, "serving_overload",
                   self.overload_rows(1000.0, 100000.0, 950.0, 60000.0))
        self.write(self.results, "serving_overload",
                   self.overload_rows(1000.0, 50000.0, 950.0, 45000.0))
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("p99_us regressed", out)

    def test_overload_p99_exactly_at_ceiling_passes(self):
        # ceiling = 0.5 * (1 + 0.20) = 0.6; current ratio exactly 0.6.
        self.write(self.baselines, "serving_overload",
                   self.overload_rows(1000.0, 100000.0, 1000.0, 50000.0))
        self.write(self.results, "serving_overload",
                   self.overload_rows(1000.0, 100000.0, 1000.0, 60000.0))
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)

    def test_overload_goodput_collapse_fails(self):
        # The tail is great because admission drops nearly everything:
        # goodput ratio 0.95 -> 0.5 must fail despite the excellent p99.
        self.write(self.baselines, "serving_overload",
                   self.overload_rows(1000.0, 100000.0, 950.0, 60000.0))
        self.write(self.results, "serving_overload",
                   self.overload_rows(1000.0, 100000.0, 500.0, 5000.0))
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("goodput_rps regressed", out)

    def test_overload_extra_result_rows_are_not_gated(self):
        # The results file carries a closed-ref context row; the committed
        # baseline deliberately omits it, so it must not be compared.
        self.write(self.baselines, "serving_overload",
                   self.overload_rows(1000.0, 100000.0, 950.0, 60000.0))
        cur = self.overload_rows(1000.0, 100000.0, 950.0, 60000.0)
        cur.append({"config": "closed-ref",
                    "goodput_rps": 123.0, "p99_us": 9999999.0})
        self.write(self.results, "serving_overload", cur)
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)
        self.assertNotIn("closed-ref", out)

    # ---- kernel phase ratios (micro_chip max_metrics) ------------------------

    @staticmethod
    def micro_chip_rows(scalar_sweep, scalar_accum, simd_sweep, simd_accum):
        return [
            {"config": "dense, scalar",
             "sweep_ns_per_compartment": scalar_sweep,
             "accum_ns_per_event": scalar_accum,
             "spikes_delivered": 2048, "synaptic_events": 524288},
            {"config": "dense, simd",
             "sweep_ns_per_compartment": simd_sweep,
             "accum_ns_per_event": simd_accum,
             "spikes_delivered": 2048, "synaptic_events": 524288},
        ]

    def test_micro_chip_simd_ratio_transfers_across_machines(self):
        # Baseline: simd sweeps at 0.1x of scalar cost. Current machine is
        # 5x slower in absolute ns but holds the same ratio: must pass.
        self.write(self.baselines, "micro_chip",
                   self.micro_chip_rows(10.0, 2.0, 1.0, 0.4))
        self.write(self.results, "micro_chip",
                   self.micro_chip_rows(50.0, 10.0, 5.0, 2.0))
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)

    def test_micro_chip_sweep_ratio_collapse_fails(self):
        # The simd/scalar sweep ratio decays 0.1 -> 0.5 (the lane kernels
        # stopped engaging): must fail even though absolute ns improved.
        self.write(self.baselines, "micro_chip",
                   self.micro_chip_rows(10.0, 2.0, 1.0, 0.4))
        self.write(self.results, "micro_chip",
                   self.micro_chip_rows(8.0, 2.0, 4.0, 0.32))
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("sweep_ns_per_compartment regressed", out)

    def test_micro_chip_accum_ratio_collapse_fails(self):
        self.write(self.baselines, "micro_chip",
                   self.micro_chip_rows(10.0, 2.0, 1.0, 0.4))
        self.write(self.results, "micro_chip",
                   self.micro_chip_rows(10.0, 2.0, 1.0, 1.8))
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("accum_ns_per_event regressed", out)

    def test_micro_chip_sparse_context_row_is_not_gated(self):
        # The results carry a "sparse, simd" context row; the committed
        # baseline omits it, so even absurd values there must not gate.
        self.write(self.baselines, "micro_chip",
                   self.micro_chip_rows(10.0, 2.0, 1.0, 0.4))
        cur = self.micro_chip_rows(10.0, 2.0, 1.0, 0.4)
        cur.append({"config": "sparse, simd",
                    "sweep_ns_per_compartment": 99999.0,
                    "accum_ns_per_event": 99999.0,
                    "spikes_delivered": 2048, "synaptic_events": 524288})
        self.write(self.results, "micro_chip", cur)
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)
        self.assertNotIn("sparse", out)

    # ---- tracing tax (serving_trace per-rule tolerance) ----------------------

    @staticmethod
    def trace_rows(off_rps, on_rps):
        return [
            {"config": "trace-off", "mode": "trace", "throughput_rps": off_rps},
            {"config": "trace-on", "mode": "trace", "throughput_rps": on_rps},
        ]

    def test_trace_overhead_within_five_percent_passes(self):
        # Baseline ratio 1.0, current 0.96 on a 10x slower machine: the 5%
        # per-rule tolerance admits it regardless of the CLI-wide default.
        self.write(self.baselines, "serving_trace",
                   self.trace_rows(1000.0, 1000.0))
        self.write(self.results, "serving_trace",
                   self.trace_rows(100.0, 96.0))
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)

    def test_trace_overhead_uses_rule_tolerance_not_cli_tolerance(self):
        # Ratio 1.0 -> 0.90: inside the CLI-wide 20% but outside the rule's
        # 5% — the per-rule override must win.
        self.write(self.baselines, "serving_trace",
                   self.trace_rows(1000.0, 1000.0))
        self.write(self.results, "serving_trace",
                   self.trace_rows(1000.0, 900.0))
        code, out = self.run_gate("--tolerance", "0.20")
        self.assertEqual(code, 1, out)
        self.assertIn("trace-on", out)
        self.assertIn("tolerance 5%", out)

    def test_trace_rule_tolerance_does_not_leak_to_other_benches(self):
        # A 10% serving_load drop is fine under the CLI-wide 20% even when
        # the serving_trace rule (5%) is checked in the same invocation.
        self.write(self.baselines, "serving_trace",
                   self.trace_rows(1000.0, 1000.0))
        self.write(self.results, "serving_trace",
                   self.trace_rows(1000.0, 990.0))
        self.write(self.baselines, "serving_load",
                   [{"config": "closed, workers=1, batch=1",
                     "throughput_rps": 100.0},
                    {"config": "closed, workers=4, batch=1",
                     "throughput_rps": 300.0}])
        self.write(self.results, "serving_load",
                   [{"config": "closed, workers=1, batch=1",
                     "throughput_rps": 100.0},
                    {"config": "closed, workers=4, batch=1",
                     "throughput_rps": 270.0}])
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)

    # ---- accuracy rules ------------------------------------------------------

    def test_min_baseline_skips_chance_level_rows(self):
        self.write(self.baselines, "table1_accuracy",
                   [{"dataset": "mnist", "fa_chip": 0.10, "dfa_chip": 0.80}])
        # fa_chip collapses but its baseline (0.10) is under the 0.25
        # signal floor, so only dfa_chip is gated.
        self.write(self.results, "table1_accuracy",
                   [{"dataset": "mnist", "fa_chip": 0.01, "dfa_chip": 0.78}])
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)
        self.assertIn("signal floor", out)

    def test_lost_metric_fails(self):
        self.write(self.baselines, "table1_accuracy",
                   [{"dataset": "mnist", "fa_chip": 0.80, "dfa_chip": 0.80}])
        self.write(self.results, "table1_accuracy",
                   [{"dataset": "mnist", "fa_chip": 0.80}])
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("lost metric", out)

    def test_missing_row_fails(self):
        self.write(self.baselines, "table1_accuracy",
                   [{"dataset": "mnist", "fa_chip": 0.80, "dfa_chip": 0.80}])
        self.write(self.results, "table1_accuracy",
                   [{"dataset": "fashion", "fa_chip": 0.80, "dfa_chip": 0.8}])
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("missing from results", out)

    # ---- missing files / malformed input ------------------------------------

    def test_missing_baselines_dir_fails(self):
        code, out = run_tool("--baselines",
                             os.path.join(self.tmp.name, "nope"),
                             "--results", self.results)
        self.assertEqual(code, 1)
        self.assertIn("no baselines directory", out)

    def test_empty_baselines_dir_fails(self):
        code, out = self.run_gate()
        self.assertEqual(code, 1)
        self.assertIn("nothing checked", out)

    def test_missing_results_file_fails(self):
        self.write(self.baselines, "serving_load",
                   [{"config": "closed, workers=1, batch=1",
                     "throughput_rps": 100.0}])
        code, out = self.run_gate()
        self.assertEqual(code, 1)
        self.assertIn("did the bench run", out)

    def test_non_array_results_json_fails(self):
        self.write(self.baselines, "table1_accuracy",
                   [{"dataset": "mnist", "fa_chip": 0.8, "dfa_chip": 0.8}])
        self.write(self.results, "table1_accuracy", {"dataset": "mnist"})
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("expected a JSON array", out)

    def test_unknown_bench_is_reported_but_skipped(self):
        self.write(self.baselines, "mystery_bench", [{"x": 1}])
        self.write(self.results, "mystery_bench", [{"x": 1}])
        self.write(self.baselines, "table1_accuracy",
                   [{"dataset": "mnist", "fa_chip": 0.8, "dfa_chip": 0.8}])
        self.write(self.results, "table1_accuracy",
                   [{"dataset": "mnist", "fa_chip": 0.8, "dfa_chip": 0.8}])
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)
        self.assertIn("no gating rule", out)

    # ---- --only filtering ----------------------------------------------------

    def test_only_skips_other_baselines_instead_of_requiring_them(self):
        self.write(self.baselines, "serving_load",
                   [{"config": "closed, workers=1, batch=1",
                     "throughput_rps": 100.0},
                    {"config": "closed, workers=2, batch=1",
                     "throughput_rps": 150.0}])
        self.write(self.results, "serving_load",
                   [{"config": "closed, workers=1, batch=1",
                     "throughput_rps": 100.0},
                    {"config": "closed, workers=2, batch=1",
                     "throughput_rps": 150.0}])
        # A baseline with no matching results would normally fail the run…
        self.write(self.baselines, "table1_accuracy",
                   [{"dataset": "mnist", "fa_chip": 0.8, "dfa_chip": 0.8}])
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        # …but --only scopes the gate to the bench this job actually ran.
        code, out = self.run_gate("--only", "serving_load")
        self.assertEqual(code, 0, out)
        self.assertNotIn("table1", out)

    def test_only_with_unknown_name_fails(self):
        self.write(self.baselines, "serving_load",
                   [{"config": "closed, workers=1, batch=1",
                     "throughput_rps": 100.0}])
        self.write(self.results, "serving_load",
                   [{"config": "closed, workers=1, batch=1",
                     "throughput_rps": 100.0}])
        code, out = self.run_gate("--only", "serving_load",
                                  "--only", "typo_bench")
        self.assertEqual(code, 1, out)
        self.assertIn("typo_bench", out)


if __name__ == "__main__":
    unittest.main()
