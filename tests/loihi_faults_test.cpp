// Device-variation and fault-injection tests (loihi/faults.hpp plus the
// Chip-level fault API): threshold mismatch, dead compartments and stuck
// synapses are deployed-silicon properties — they shift dynamics exactly as
// specified, survive per-sample resets, and are invisible to the learning
// engine and checkpoint loads in precisely the ways real defects would be.

#include <gtest/gtest.h>

#include <sstream>

#include "loihi/chip.hpp"
#include "loihi/faults.hpp"
#include "loihi/learning.hpp"

using namespace neuro::loihi;

namespace {

/// Bias-driven single population of paper-configured IF neurons.
struct SinglePop {
    Chip chip;
    PopulationId pop;

    explicit SinglePop(std::size_t n, std::int32_t vth) {
        PopulationConfig pc;
        pc.name = "p";
        pc.size = n;
        pc.compartment.vth = vth;
        pop = chip.add_population(pc);
        chip.finalize();
    }
};

/// Two one-neuron populations joined by one synapse; used to observe the
/// delivery-path effect of synapse faults.
struct OnePair {
    Chip chip;
    PopulationId src;
    PopulationId dst;
    ProjectionId proj;

    explicit OnePair(std::int32_t weight, bool plastic = false) {
        PopulationConfig pc;
        pc.name = "src";
        pc.size = 1;
        pc.compartment.vth = 4;
        src = chip.add_population(pc);
        pc.name = "dst";
        pc.compartment.vth = 1 << 20;  // integrate only
        dst = chip.add_population(pc);
        ProjectionConfig cfg;
        cfg.name = "s";
        cfg.src = src;
        cfg.dst = dst;
        cfg.plastic = plastic;
        if (plastic) cfg.rule.dw = parse_sum_of_products("x1*y1");
        proj = chip.add_projection(cfg, {{0, 0, weight, 0}});
        chip.finalize();
    }
};

}  // namespace

// ---- threshold variation ----------------------------------------------------

class ThresholdOffsetTest : public testing::TestWithParam<std::int32_t> {};

TEST_P(ThresholdOffsetTest, SpikeCountIsFloorOfDriveOverEffectiveThreshold) {
    const std::int32_t T = 64;
    const std::int32_t offset = GetParam();
    SinglePop s(1, /*vth=*/64);
    s.chip.set_threshold_offset(s.pop, 0, offset);
    s.chip.set_bias(s.pop, {32});
    s.chip.run(static_cast<std::size_t>(T));
    const std::int64_t drive = 32 * T;
    const std::int64_t vth_eff = std::max(1, 64 + offset);
    EXPECT_EQ(s.chip.spike_counts(s.pop, Phase::One)[0], drive / vth_eff);
}

INSTANTIATE_TEST_SUITE_P(OffsetSweep, ThresholdOffsetTest,
                         testing::Values(-32, -16, 0, 16, 32, 64, 192));

TEST(ThresholdVariation, EffectiveThresholdClampsAtOne) {
    SinglePop s(1, 64);
    s.chip.set_threshold_offset(s.pop, 0, -1000);  // would be negative
    s.chip.set_bias(s.pop, {1});
    s.chip.run(16);
    // vth_eff = 1: every step the +1 bias crosses it exactly once.
    EXPECT_EQ(s.chip.spike_counts(s.pop, Phase::One)[0], 16);
}

TEST(ThresholdVariation, SigmaZeroIsIdentity) {
    SinglePop s(8, 64);
    const auto offsets = apply_threshold_variation(s.chip, s.pop, 0.0, 5);
    for (const auto o : offsets) EXPECT_EQ(o, 0);
}

TEST(ThresholdVariation, DeterministicInSeedAndSpreadScalesWithSigma) {
    SinglePop a(64, 64), b(64, 64), c(64, 64);
    const auto oa = apply_threshold_variation(a.chip, a.pop, 0.10, 7);
    const auto ob = apply_threshold_variation(b.chip, b.pop, 0.10, 7);
    const auto oc = apply_threshold_variation(c.chip, c.pop, 0.10, 8);
    EXPECT_EQ(oa, ob);
    EXPECT_NE(oa, oc);

    // Wider sigma -> wider offsets (compare total magnitude).
    SinglePop d(64, 64);
    const auto od = apply_threshold_variation(d.chip, d.pop, 0.30, 7);
    std::int64_t mag_a = 0, mag_d = 0;
    for (const auto o : oa) mag_a += std::abs(o);
    for (const auto o : od) mag_d += std::abs(o);
    EXPECT_GT(mag_d, mag_a);
}

TEST(ThresholdVariation, OffsetsAreAppliedToTheChip) {
    SinglePop s(16, 64);
    const auto offsets = apply_threshold_variation(s.chip, s.pop, 0.2, 3);
    for (std::size_t i = 0; i < offsets.size(); ++i)
        EXPECT_EQ(s.chip.threshold_offset(s.pop, i), offsets[i]);
}

TEST(ThresholdVariation, SurvivesDynamicReset) {
    SinglePop s(1, 64);
    s.chip.set_threshold_offset(s.pop, 0, 64);
    s.chip.reset_dynamic_state();
    EXPECT_EQ(s.chip.threshold_offset(s.pop, 0), 64);
}

TEST(ThresholdVariation, RejectsNegativeSigma) {
    SinglePop s(1, 64);
    EXPECT_THROW(apply_threshold_variation(s.chip, s.pop, -0.1, 1),
                 std::invalid_argument);
}

// ---- dead compartments --------------------------------------------------------

TEST(DeadCompartment, NeverSpikesUnderAnyDrive) {
    SinglePop s(2, 64);
    s.chip.set_compartment_dead(s.pop, 0, true);
    s.chip.set_bias(s.pop, {10000, 10000});
    s.chip.run(32);
    EXPECT_EQ(s.chip.spike_counts(s.pop, Phase::One)[0], 0);
    EXPECT_GT(s.chip.spike_counts(s.pop, Phase::One)[1], 0);
}

TEST(DeadCompartment, SinksIncomingSpikesWithoutStateChange) {
    OnePair p(20);
    p.chip.set_compartment_dead(p.dst, 0, true);
    p.chip.set_bias(p.src, {4});  // src fires every step
    p.chip.run(16);
    EXPECT_EQ(p.chip.membrane(p.dst, 0), 0);
    EXPECT_EQ(p.chip.current(p.dst, 0), 0);
}

TEST(DeadCompartment, InsertSpikeIsSilentButCountsTheHostWrite) {
    OnePair p(20);
    p.chip.set_compartment_dead(p.src, 0, true);
    const auto before = p.chip.activity().host_io_writes;
    p.chip.insert_spike(p.src, 0);
    p.chip.run(2);
    EXPECT_EQ(p.chip.activity().host_io_writes, before + 1);
    EXPECT_EQ(p.chip.membrane(p.dst, 0), 0);
}

TEST(DeadCompartment, KillFractionIsExactAndDeterministic) {
    SinglePop a(100, 64), b(100, 64);
    EXPECT_EQ(kill_fraction(a.chip, a.pop, 0.15, 11), 15u);
    EXPECT_EQ(kill_fraction(b.chip, b.pop, 0.15, 11), 15u);
    std::size_t dead = 0;
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_EQ(a.chip.compartment_dead(a.pop, i),
                  b.chip.compartment_dead(b.pop, i));
        dead += a.chip.compartment_dead(a.pop, i) ? 1 : 0;
    }
    EXPECT_EQ(dead, 15u);
}

TEST(DeadCompartment, FractionBoundsAreChecked) {
    SinglePop s(10, 64);
    EXPECT_THROW(kill_fraction(s.chip, s.pop, -0.1, 1), std::invalid_argument);
    EXPECT_THROW(kill_fraction(s.chip, s.pop, 1.5, 1), std::invalid_argument);
    EXPECT_EQ(kill_fraction(s.chip, s.pop, 1.0, 1), 10u);
}

// ---- stuck synapses ----------------------------------------------------------

TEST(StuckSynapse, DeliveryUsesTheStuckValue) {
    OnePair p(20);
    p.chip.set_synapse_stuck(p.proj, 0, 5);
    p.chip.set_bias(p.src, {4});  // one spike per step from step 1
    p.chip.run(3);
    // dst integrates (steps arriving at t=2,3) * 5 each; current decays
    // instantly so the membrane holds the sum.
    EXPECT_EQ(p.chip.membrane(p.dst, 0), 2 * 5);
}

TEST(StuckSynapse, LearningEngineSkipsIt) {
    OnePair p(5, /*plastic=*/true);
    p.chip.set_synapse_stuck(p.proj, 0, 5);
    // Give both ends nonzero traces so the x1*y1 rule would potentiate.
    p.chip.set_bias(p.src, {8});
    p.chip.set_bias(p.dst, {0});
    p.chip.run(8);
    p.chip.apply_learning();
    EXPECT_EQ(p.chip.weights(p.proj)[0], 5);
}

TEST(StuckSynapse, CheckpointLoadDoesNotHealIt) {
    OnePair healthy(20, /*plastic=*/true);
    std::stringstream ckpt;
    healthy.chip.save_weights(ckpt);

    OnePair faulty(20, /*plastic=*/true);
    faulty.chip.set_synapse_stuck(faulty.proj, 0, -3);
    faulty.chip.load_weights(ckpt);
    EXPECT_EQ(faulty.chip.weights(faulty.proj)[0], -3);
    EXPECT_TRUE(faulty.chip.synapse_stuck(faulty.proj, 0));
}

TEST(StuckSynapse, StickFractionCountsAndBounds) {
    // A 10x10 all-to-all projection: 100 synapses.
    Chip chip;
    PopulationConfig pc;
    pc.name = "a";
    pc.size = 10;
    pc.compartment.vth = 64;
    const auto a = chip.add_population(pc);
    pc.name = "b";
    const auto b = chip.add_population(pc);
    std::vector<Synapse> syns;
    for (std::uint32_t i = 0; i < 10; ++i)
        for (std::uint32_t j = 0; j < 10; ++j) syns.push_back({i, j, 1, 0});
    ProjectionConfig cfg;
    cfg.name = "ab";
    cfg.src = a;
    cfg.dst = b;
    const auto proj = chip.add_projection(cfg, std::move(syns));
    chip.finalize();

    EXPECT_EQ(stick_fraction(chip, proj, 0.25, 0, 9), 25u);
    EXPECT_EQ(chip.stuck_synapse_count(proj), 25u);
    std::size_t zeros = 0;
    for (const auto w : chip.weights(proj)) zeros += (w == 0) ? 1 : 0;
    EXPECT_EQ(zeros, 25u);
}

TEST(StuckSynapse, IndexValidation) {
    OnePair p(20);
    EXPECT_THROW(p.chip.set_synapse_stuck(p.proj, 7, 0), std::invalid_argument);
    EXPECT_THROW(p.chip.set_synapse_stuck(99, 0, 0), std::invalid_argument);
    EXPECT_THROW(p.chip.synapse_stuck(p.proj, 7), std::invalid_argument);
}

TEST(StuckSynapse, FaultFreeProjectionHasNoStuckEntries) {
    OnePair p(20);
    EXPECT_EQ(p.chip.stuck_synapse_count(p.proj), 0u);
    EXPECT_FALSE(p.chip.synapse_stuck(p.proj, 0));
}
