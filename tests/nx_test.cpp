// Tests for the NxSDK-shaped construction API (src/nx): prototypes,
// compartment groups, dense/masked/one-to-one/conv connection groups,
// microcode-text plasticity, and the compile() construction boundary.

#include <gtest/gtest.h>

#include <numeric>

#include "loihi/stdp.hpp"
#include "nx/net.hpp"

using namespace neuro;
using namespace neuro::nx;

namespace {

CompartmentPrototype if_proto(std::int32_t vth = 64) {
    CompartmentPrototype p;
    p.config.vth = vth;
    return p;
}

}  // namespace

TEST(NxNet, GroupsReportTheirSize) {
    NxNet net;
    const auto g = net.create_compartment_group("g", 17, if_proto());
    EXPECT_EQ(g.size, 17u);
    EXPECT_EQ(net.chip().population_size(g.pop), 17u);
}

TEST(NxNet, DenseMatrixLaysDownDstMajorSynapses) {
    NxNet net;
    const auto a = net.create_compartment_group("a", 3, if_proto());
    const auto b = net.create_compartment_group("b", 2, if_proto());
    // weights[d * 3 + s] = 10*d + s, distinguishable per (d, s).
    std::vector<std::int32_t> w = {0, 1, 2, 10, 11, 12};
    const auto proj = net.create_connection_group(a, b, ConnectionPrototype{}, w);
    net.compile();
    EXPECT_EQ(net.chip().synapse_count(proj), 6u);
    EXPECT_EQ(net.chip().weights(proj), w);  // construction order preserved
}

TEST(NxNet, MaskDropsUnconnectedEntries) {
    NxNet net;
    const auto a = net.create_compartment_group("a", 2, if_proto());
    const auto b = net.create_compartment_group("b", 2, if_proto());
    const std::vector<std::int32_t> w = {5, 6, 7, 8};
    const std::vector<std::uint8_t> mask = {1, 0, 0, 1};  // diagonal
    const auto proj = net.create_connection_group(a, b, ConnectionPrototype{}, w, mask);
    net.compile();
    EXPECT_EQ(net.chip().synapse_count(proj), 2u);
    EXPECT_EQ(net.chip().weights(proj), (std::vector<std::int32_t>{5, 8}));
}

TEST(NxNet, MatrixAndMaskSizesAreValidated) {
    NxNet net;
    const auto a = net.create_compartment_group("a", 3, if_proto());
    const auto b = net.create_compartment_group("b", 2, if_proto());
    EXPECT_THROW(net.create_connection_group(a, b, ConnectionPrototype{}, {1, 2, 3}),
                 std::invalid_argument);
    EXPECT_THROW(net.create_connection_group(a, b, ConnectionPrototype{},
                                             std::vector<std::int32_t>(6, 1),
                                             std::vector<std::uint8_t>(5, 1)),
                 std::invalid_argument);
}

TEST(NxNet, OneToOneRequiresMatchingSizes) {
    NxNet net;
    const auto a = net.create_compartment_group("a", 3, if_proto());
    const auto b = net.create_compartment_group("b", 4, if_proto());
    EXPECT_THROW(net.connect_one_to_one(a, b, ConnectionPrototype{}, 1),
                 std::invalid_argument);
}

TEST(NxNet, OneToOneDeliversIdentity) {
    NxNet net;
    const auto a = net.create_compartment_group("a", 4, if_proto(4));
    const auto b = net.create_compartment_group("b", 4, if_proto(1 << 20));
    net.connect_one_to_one(a, b, ConnectionPrototype{}, 9);
    net.compile();
    net.set_bias(a, {4, 0, 0, 4});  // neurons 0 and 3 fire every step
    net.run(3);
    // Two spikes delivered each (arrivals at steps 2 and 3).
    EXPECT_EQ(net.chip().membrane(b.pop, 0), 18);
    EXPECT_EQ(net.chip().membrane(b.pop, 1), 0);
    EXPECT_EQ(net.chip().membrane(b.pop, 2), 0);
    EXPECT_EQ(net.chip().membrane(b.pop, 3), 18);
}

TEST(NxNet, ConvConnectionMatchesTopologyExpansion) {
    snn::ConvSpec spec;
    spec.in_c = 1;
    spec.in_h = 6;
    spec.in_w = 6;
    spec.out_c = 2;
    spec.kernel = 3;
    spec.stride = 1;
    std::vector<std::int32_t> kernel(spec.out_c * spec.in_c * 9);
    std::iota(kernel.begin(), kernel.end(), 1);

    NxNet net;
    const auto in = net.create_compartment_group("in", spec.in_size(), if_proto());
    const auto out =
        net.create_compartment_group("out", spec.out_size(), if_proto());
    const auto proj = net.connect_conv(in, out, ConnectionPrototype{}, spec, kernel);
    net.compile();

    const auto expected = snn::conv_synapses(spec, kernel);
    EXPECT_EQ(net.chip().synapse_count(proj), expected.size());

    // Geometry mismatches are rejected.
    NxNet bad;
    const auto small = bad.create_compartment_group("in", 10, if_proto());
    const auto o2 = bad.create_compartment_group("out", spec.out_size(), if_proto());
    EXPECT_THROW(bad.connect_conv(small, o2, ConnectionPrototype{}, spec, kernel),
                 std::invalid_argument);
}

TEST(NxNet, MicrocodeTextMakesConnectionPlastic) {
    NxNet net;
    CompartmentPrototype proto;
    proto.config = loihi::stdp_compartment();
    const auto a = net.create_compartment_group("a", 1, proto);
    const auto b = net.create_compartment_group("b", 1, proto);
    ConnectionPrototype plastic;
    plastic.dw = "2^-4*x1*y0 - 2^-4*x0*y1";  // pairwise STDP
    plastic.stochastic_rounding = false;
    const auto proj = net.create_connection_group(a, b, plastic, {0});
    net.compile();

    // Pre fires, then post 2 steps later: potentiation.
    net.set_bias(a, {64});
    net.chip().step();
    net.chip().apply_learning();
    net.set_bias(a, {0});
    net.chip().step();
    net.chip().apply_learning();
    net.set_bias(b, {64});
    net.chip().step();
    net.chip().apply_learning();
    EXPECT_GT(net.chip().weights(proj)[0], 0);
}

TEST(NxNet, BadMicrocodeTextThrowsAtConstruction) {
    NxNet net;
    const auto a = net.create_compartment_group("a", 1, if_proto());
    const auto b = net.create_compartment_group("b", 1, if_proto());
    ConnectionPrototype bad;
    bad.dw = "2^-4*q1";  // unknown variable
    EXPECT_THROW(net.create_connection_group(a, b, bad, {0}),
                 std::invalid_argument);
}

TEST(NxNet, PrototypeNeuronsPerCoreReachesTheMapper) {
    NxNet net;
    CompartmentPrototype packed = if_proto();
    packed.neurons_per_core = 5;
    net.create_compartment_group("layer", 20, packed);
    net.compile();
    EXPECT_EQ(net.chip().mapping().layers[0].num_cores, 4u);
    EXPECT_EQ(net.chip().mapping().layers[0].neurons_per_core, 5u);
}

TEST(NxNet, CompileIsTheConstructionBoundary) {
    NxNet net;
    const auto a = net.create_compartment_group("a", 2, if_proto());
    const auto b = net.create_compartment_group("b", 2, if_proto());
    net.create_connection_group(a, b, ConnectionPrototype{},
                                std::vector<std::int32_t>(4, 1));
    EXPECT_FALSE(net.compiled());
    net.compile();
    EXPECT_TRUE(net.compiled());
    EXPECT_THROW(net.create_compartment_group("late", 2, if_proto()),
                 std::logic_error);
    EXPECT_THROW(net.compile(), std::logic_error);
}

TEST(NxNet, DelayPropagatesFromPrototype) {
    NxNet net;
    const auto a = net.create_compartment_group("a", 1, if_proto(4));
    const auto b = net.create_compartment_group("b", 1, if_proto(1 << 20));
    ConnectionPrototype delayed;
    delayed.delay = 3;
    net.connect_one_to_one(a, b, delayed, 9);
    net.compile();
    net.set_bias(a, {4});
    net.run(2);  // src fires at steps 1,2; arrivals begin at 1 + 1 + 3 = 5
    EXPECT_EQ(net.chip().membrane(b.pop, 0), 0);
    net.set_bias(a, {0});
    net.run(3);  // now at step 5: first delayed delivery has landed
    EXPECT_EQ(net.chip().membrane(b.pop, 0), 9);
    net.run(1);
    EXPECT_EQ(net.chip().membrane(b.pop, 0), 18);
}
