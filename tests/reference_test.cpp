// Tests for the full-precision EMSTDP reference (the "Python (FP)" baseline).
// These pin down the *algorithm*: the two-phase dynamics settle forward rates
// at the target, the update has the right sign, and both FA and DFA learn
// small tasks from scratch.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "reference/emstdp_ref.hpp"

using neuro::common::Rng;
using neuro::reference::FeedbackMode;
using neuro::reference::RefConfig;
using neuro::reference::RefEmstdp;

namespace {

/// Class prototypes in rate space with additive noise — linearly separable.
struct ToyTask {
    std::vector<std::vector<float>> prototypes;
    std::size_t dims;
    std::size_t classes;

    ToyTask(std::size_t dims, std::size_t classes, Rng& rng)
        : dims(dims), classes(classes) {
        for (std::size_t c = 0; c < classes; ++c) {
            std::vector<float> p(dims);
            for (auto& v : p) v = rng.bernoulli(0.5) ? 0.75f : 0.05f;
            prototypes.push_back(std::move(p));
        }
    }

    std::pair<std::vector<float>, std::size_t> sample(Rng& rng) const {
        const auto c = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(classes) - 1));
        std::vector<float> x = prototypes[c];
        for (auto& v : x) {
            v += static_cast<float>(rng.normal(0.0, 0.08));
            v = std::min(1.0f, std::max(0.0f, v));
        }
        return {std::move(x), c};
    }
};

double train_and_eval(RefEmstdp& net, const ToyTask& task, std::size_t train_n,
                      std::size_t test_n, Rng& rng) {
    for (std::size_t i = 0; i < train_n; ++i) {
        auto [x, y] = task.sample(rng);
        net.train_sample(x, y);
    }
    std::size_t hit = 0;
    for (std::size_t i = 0; i < test_n; ++i) {
        auto [x, y] = task.sample(rng);
        if (net.predict(x) == y) ++hit;
    }
    return static_cast<double>(hit) / static_cast<double>(test_n);
}

}  // namespace

TEST(RefEmstdpDynamics, InputRateTracksBias) {
    // A pass-through check of the bias-integration encoding: a single-layer
    // net with identity-ish weights reports input spike counts ~ rate * T.
    RefConfig cfg;
    cfg.layer_sizes = {4, 2};
    cfg.phase_length = 64;
    RefEmstdp net(cfg);
    auto trace = net.train_sample({0.0f, 0.25f, 0.5f, 1.0f}, 0);
    ASSERT_EQ(trace.h1.front().size(), 4u);
    EXPECT_EQ(trace.h1.front()[0], 0);
    EXPECT_NEAR(trace.h1.front()[1], 16, 1);
    EXPECT_NEAR(trace.h1.front()[2], 32, 1);
    EXPECT_NEAR(trace.h1.front()[3], 64, 1);
}

TEST(RefEmstdpDynamics, Phase2DrivesOutputTowardTarget) {
    // With a positive error (target class silent in phase 1), the phase-2
    // output rate of the labelled neuron must exceed its phase-1 rate.
    RefConfig cfg;
    cfg.layer_sizes = {8, 4};
    cfg.phase_length = 64;
    cfg.target_rate = 0.75f;
    RefEmstdp net(cfg);

    std::vector<float> x(8, 0.3f);
    auto trace = net.train_sample(x, 2);
    const auto& h1 = trace.h1.back();
    const auto& h2 = trace.h2.back();
    EXPECT_GT(h2[2], h1[2]);
    // The unit-gain injection loop settles between the phase-1 rate and the
    // target (error self-quenches at roughly half the gap — absorbed into
    // eta); it must close a substantial part of the gap.
    EXPECT_GE(h2[2], h1[2] + (static_cast<int>(0.75 * 64) - h1[2]) / 4);
}

TEST(RefEmstdpDynamics, UpdateSignFollowsError) {
    // Weight rows of the labelled class must grow along active inputs;
    // rows of over-active wrong classes must shrink.
    RefConfig cfg;
    cfg.layer_sizes = {6, 3};
    cfg.phase_length = 64;
    RefEmstdp net(cfg);

    std::vector<float> x = {0.8f, 0.8f, 0.8f, 0.0f, 0.0f, 0.0f};
    const auto w_before = net.weights()[0];
    net.train_sample(x, 1);
    const auto& w_after = net.weights()[0];

    // Row of class 1, columns of active inputs (0..2): net change positive.
    float delta_label = 0.0f;
    for (std::size_t i = 0; i < 3; ++i)
        delta_label += w_after[1 * 6 + i] - w_before[1 * 6 + i];
    EXPECT_GT(delta_label, 0.0f);

    // Columns of silent inputs never change (pre factor is zero).
    for (std::size_t o = 0; o < 3; ++o)
        for (std::size_t i = 3; i < 6; ++i)
            EXPECT_FLOAT_EQ(w_after[o * 6 + i], w_before[o * 6 + i]);
}

TEST(RefEmstdpLearning, SingleLayerLearnsSeparableTask) {
    Rng rng(11);
    ToyTask task(16, 4, rng);
    RefConfig cfg;
    cfg.layer_sizes = {16, 4};
    cfg.phase_length = 64;
    cfg.seed = 3;
    RefEmstdp net(cfg);
    const double acc = train_and_eval(net, task, 400, 200, rng);
    EXPECT_GT(acc, 0.85) << "single-layer EMSTDP failed a separable task";
}

TEST(RefEmstdpLearning, TwoLayerDfaLearns) {
    Rng rng(12);
    ToyTask task(20, 4, rng);
    RefConfig cfg;
    cfg.layer_sizes = {20, 30, 4};
    cfg.feedback = FeedbackMode::DFA;
    cfg.eta = 0.5f;  // small net: larger eta converges within the budget
    cfg.seed = 5;
    RefEmstdp net(cfg);
    const double acc = train_and_eval(net, task, 600, 200, rng);
    EXPECT_GT(acc, 0.8) << "two-layer DFA EMSTDP failed";
}

TEST(RefEmstdpLearning, TwoLayerFaLearns) {
    Rng rng(13);
    ToyTask task(20, 4, rng);
    RefConfig cfg;
    cfg.layer_sizes = {20, 30, 4};
    cfg.feedback = FeedbackMode::FA;
    cfg.eta = 0.5f;
    cfg.seed = 5;
    RefEmstdp net(cfg);
    const double acc = train_and_eval(net, task, 600, 200, rng);
    EXPECT_GT(acc, 0.8) << "two-layer FA EMSTDP failed";
}

TEST(RefEmstdpLearning, ClassMaskFreezesRow) {
    RefConfig cfg;
    cfg.layer_sizes = {6, 3};
    RefEmstdp net(cfg);
    net.set_class_mask({1.0f, 0.0f, 1.0f});
    const auto w_before = net.weights()[0];
    std::vector<float> x(6, 0.6f);
    net.train_sample(x, 0);
    // Class 1 is disabled: its row must not move.
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_FLOAT_EQ(net.weights()[0][1 * 6 + i], w_before[1 * 6 + i]);
}

TEST(RefEmstdpDeterminism, SameSeedSameWeights) {
    Rng rng(21);
    ToyTask task(12, 3, rng);
    RefConfig cfg;
    cfg.layer_sizes = {12, 8, 3};
    cfg.seed = 99;

    RefEmstdp a(cfg), b(cfg);
    Rng stream_a(1234), stream_b(1234);
    for (int i = 0; i < 50; ++i) {
        auto [xa, ya] = task.sample(stream_a);
        auto [xb, yb] = task.sample(stream_b);
        a.train_sample(xa, ya);
        b.train_sample(xb, yb);
    }
    EXPECT_EQ(a.weights()[0], b.weights()[0]);
    EXPECT_EQ(a.weights()[1], b.weights()[1]);
}
