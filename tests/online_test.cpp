// Contract tests for learning-while-serving (neuro::online + the runtime's
// versioned weight publication):
//   * WeightChannel/publish_weights versioning and COW image pinning,
//   * Session::refresh adopts exactly the latest published image,
//   * with nothing published, serving next to a running learner is
//     bit-identical to sequential Session inference (frozen-server parity),
//   * a published version is adopted by every pool session within one
//     batch boundary,
//   * poisoned feedback trips the shadow-eval gate: the candidate is never
//     published, the learner rolls back, the registry's last good version
//     keeps serving,
//   * registry round-trip, corruption detection, and restart republication,
//   * replay-pool determinism (same seed => same draws) and reservoir
//     bounds,
//   * learner + server + clients running concurrently (TSan-clean in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "online/engine.hpp"
#include "online/registry.hpp"
#include "online/replay_pool.hpp"
#include "runtime/compiled_model.hpp"
#include "runtime/weight_channel.hpp"
#include "serve/server.hpp"

using namespace neuro;

namespace {

constexpr std::size_t kClasses = 6;
constexpr std::size_t kDims = 18;

/// Six well-separated rate prototypes over 18 inputs (the iol_test toy
/// task): EMSTDP learns it quickly, and label poison destroys it quickly —
/// both of which keep the gate tests deterministic and fast.
data::Dataset toy_set(std::size_t per_class, std::uint64_t seed) {
    common::Rng rng(seed);
    std::vector<std::vector<float>> protos;
    for (std::size_t c = 0; c < kClasses; ++c) {
        std::vector<float> p(kDims, 0.05f);
        for (std::size_t k = 0; k < 3; ++k) p[(c * 3 + k) % kDims] = 0.8f;
        protos.push_back(std::move(p));
    }
    data::Dataset d;
    d.name = "toy6";
    d.channels = 1;
    d.height = 1;
    d.width = kDims;
    d.num_classes = kClasses;
    for (std::size_t i = 0; i < per_class * kClasses; ++i) {
        const std::size_t c = i % kClasses;
        common::Tensor x({1, 1, kDims});
        for (std::size_t p = 0; p < kDims; ++p) {
            const float v =
                protos[c][p] + static_cast<float>(rng.normal(0.0, 0.06));
            x[p] = std::clamp(v, 0.0f, 1.0f);
        }
        d.samples.push_back({std::move(x), c});
    }
    return d;
}

std::shared_ptr<const runtime::CompiledModel> make_model() {
    runtime::ModelSpec spec;
    spec.input(1, 1, kDims).hidden_layers({30}).output_classes(kClasses);
    spec.options.seed = 11;
    return runtime::CompiledModel::compile(spec,
                                           runtime::BackendKind::LoihiSim);
}

/// A weight image whose output layer strongly prefers `winner` — predictions
/// become constant, which makes pool-wide adoption observable.
runtime::WeightSnapshot forced_snapshot(const runtime::CompiledModel& model,
                                        std::size_t winner) {
    runtime::WeightSnapshot snap = model.initial_weights();
    auto& out = snap.layers.back();
    const std::size_t fan_in = out.size() / kClasses;
    for (std::size_t c = 0; c < kClasses; ++c)
        for (std::size_t i = 0; i < fan_in; ++i)
            out[c * fan_in + i] = c == winner ? 60 : -60;
    return snap;
}

std::string fresh_dir(const std::string& name) {
    const auto dir =
        std::filesystem::temp_directory_path() / ("neuro_online_" + name);
    std::filesystem::remove_all(dir);
    return dir.string();
}

/// Polls `cond` generously (sized for TSan's ~15x slowdown on a loaded
/// single-core runner; real waits are milliseconds).
template <typename F>
bool eventually(F cond) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(90);
    while (std::chrono::steady_clock::now() < deadline) {
        if (cond()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return cond();
}

}  // namespace

// ---- versioned publication (runtime layer) ---------------------------------

TEST(WeightPublication, VersionsAreMonotonicAndImagesArePinned) {
    const auto model = make_model();
    EXPECT_EQ(model->published_version(), 0u);
    EXPECT_TRUE(model->published_weights()->snapshot.empty());

    const auto v1_snap = forced_snapshot(*model, 1);
    EXPECT_EQ(model->publish_weights(v1_snap), 1u);
    const auto pinned = model->published_weights();
    EXPECT_EQ(pinned->version, 1u);

    EXPECT_EQ(model->publish_weights(forced_snapshot(*model, 2)), 2u);
    EXPECT_EQ(model->published_version(), 2u);
    // The pinned v1 image is untouched by the later publish (COW).
    EXPECT_EQ(pinned->version, 1u);
    EXPECT_EQ(pinned->snapshot.layers, v1_snap.layers);
}

TEST(WeightPublication, RefreshAdoptsLatestImageExactlyOnce) {
    const auto model = make_model();
    auto session = model->open_session();
    EXPECT_FALSE(session->refresh());  // nothing published
    EXPECT_EQ(session->weights_version(), 0u);

    model->publish_weights(forced_snapshot(*model, 3));
    model->publish_weights(forced_snapshot(*model, 4));
    ASSERT_TRUE(session->refresh());  // jumps straight to the latest
    EXPECT_EQ(session->weights_version(), 2u);
    EXPECT_FALSE(session->refresh());  // nothing newer

    const auto images = toy_set(2, 3);
    for (const auto& s : images.samples)
        EXPECT_EQ(session->predict(s.image), 4u);
}

TEST(WeightPublication, SessionsOpenOnInitialWeightsUntilTheyRefresh) {
    const auto model = make_model();
    model->publish_weights(forced_snapshot(*model, 2));
    auto fresh = model->open_session();
    auto reference = model->open_session();
    // Both stay on initial weights (documented contract) until refresh().
    const auto images = toy_set(2, 7);
    for (const auto& s : images.samples)
        EXPECT_EQ(fresh->predict(s.image), reference->predict(s.image));
    ASSERT_TRUE(fresh->refresh());
    for (const auto& s : images.samples)
        EXPECT_EQ(fresh->predict(s.image), 2u);
}

// ---- serving parity with publishing disabled --------------------------------

TEST(OnlineServing, NoPublishMeansBitIdenticalServing) {
    const auto model = make_model();
    const auto images = toy_set(6, 5);

    // Expected: plain sequential Session inference on the same model.
    auto session = model->open_session();
    std::vector<std::size_t> expected;
    for (const auto& s : images.samples)
        expected.push_back(session->predict(s.image));

    // Server under load with a *running learner* that trains on feedback
    // but never publishes (interval larger than the stream): serving must
    // not see any of it.
    serve::ServerOptions opt;
    opt.workers = 2;
    opt.batch.max_batch = 4;
    opt.admission.feedback_capacity = 64;
    serve::Server server(model, opt);
    online::OnlineOptions oopt;
    oopt.publish_interval = 1'000'000;  // never reached
    oopt.seed = 23;
    online::OnlineEngine engine(model, server.feedback_queue(), toy_set(2, 9),
                                oopt);
    server.start();
    engine.start();

    for (std::size_t round = 0; round < 2; ++round) {
        std::vector<serve::InferenceHandle> handles;
        for (const auto& s : images.samples) {
            handles.push_back(server.submit(s.image));
            server.submit_feedback(s.image, s.label);
        }
        for (std::size_t i = 0; i < handles.size(); ++i) {
            auto r = handles[i].get();
            ASSERT_EQ(r.status, serve::Status::Ok);
            EXPECT_EQ(r.label, expected[i]);
        }
    }
    ASSERT_TRUE(eventually([&] { return engine.stats().trained > 0; }));
    server.shutdown();
    engine.stop();
    EXPECT_EQ(server.stats().weight_refreshes, 0u);
    EXPECT_EQ(engine.stats().published, 0u);
}

// ---- pool-wide adoption ------------------------------------------------------

TEST(OnlineServing, PublishedVersionAdoptedByAllWorkersWithinOneBatch) {
    const auto model = make_model();
    const auto images = toy_set(4, 5);
    serve::ServerOptions opt;
    opt.workers = 2;
    opt.batch.max_batch = 2;
    serve::Server server(model, opt);
    server.start();

    // Warm the pool, then publish a forced image.
    for (const auto& s : images.samples) (void)server.submit(s.image).get();
    model->publish_weights(forced_snapshot(*model, 5));

    // Every worker adopts at its next batch boundary; keep offering batches
    // until both have. After that, every response must be the forced label.
    ASSERT_TRUE(eventually([&] {
        (void)server.submit(images.samples[0].image).get();
        return server.stats().weight_refreshes >= opt.workers;
    }));
    std::vector<serve::InferenceHandle> handles;
    for (const auto& s : images.samples) handles.push_back(server.submit(s.image));
    for (auto& h : handles) {
        auto r = h.get();
        ASSERT_EQ(r.status, serve::Status::Ok);
        EXPECT_EQ(r.label, 5u);
    }
    server.shutdown();
    EXPECT_EQ(server.stats().weight_refreshes, opt.workers);
}

// ---- shadow-eval gate + rollback + registry ---------------------------------

TEST(OnlineServing, PoisonedFeedbackTripsRollbackAndLastGoodKeepsServing) {
    const auto dir = fresh_dir("rollback");
    const auto model = make_model();
    const auto train = toy_set(24, 31);
    const auto holdout = toy_set(8, 32);

    auto feedback = std::make_shared<serve::FeedbackQueue>(1024);
    online::OnlineOptions oopt;
    oopt.publish_interval = 48;
    // Both halves of the gate: per-step regressions beyond 5 points fail,
    // and — the backstop against slow poisoning ratcheting the bar down —
    // nothing below 45% absolute is ever published.
    oopt.max_regression = 0.05;
    oopt.min_accuracy = 0.45;
    oopt.registry_dir = dir;
    oopt.seed = 7;
    online::OnlineEngine engine(model, feedback, holdout, oopt);
    engine.start();

    // Phase 1: truthful feedback — the model improves and publishes.
    std::size_t pushed = 0;
    for (std::size_t round = 0; round < 2; ++round)
        for (const auto& s : train.samples) {
            serve::FeedbackSample f{s.image, s.label, {}};
            ASSERT_TRUE(feedback->push(f));
            ++pushed;
        }
    ASSERT_TRUE(
        eventually([&] { return engine.stats().feedback_seen >= pushed; }));
    const auto mid = engine.stats();
    ASSERT_GE(mid.published, 1u) << "truthful feedback must publish";
    ASSERT_GT(mid.last_good_accuracy, 0.5)
        << "toy task should be learned well before the poison phase";

    // Phase 2: poisoned labels (cyclic shift — every label wrong).
    for (std::size_t round = 0; round < 4; ++round)
        for (const auto& s : train.samples) {
            serve::FeedbackSample f{s.image, (s.label + 1) % kClasses, {}};
            ASSERT_TRUE(feedback->push(f));
            ++pushed;
        }
    ASSERT_TRUE(
        eventually([&] { return engine.stats().feedback_seen >= pushed; }));
    engine.stop();

    const auto end = engine.stats();
    EXPECT_GE(end.rollbacks, 1u) << "poisoned candidates must be rejected";
    // The gate kept the poison away from traffic: whatever serves now still
    // clears the absolute floor, not the cratered poisoned accuracy.
    EXPECT_GE(end.last_good_accuracy, oopt.min_accuracy);
    EXPECT_LT(end.last_eval_accuracy, oopt.min_accuracy)
        << "the final (poisoned) candidate should score below the floor";
    const auto good_snapshot = model->published_weights()->snapshot;

    // The registry's last good version is exactly what keeps serving.
    ASSERT_NE(engine.registry(), nullptr);
    const auto good = engine.registry()->last_good();
    ASSERT_TRUE(good.has_value());
    EXPECT_DOUBLE_EQ(good->accuracy, end.last_good_accuracy);
    EXPECT_EQ(engine.registry()->load(good->version).layers,
              good_snapshot.layers);

    // A serving pool session picking the image up agrees with a session
    // loaded from the registry file.
    auto pool_session = model->open_session();
    ASSERT_TRUE(pool_session->refresh());
    auto registry_session = model->open_session();
    registry_session->load_weights(engine.registry()->load(good->version));
    for (const auto& s : holdout.samples)
        EXPECT_EQ(pool_session->predict(s.image),
                  registry_session->predict(s.image));
    std::filesystem::remove_all(dir);
}

TEST(OnlineServing, RestartRepublishesRegistryLastGood) {
    const auto dir = fresh_dir("restart");
    const auto train = toy_set(16, 41);
    const auto holdout = toy_set(6, 42);

    runtime::WeightSnapshot recorded;
    double recorded_acc = 0.0;
    {
        const auto model = make_model();
        auto feedback = std::make_shared<serve::FeedbackQueue>(512);
        online::OnlineOptions oopt;
        oopt.publish_interval = 32;
        oopt.max_regression = 1.0;  // always accept: we only need a record
        oopt.registry_dir = dir;
        online::OnlineEngine engine(model, feedback, holdout, oopt);
        engine.start();
        for (const auto& s : train.samples) {
            serve::FeedbackSample f{s.image, s.label, {}};
            ASSERT_TRUE(feedback->push(f));
        }
        ASSERT_TRUE(eventually(
            [&] { return engine.stats().feedback_seen >= train.size(); }));
        engine.stop();
        ASSERT_GE(engine.stats().published, 1u);
        const auto good = engine.registry()->last_good();
        ASSERT_TRUE(good.has_value());
        recorded = engine.registry()->load(good->version);
        recorded_acc = good->accuracy;
    }

    // New process, new model object (fresh channel): starting the engine
    // republishes the registry's last good before any feedback arrives.
    const auto model = make_model();
    EXPECT_EQ(model->published_version(), 0u);
    auto feedback = std::make_shared<serve::FeedbackQueue>(16);
    online::OnlineOptions oopt;
    oopt.registry_dir = dir;
    online::OnlineEngine engine(model, feedback, holdout, oopt);
    engine.start();
    EXPECT_EQ(model->published_version(), 1u);
    EXPECT_EQ(model->published_weights()->snapshot.layers, recorded.layers);
    EXPECT_DOUBLE_EQ(engine.stats().baseline_accuracy, recorded_acc);
    engine.stop();
    std::filesystem::remove_all(dir);
}

// ---- registry ---------------------------------------------------------------

TEST(Registry, RoundTripAndReload) {
    const auto dir = fresh_dir("roundtrip");
    runtime::WeightSnapshot a{{{1, -2, 3}, {4, 5}}};
    runtime::WeightSnapshot b{{{9, 9, 9}, {-7, 7}}};
    {
        online::ModelRegistry reg(dir);
        EXPECT_FALSE(reg.last_good().has_value());
        reg.record(1, 0.5, a);
        reg.record(2, 0.75, b);
    }
    online::ModelRegistry reg(dir);
    ASSERT_EQ(reg.entries().size(), 2u);
    EXPECT_EQ(reg.entries()[0].version, 1u);
    EXPECT_DOUBLE_EQ(reg.entries()[0].accuracy, 0.5);
    ASSERT_TRUE(reg.last_good().has_value());
    EXPECT_EQ(reg.last_good()->version, 2u);
    EXPECT_EQ(reg.load(1).layers, a.layers);
    EXPECT_EQ(reg.load(2).layers, b.layers);
    EXPECT_THROW(reg.load(3), std::invalid_argument);
    std::filesystem::remove_all(dir);
}

TEST(Registry, CorruptSnapshotFailsLoudly) {
    const auto dir = fresh_dir("corrupt");
    online::ModelRegistry reg(dir);
    reg.record(1, 0.5, {{{10, 20, 30, 40}}});
    // Flip one payload byte: the v2 checksum must catch it.
    {
        std::fstream f(reg.snapshot_path(1),
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(16);
        char byte = 0x5A;
        f.write(&byte, 1);
    }
    EXPECT_THROW(reg.load(1), std::runtime_error);
    std::filesystem::remove_all(dir);
}

// ---- replay pool ------------------------------------------------------------

TEST(ReplayPool, SameSeedSameDraws) {
    const auto samples = toy_set(10, 51);
    // Compare drawn *images*, not labels: the class cycle is fixed by
    // design, the seed picks the sample within the class.
    auto run = [&](std::uint64_t seed) {
        online::ReplayPool pool(kClasses, 8, seed);
        for (const auto& s : samples.samples) pool.add(s.image, s.label);
        std::vector<float> pixels;
        for (std::size_t i = 0; i < 5; ++i)
            for (const auto& d : pool.draw(3))
                pixels.insert(pixels.end(), d.image.data(),
                              d.image.data() + d.image.size());
        return pixels;
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}

TEST(ReplayPool, ReservoirBoundsAndBalancedDraws) {
    const auto samples = toy_set(40, 52);
    online::ReplayPool pool(kClasses, 4, 3);
    for (const auto& s : samples.samples) pool.add(s.image, s.label);
    for (std::size_t c = 0; c < kClasses; ++c) EXPECT_EQ(pool.stored_in(c), 4u);
    EXPECT_EQ(pool.stored(), 4u * kClasses);
    // Round-robin cycling: 2 * kClasses draws touch every class exactly twice.
    std::vector<std::size_t> per_class(kClasses, 0);
    for (const auto& d : pool.draw(2 * kClasses)) ++per_class[d.label];
    for (std::size_t c = 0; c < kClasses; ++c) EXPECT_EQ(per_class[c], 2u);
}

TEST(ReplayPool, DrawsOnlyFromObservedClasses) {
    const auto samples = toy_set(10, 53);
    online::ReplayPool pool(kClasses, 8, 5);
    EXPECT_TRUE(pool.draw(4).empty());  // empty pool: no draws, no hang
    for (const auto& s : samples.samples)
        if (s.label < 2) pool.add(s.image, s.label);
    for (const auto& d : pool.draw(10)) EXPECT_LT(d.label, 2u);
}

// ---- engine validation ------------------------------------------------------

TEST(OnlineEngine, RejectsInvalidConstruction) {
    const auto model = make_model();
    auto queue = std::make_shared<serve::FeedbackQueue>(8);
    const auto holdout = toy_set(2, 61);
    EXPECT_THROW(online::OnlineEngine(nullptr, queue, holdout),
                 std::invalid_argument);
    EXPECT_THROW(online::OnlineEngine(model, nullptr, holdout),
                 std::invalid_argument);
    EXPECT_THROW(online::OnlineEngine(model, queue, data::Dataset{}),
                 std::invalid_argument);
    online::OnlineOptions bad;
    bad.publish_interval = 0;
    EXPECT_THROW(online::OnlineEngine(model, queue, holdout, bad),
                 std::invalid_argument);
}

TEST(OnlineServing, MalformedFeedbackNeverKillsTheLearner) {
    const auto model = make_model();
    const auto good = toy_set(2, 63);

    // Intake validation: an out-of-range label is dropped at submit time.
    serve::ServerOptions opt;
    opt.admission.feedback_capacity = 8;
    serve::Server server(model, opt);
    EXPECT_FALSE(server.submit_feedback(good.samples[0].image, kClasses + 3));
    EXPECT_GE(server.stats().feedback_dropped, 1u);
    server.shutdown();

    // Defense in depth: a bad sample pushed into the raw queue (bypassing
    // the intake) is counted and skipped — the learner thread survives and
    // keeps training on what follows.
    auto queue = std::make_shared<serve::FeedbackQueue>(16);
    online::OnlineEngine engine(model, queue, toy_set(2, 64));
    engine.start();
    serve::FeedbackSample bad{good.samples[0].image, kClasses + 7, {}};
    ASSERT_TRUE(queue->push(bad));
    for (const auto& s : good.samples) {
        serve::FeedbackSample f{s.image, s.label, {}};
        ASSERT_TRUE(queue->push(f));
    }
    ASSERT_TRUE(eventually([&] {
        return engine.stats().feedback_seen >= 1 + good.size();
    }));
    engine.stop();
    const auto stats = engine.stats();
    EXPECT_EQ(stats.errors, 1u);
    EXPECT_EQ(stats.trained, 2 * good.size());  // fresh + one replay each
}

// ---- concurrency (run under TSan in CI) -------------------------------------

TEST(OnlineServing, LearnerAndServerRunConcurrently) {
    const auto model = make_model();
    const auto images = toy_set(8, 71);
    serve::ServerOptions opt;
    opt.workers = 2;
    opt.batch.max_batch = 4;
    opt.admission.feedback_capacity = 128;
    serve::Server server(model, opt);
    online::OnlineOptions oopt;
    oopt.publish_interval = 16;
    oopt.max_regression = 1.0;  // publish every interval: exercise the swap
    online::OnlineEngine engine(model, server.feedback_queue(), toy_set(3, 72),
                                oopt);
    server.start();
    engine.start();

    std::atomic<std::size_t> served{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 2; ++c)
        clients.emplace_back([&] {
            for (std::size_t i = 0; i < 64; ++i) {
                auto r = server.submit(images.samples[i % images.size()].image)
                             .get();
                if (r.status == serve::Status::Ok) ++served;
            }
        });
    std::thread producer([&] {
        for (std::size_t round = 0; round < 8; ++round)
            for (const auto& s : images.samples)
                server.submit_feedback(s.image, s.label);
    });
    for (auto& t : clients) t.join();
    producer.join();
    ASSERT_TRUE(eventually([&] { return engine.stats().feedback_seen > 0; }));
    server.shutdown();
    engine.stop();

    EXPECT_EQ(served.load(), 128u);
    const auto stats = engine.stats();
    EXPECT_GT(stats.trained, 0u);
    // Published versions (if any interval completed) were adopted or will
    // be — either way the counters must be coherent.
    EXPECT_EQ(stats.candidates, stats.published + stats.rollbacks);
}
