// Tests for the extended simulator features: synaptic delays, the Add join,
// second trace pairs (triplet STDP through the learning engine), weight
// checkpointing and the probe module.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "loihi/chip.hpp"
#include "loihi/probe.hpp"

using namespace neuro::loihi;

namespace {

/// Source neuron firing once at step 1 (bias = vth), passive destination.
struct Pair {
    Chip chip;
    PopulationId a, b;

    explicit Pair(std::uint8_t delay, std::int32_t weight = 5) {
        PopulationConfig pa;
        pa.name = "a";
        pa.size = 1;
        pa.compartment.vth = 1;
        a = chip.add_population(pa);
        PopulationConfig pb;
        pb.name = "b";
        pb.size = 1;
        pb.compartment.vth = 1 << 20;
        b = chip.add_population(pb);
        ProjectionConfig pr;
        pr.name = "ab";
        pr.src = a;
        pr.dst = b;
        chip.add_projection(pr, {{0, 0, weight, delay}});
        chip.finalize();
    }
};

}  // namespace

TEST(SynapticDelay, ZeroDelayArrivesNextStep) {
    Pair p(0);
    p.chip.set_bias(p.a, {1});
    p.chip.step();
    EXPECT_EQ(p.chip.membrane(p.b, 0), 0);
    p.chip.step();
    EXPECT_EQ(p.chip.membrane(p.b, 0), 5);
}

TEST(SynapticDelay, DelayAddsSteps) {
    Pair p(3);
    p.chip.set_bias(p.a, {1});
    p.chip.set_bias(p.a, {1});
    // Spike at step 1; arrival at step 1 + 1 + 3 = 5... source fires every
    // step, so check the *first* arrival step precisely with a single spike:
    Pair q(3);
    q.chip.set_bias(q.a, {1});
    q.chip.step();  // step 1: a fires
    q.chip.set_bias(q.a, {0});
    for (int step = 2; step <= 4; ++step) {
        q.chip.step();
        EXPECT_EQ(q.chip.membrane(q.b, 0), 0) << "too early at step " << step;
    }
    q.chip.step();  // step 5 = 1 + 1 + 3
    EXPECT_EQ(q.chip.membrane(q.b, 0), 5);
}

TEST(SynapticDelay, RejectedBeyondHardwareLimit) {
    Chip chip;
    PopulationConfig pc;
    pc.name = "p";
    pc.size = 2;
    const auto p = chip.add_population(pc);
    ProjectionConfig pr;
    pr.name = "d";
    pr.src = p;
    pr.dst = p;
    EXPECT_THROW(chip.add_projection(pr, {{0, 1, 1, 63}}), std::invalid_argument);
}

TEST(SynapticDelay, ResetClearsInFlightEvents) {
    Pair p(5);
    p.chip.set_bias(p.a, {1});
    p.chip.step();  // spike in flight
    p.chip.reset_dynamic_state();
    p.chip.set_bias(p.a, {0});
    p.chip.run(10);
    EXPECT_EQ(p.chip.membrane(p.b, 0), 0) << "reset must drop in-flight events";
}

TEST(AddJoin, SumsAuxUnconditionally) {
    Chip chip;
    PopulationConfig src;
    src.name = "src";
    src.size = 1;
    src.compartment.vth = 1;
    const auto s = chip.add_population(src);
    PopulationConfig dst;
    dst.name = "dst";
    dst.size = 1;
    dst.compartment.vth = 1 << 20;
    dst.compartment.join = JoinOp::Add;
    const auto d = chip.add_population(dst);
    ProjectionConfig pr;
    pr.name = "aux";
    pr.src = s;
    pr.dst = d;
    pr.port = Port::Aux;
    chip.add_projection(pr, {{0, 0, 7}});
    chip.finalize();
    chip.set_bias(s, {1});
    chip.run(3);
    // The destination never fired in phase 1, yet aux current integrates
    // (unlike GatedAdd): two arrivals by step 3.
    EXPECT_EQ(chip.membrane(d, 0), 14);
}

TEST(SecondTraces, IndependentTimeConstants) {
    Chip chip;
    PopulationConfig pc;
    pc.name = "p";
    pc.size = 1;
    pc.compartment.vth = 1;
    pc.compartment.pre_trace = {1, 0, TraceWindow::Both, 7};      // counter
    pc.compartment.pre_trace2 = {8, 2048, TraceWindow::Both, 7};  // fast decay
    const auto pop = chip.add_population(pc);
    chip.finalize();
    chip.set_bias(pop, {1});
    chip.run(6);
    // x1 counts all six spikes; x2 decays between them. The impulse lands
    // before the same step's decay, so the equilibrium is
    // (v + 8) / 2 = v  =>  v = 8 (plus stochastic-rounding jitter).
    EXPECT_EQ(chip.trace_x1(pop, 0), 6);
    EXPECT_GE(chip.trace_x2(pop, 0), 5);
    EXPECT_LE(chip.trace_x2(pop, 0), 11);
}

TEST(SecondTraces, TripletRuleThroughEngine) {
    // Triplet STDP: potentiation on a post spike scales with the *slow*
    // post trace y2 — expressible only with the second trace pair.
    const auto sop = parse_sum_of_products("2^-2*x1*y0*(y2+1)");
    LearnContext ctx;
    ctx.x1 = 8;
    ctx.y0 = 1;
    ctx.y2 = 3;
    EXPECT_EQ(sop.evaluate(ctx), 8);
    ctx.y2 = 0;
    EXPECT_EQ(sop.evaluate(ctx), 2);
    ctx.y0 = 0;
    EXPECT_EQ(sop.evaluate(ctx), 0);
}

TEST(Checkpoint, RoundTripsWeights) {
    auto build = [] {
        Chip chip;
        PopulationConfig pa;
        pa.name = "a";
        pa.size = 4;
        pa.compartment.vth = 1;
        const auto a = chip.add_population(pa);
        PopulationConfig pb;
        pb.name = "b";
        pb.size = 2;
        pb.compartment.vth = 100;
        const auto b = chip.add_population(pb);
        std::vector<Synapse> syns;
        for (std::uint32_t i = 0; i < 4; ++i)
            for (std::uint32_t o = 0; o < 2; ++o)
                syns.push_back({i, o, static_cast<std::int32_t>(i * 2 + o) - 3});
        ProjectionConfig pr;
        pr.name = "ab";
        pr.src = a;
        pr.dst = b;
        pr.plastic = true;
        pr.rule = emstdp_rule(2);
        chip.add_projection(pr, syns);
        chip.finalize();
        return chip;
    };

    Chip trained = build();
    // Perturb weights through the learning path.
    trained.set_phase(Phase::One);
    trained.set_bias(0, {1, 1, 0, 0});
    trained.run(8);
    trained.set_phase(Phase::Two);
    for (int i = 0; i < 4; ++i) trained.insert_spike(1, 0);
    trained.apply_learning();

    std::stringstream blob;
    trained.save_weights(blob);

    Chip fresh = build();
    ASSERT_NE(fresh.weights(0), trained.weights(0));
    fresh.load_weights(blob);
    EXPECT_EQ(fresh.weights(0), trained.weights(0));

    // The delivery path must use the loaded weights immediately.
    fresh.reset_dynamic_state();
    trained.reset_dynamic_state();
    fresh.set_bias(0, {1, 1, 1, 1});
    trained.set_bias(0, {1, 1, 1, 1});
    fresh.run(5);
    trained.run(5);
    EXPECT_EQ(fresh.membrane(1, 0), trained.membrane(1, 0));
    EXPECT_EQ(fresh.membrane(1, 1), trained.membrane(1, 1));
}

TEST(Checkpoint, RejectsCorruptBlobs) {
    Chip chip;
    PopulationConfig pc;
    pc.name = "p";
    pc.size = 2;
    const auto p = chip.add_population(pc);
    ProjectionConfig pr;
    pr.name = "self";
    pr.src = p;
    pr.dst = p;
    chip.add_projection(pr, {{0, 1, 3}});
    chip.finalize();

    std::stringstream bad("garbage");
    EXPECT_THROW(chip.load_weights(bad), std::runtime_error);

    std::stringstream blob;
    chip.save_weights(blob);
    std::string data = blob.str();
    data.resize(data.size() - 2);  // truncate
    std::stringstream truncated(data);
    EXPECT_THROW(chip.load_weights(truncated), std::runtime_error);
}

TEST(Probes, SpikeProbeMatchesCounters) {
    Chip chip;
    PopulationConfig pc;
    pc.name = "p";
    pc.size = 3;
    pc.compartment.vth = 10;
    const auto pop = chip.add_population(pc);
    chip.finalize();
    chip.set_bias(pop, {10, 5, 0});

    SpikeProbe probe(chip, pop);
    for (int t = 0; t < 10; ++t) {
        chip.step();
        probe.sample();
    }
    const auto totals = probe.totals();
    const auto counts = chip.spike_counts(pop, Phase::One);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(static_cast<std::int32_t>(totals[i]), counts[i]) << i;
    EXPECT_EQ(totals[2], 0u);
}

TEST(Probes, StateProbeRecordsMembrane) {
    Chip chip;
    PopulationConfig pc;
    pc.name = "p";
    pc.size = 2;
    pc.compartment.vth = 1 << 20;
    const auto pop = chip.add_population(pc);
    chip.finalize();
    chip.set_bias(pop, {3, 7});

    StateProbe probe(chip, pop, {0, 1}, StateField::Membrane);
    for (int t = 0; t < 4; ++t) {
        chip.step();
        probe.sample();
    }
    ASSERT_EQ(probe.series()[0].size(), 4u);
    EXPECT_EQ(probe.series()[0][3], 12);
    EXPECT_EQ(probe.series()[1][3], 28);
    EXPECT_THROW(StateProbe(chip, pop, {5}, StateField::Membrane),
                 std::invalid_argument);
}

TEST(Probes, CsvDumpsAreWellFormed) {
    Chip chip;
    PopulationConfig pc;
    pc.name = "p";
    pc.size = 1;
    pc.compartment.vth = 2;
    const auto pop = chip.add_population(pc);
    chip.finalize();
    chip.set_bias(pop, {2});
    SpikeProbe sp(chip, pop);
    StateProbe st(chip, pop, {0}, StateField::TraceX1);
    for (int t = 0; t < 3; ++t) {
        chip.step();
        sp.sample();
        st.sample();
    }
    const std::string dir = testing::TempDir() + "/neuro_probe_test";
    const auto p1 = sp.write_csv(dir, "spikes");
    const auto p2 = st.write_csv(dir, "x1");
    std::ifstream f1(p1), f2(p2);
    std::string line;
    std::getline(f1, line);
    EXPECT_EQ(line, "step,neuron");
    std::getline(f2, line);
    EXPECT_EQ(line, "step,n0");
    std::filesystem::remove_all(dir);
}
