// Unit tests for the chip simulator: CUBA/IF compartment dynamics, bias
// integration (the paper's input encoding), multi-compartment joins, phase
// gating, traces, spike delivery, learning application and the host API.

#include <gtest/gtest.h>

#include "loihi/chip.hpp"

using namespace neuro::loihi;

namespace {

/// A single-population chip with n IF neurons (paper configuration: no
/// voltage leak, instant current decay).
struct SinglePop {
    Chip chip;
    PopulationId pop;

    explicit SinglePop(std::size_t n, std::int32_t vth, bool floor = false) {
        PopulationConfig pc;
        pc.name = "p";
        pc.size = n;
        pc.compartment.vth = vth;
        pc.compartment.floor_at_zero = floor;
        pop = chip.add_population(pc);
        chip.finalize();
    }
};

}  // namespace

class BiasIntegrationTest : public testing::TestWithParam<std::int32_t> {};

TEST_P(BiasIntegrationTest, SpikeCountIsFloorBiasTOverTheta) {
    // Paper Sec. III-D: u_in = i * T, h_in = floor(u_in / theta). With
    // theta = T the count equals the programmed bias.
    const std::int32_t T = 64;
    const std::int32_t bias = GetParam();
    SinglePop s(1, T);
    s.chip.set_bias(s.pop, {bias});
    s.chip.run(static_cast<std::size_t>(T));
    EXPECT_EQ(s.chip.spike_counts(s.pop, Phase::One)[0], bias);
}

INSTANTIATE_TEST_SUITE_P(BiasSweep, BiasIntegrationTest,
                         testing::Values(0, 1, 7, 16, 32, 48, 63, 64));

TEST(Compartment, NoLeakIntegration) {
    // dv = 0: the membrane holds its value indefinitely.
    SinglePop s(1, 1000);
    s.chip.set_bias(s.pop, {10});
    s.chip.run(5);
    EXPECT_EQ(s.chip.membrane(s.pop, 0), 50);
    s.chip.set_bias(s.pop, {0});
    s.chip.run(100);
    EXPECT_EQ(s.chip.membrane(s.pop, 0), 50);
}

TEST(Compartment, VoltageLeakDecays) {
    Chip chip;
    PopulationConfig pc;
    pc.name = "lif";
    pc.size = 1;
    pc.compartment.vth = 1 << 20;
    pc.compartment.decay_v = 2048;  // halve every step
    const auto pop = chip.add_population(pc);
    chip.finalize();
    chip.set_bias(pop, {1024});
    chip.run(1);
    EXPECT_EQ(chip.membrane(pop, 0), 1024);
    chip.set_bias(pop, {0});
    chip.run(1);
    EXPECT_EQ(chip.membrane(pop, 0), 512);
    chip.run(2);
    EXPECT_EQ(chip.membrane(pop, 0), 128);
}

TEST(Compartment, SoftResetPreservesResidue) {
    SinglePop s(1, 10);
    s.chip.set_bias(s.pop, {7});
    // After 3 steps v accumulated 21 -> spikes at steps 2 and 3, residue 1.
    s.chip.run(3);
    EXPECT_EQ(s.chip.spike_counts(s.pop, Phase::One)[0], 2);
    EXPECT_EQ(s.chip.membrane(s.pop, 0), 1);
}

TEST(Compartment, HardResetDropsResidue) {
    Chip chip;
    PopulationConfig pc;
    pc.name = "hard";
    pc.size = 1;
    pc.compartment.vth = 10;
    pc.compartment.soft_reset = false;
    const auto pop = chip.add_population(pc);
    chip.finalize();
    chip.set_bias(pop, {7});
    chip.run(3);
    // Steps: v=7, v=14 -> spike, v=0; v=7. One spike, residue 7.
    EXPECT_EQ(chip.spike_counts(pop, Phase::One)[0], 1);
    EXPECT_EQ(chip.membrane(pop, 0), 7);
}

TEST(Compartment, FloorAtZeroClampsInhibition) {
    SinglePop s(1, 100, /*floor=*/true);
    s.chip.set_bias(s.pop, {-50});
    s.chip.run(10);
    EXPECT_EQ(s.chip.membrane(s.pop, 0), 0);
    // Without the floor the membrane would be at -500; one step of +60
    // must now cross nothing, two steps cross 100 once... verify recovery:
    s.chip.set_bias(s.pop, {60});
    s.chip.run(2);
    EXPECT_EQ(s.chip.spike_counts(s.pop, Phase::One)[0], 1);
}

TEST(Compartment, RefractoryBlocksSpikes) {
    Chip chip;
    PopulationConfig pc;
    pc.name = "ref";
    pc.size = 1;
    pc.compartment.vth = 10;
    pc.compartment.refractory = 3;
    const auto pop = chip.add_population(pc);
    chip.finalize();
    chip.set_bias(pop, {10});
    chip.run(8);
    // Fires at step 1, then 3 refractory steps, fires again at step 5, ...
    EXPECT_EQ(chip.spike_counts(pop, Phase::One)[0], 2);
}

TEST(Delivery, OneStepSynapticDelay) {
    Chip chip;
    PopulationConfig pa;
    pa.name = "a";
    pa.size = 1;
    pa.compartment.vth = 1;
    const auto a = chip.add_population(pa);
    PopulationConfig pb;
    pb.name = "b";
    pb.size = 1;
    pb.compartment.vth = 1 << 20;
    const auto b = chip.add_population(pb);
    ProjectionConfig pr;
    pr.name = "ab";
    pr.src = a;
    pr.dst = b;
    chip.add_projection(pr, {{0, 0, 5}});
    chip.finalize();

    chip.set_bias(a, {1});
    chip.step();  // a fires
    EXPECT_EQ(chip.membrane(b, 0), 0) << "spike must not arrive same step";
    chip.step();
    EXPECT_EQ(chip.membrane(b, 0), 5);
}

TEST(Delivery, WeightExponentScales) {
    Chip chip;
    PopulationConfig pa;
    pa.name = "a";
    pa.size = 1;
    pa.compartment.vth = 1;
    const auto a = chip.add_population(pa);
    PopulationConfig pb;
    pb.name = "b";
    pb.size = 1;
    pb.compartment.vth = 1 << 20;
    const auto b = chip.add_population(pb);
    ProjectionConfig pr;
    pr.name = "ab";
    pr.src = a;
    pr.dst = b;
    pr.weight_exp = 3;
    chip.add_projection(pr, {{0, 0, 7}});
    chip.finalize();
    chip.set_bias(a, {1});
    chip.run(2);
    EXPECT_EQ(chip.membrane(b, 0), 56);
}

TEST(Delivery, RejectsOverwideWeights) {
    Chip chip;
    PopulationConfig pc;
    pc.name = "p";
    pc.size = 2;
    const auto p = chip.add_population(pc);
    ProjectionConfig pr;
    pr.name = "self";
    pr.src = p;
    pr.dst = p;
    EXPECT_THROW(chip.add_projection(pr, {{0, 1, 200}}), std::invalid_argument);
    EXPECT_THROW(chip.add_projection(pr, {{0, 5, 1}}), std::invalid_argument);
}

TEST(MultiCompartment, AndAuxGateBlocksUngatedSoma) {
    // Error-neuron configuration: soma crosses threshold but may only emit
    // when the aux compartment has seen forward activity (paper Sec. III-A).
    Chip chip;
    PopulationConfig gate_src;
    gate_src.name = "fwd";
    gate_src.size = 2;
    gate_src.compartment.vth = 1;
    const auto fwd = chip.add_population(gate_src);

    PopulationConfig err;
    err.name = "err";
    err.size = 2;
    err.compartment.vth = 4;
    err.compartment.join = JoinOp::AndAuxActive;
    const auto e = chip.add_population(err);

    ProjectionConfig gate;
    gate.name = "gate";
    gate.src = fwd;
    gate.dst = e;
    gate.port = Port::Aux;
    chip.add_projection(gate, {{0, 0, 1}, {1, 1, 1}});
    chip.finalize();

    // Only forward neuron 0 is active; drive both error somata by bias.
    chip.set_bias(fwd, {1, 0});
    chip.set_bias(e, {4, 4});
    chip.run(6);
    const auto counts = chip.spike_counts(e, Phase::One);
    EXPECT_GT(counts[0], 0) << "gated-open error neuron must fire";
    EXPECT_EQ(counts[1], 0) << "gated-closed error neuron must stay silent";
}

TEST(MultiCompartment, GatedAddOnlyAffectsActiveNeurons) {
    // DFA configuration: aux current reaches the soma only if the neuron
    // fired in phase 1.
    Chip chip;
    PopulationConfig src;
    src.name = "err";
    src.size = 1;
    src.compartment.vth = 1;
    const auto s = chip.add_population(src);

    PopulationConfig hid;
    hid.name = "hid";
    hid.size = 2;
    hid.compartment.vth = 10;
    hid.compartment.join = JoinOp::GatedAdd;
    const auto h = chip.add_population(hid);

    ProjectionConfig pr;
    pr.name = "dfa";
    pr.src = s;
    pr.dst = h;
    pr.port = Port::Aux;
    chip.add_projection(pr, {{0, 0, 20}, {0, 1, 20}});
    chip.finalize();

    // Phase 1: neuron 0 active (bias), neuron 1 silent.
    chip.set_phase(Phase::One);
    chip.set_bias(h, {10, 0});
    chip.run(2);
    ASSERT_GT(chip.spike_counts(h, Phase::One)[0], 0);
    ASSERT_EQ(chip.spike_counts(h, Phase::One)[1], 0);

    // Phase 2: error source fires; only neuron 0 may integrate it.
    chip.set_phase(Phase::Two);
    chip.set_bias(h, {0, 0});
    chip.set_bias(s, {1});
    chip.run(4);
    EXPECT_GT(chip.spike_counts(h, Phase::Two)[0], 0);
    EXPECT_EQ(chip.spike_counts(h, Phase::Two)[1], 0);
}

TEST(PhaseGating, FrozenPopulationIgnoresPhase1) {
    Chip chip;
    PopulationConfig pc;
    pc.name = "err";
    pc.size = 1;
    pc.compartment.vth = 4;
    pc.compartment.active_in_phase1 = false;
    const auto pop = chip.add_population(pc);
    chip.finalize();

    chip.set_phase(Phase::One);
    chip.set_bias(pop, {4});
    chip.run(10);
    EXPECT_EQ(chip.spike_counts(pop, Phase::One)[0], 0);
    EXPECT_EQ(chip.membrane(pop, 0), 0);

    chip.set_phase(Phase::Two);
    chip.run(4);
    EXPECT_EQ(chip.spike_counts(pop, Phase::Two)[0], 4);
}

TEST(Traces, WindowsSelectPhases) {
    Chip chip;
    PopulationConfig pc;
    pc.name = "p";
    pc.size = 1;
    pc.compartment.vth = 1;
    pc.compartment.pre_trace = {1, 0, TraceWindow::Phase1Only, 7};
    pc.compartment.post_trace = {1, 0, TraceWindow::Phase2Only, 7};
    pc.compartment.tag_trace = {1, 0, TraceWindow::Both, 8};
    const auto pop = chip.add_population(pc);
    chip.finalize();

    chip.set_bias(pop, {1});
    chip.set_phase(Phase::One);
    chip.run(5);
    chip.set_phase(Phase::Two);
    chip.run(3);
    EXPECT_EQ(chip.trace_x1(pop, 0), 5);
    EXPECT_EQ(chip.trace_y1(pop, 0), 3);
    EXPECT_EQ(chip.trace_tag(pop, 0), 8);
}

TEST(Traces, SaturateAtWidth) {
    Chip chip;
    PopulationConfig pc;
    pc.name = "p";
    pc.size = 1;
    pc.compartment.vth = 1;
    const auto pop = chip.add_population(pc);
    chip.finalize();
    chip.set_bias(pop, {1});
    chip.run(200);
    EXPECT_EQ(chip.trace_x1(pop, 0), 127) << "7-bit trace must saturate";
    EXPECT_EQ(chip.trace_tag(pop, 0), 200) << "8-bit tag: 200 < 255";
}

TEST(Traces, ExponentialDecayMode) {
    Chip chip;
    PopulationConfig pc;
    pc.name = "p";
    pc.size = 1;
    pc.compartment.vth = 1 << 20;  // never fires on its own
    pc.compartment.post_trace = {64, 2048, TraceWindow::Both, 7};
    const auto pop = chip.add_population(pc);
    chip.finalize();
    // Inject one spike through the host path to pump the trace.
    chip.insert_spike(pop, 0);
    EXPECT_EQ(chip.trace_y1(pop, 0), 64);
    chip.run(1);
    EXPECT_EQ(chip.trace_y1(pop, 0), 32);
    chip.run(2);
    EXPECT_EQ(chip.trace_y1(pop, 0), 8);
}

TEST(Learning, AppliesEmstdpRuleAndUpdatesDelivery) {
    // Regression test for the weight-writeback bug: after apply_learning,
    // the *delivered* current must use the updated weight, not the initial
    // one.
    Chip chip;
    PopulationConfig pa;
    pa.name = "pre";
    pa.size = 1;
    pa.compartment.vth = 1;
    const auto a = chip.add_population(pa);
    PopulationConfig pb;
    pb.name = "post";
    pb.size = 1;
    pb.compartment.vth = 1 << 20;
    pb.compartment.post_trace = {1, 0, TraceWindow::Phase2Only, 7};
    const auto b = chip.add_population(pb);

    ProjectionConfig pr;
    pr.name = "plastic";
    pr.src = a;
    pr.dst = b;
    pr.plastic = true;
    pr.rule = emstdp_rule(0);  // shift 0: deterministic integer updates
    pr.stochastic_rounding = false;
    const auto proj = chip.add_projection(pr, {{0, 0, 10}});
    chip.finalize();

    // Pre fires 4 times in phase 1; post "fires" via host insertion 3 times
    // in phase 2 (so y1 = 3, tag = 3).
    chip.set_phase(Phase::One);
    chip.set_bias(a, {1});
    chip.run(4);
    chip.set_phase(Phase::Two);
    chip.set_bias(a, {0});
    for (int i = 0; i < 3; ++i) chip.insert_spike(b, 0);
    // dw = 2*x1*y1 - x1*tag = 2*4*3 - 4*3 = 12.
    chip.apply_learning();
    EXPECT_EQ(chip.weights(proj)[0], 22);

    // Delivery must now inject 22 per pre spike.
    chip.reset_dynamic_state();
    chip.set_phase(Phase::One);
    chip.set_bias(a, {1});
    chip.run(2);
    EXPECT_EQ(chip.membrane(b, 0), 22);
}

TEST(Learning, WeightsSaturateAtPrecision) {
    Chip chip;
    PopulationConfig pa;
    pa.name = "pre";
    pa.size = 1;
    pa.compartment.vth = 1;
    const auto a = chip.add_population(pa);
    PopulationConfig pb;
    pb.name = "post";
    pb.size = 1;
    pb.compartment.vth = 1 << 20;
    const auto b = chip.add_population(pb);
    ProjectionConfig pr;
    pr.name = "plastic";
    pr.src = a;
    pr.dst = b;
    pr.plastic = true;
    pr.rule = emstdp_rule(0);
    pr.stochastic_rounding = false;
    const auto proj = chip.add_projection(pr, {{0, 0, 120}});
    chip.finalize();

    chip.set_phase(Phase::One);
    chip.set_bias(a, {1});
    chip.run(20);
    chip.set_phase(Phase::Two);
    chip.set_bias(a, {0});
    for (int i = 0; i < 20; ++i) chip.insert_spike(b, 0);
    chip.apply_learning();  // raw dw = 2*20*20 - 20*20 = 400 -> saturate
    EXPECT_EQ(chip.weights(proj)[0], 127);
}

TEST(HostApi, ResetSemantics) {
    SinglePop s(1, 10);
    s.chip.set_bias(s.pop, {7});
    s.chip.run(5);
    ASSERT_GT(s.chip.spike_counts(s.pop, Phase::One)[0], 0);

    s.chip.reset_membranes();
    EXPECT_EQ(s.chip.membrane(s.pop, 0), 0);
    EXPECT_GT(s.chip.spike_counts(s.pop, Phase::One)[0], 0)
        << "membrane reset must keep counters";
    EXPECT_GT(s.chip.trace_x1(s.pop, 0), 0) << "membrane reset must keep traces";

    s.chip.reset_dynamic_state();
    EXPECT_EQ(s.chip.spike_counts(s.pop, Phase::One)[0], 0);
    EXPECT_EQ(s.chip.trace_x1(s.pop, 0), 0);
}

TEST(HostApi, BiasWritesCountAsIo) {
    SinglePop s(4, 10);
    const auto before = s.chip.activity().host_io_writes;
    s.chip.set_bias(s.pop, {1, 2, 3, 4});
    EXPECT_EQ(s.chip.activity().host_io_writes, before + 4);
    s.chip.insert_spike(s.pop, 0);
    EXPECT_EQ(s.chip.activity().host_io_writes, before + 5);
}

TEST(HostApi, ErrorsOnMisuse) {
    Chip chip;
    PopulationConfig pc;
    pc.name = "p";
    pc.size = 2;
    const auto pop = chip.add_population(pc);
    EXPECT_THROW(chip.step(), std::logic_error);  // not finalized
    chip.finalize();
    EXPECT_THROW(chip.finalize(), std::logic_error);  // double finalize
    EXPECT_THROW(chip.set_bias(pop, {1}), std::invalid_argument);  // size
    EXPECT_THROW(chip.set_bias(99, {1, 2}), std::invalid_argument);
    EXPECT_THROW(chip.membrane(pop, 5), std::invalid_argument);
    PopulationConfig pc2;
    pc2.name = "late";
    pc2.size = 1;
    EXPECT_THROW(chip.add_population(pc2), std::logic_error);
}

TEST(HostApi, RasterRecordsSpikes) {
    SinglePop s(2, 10);
    s.chip.enable_raster(s.pop);
    s.chip.set_bias(s.pop, {10, 0});
    s.chip.run(3);
    ASSERT_EQ(s.chip.raster().size(), 3u);
    EXPECT_EQ(s.chip.raster()[0].second, 0u);
}

TEST(Determinism, IdenticalRunsProduceIdenticalState) {
    auto build_and_run = [] {
        Chip chip;
        PopulationConfig pa;
        pa.name = "a";
        pa.size = 8;
        pa.compartment.vth = 17;
        const auto a = chip.add_population(pa);
        PopulationConfig pb;
        pb.name = "b";
        pb.size = 4;
        pb.compartment.vth = 23;
        const auto b = chip.add_population(pb);
        std::vector<Synapse> syns;
        for (std::uint32_t i = 0; i < 8; ++i)
            for (std::uint32_t o = 0; o < 4; ++o)
                syns.push_back({i, o, static_cast<std::int32_t>((i * 7 + o * 3) % 19) - 9});
        ProjectionConfig pr;
        pr.name = "ab";
        pr.src = a;
        pr.dst = b;
        chip.add_projection(pr, syns);
        chip.finalize();
        std::vector<std::int32_t> bias;
        for (int i = 0; i < 8; ++i) bias.push_back(3 + i);
        chip.set_bias(a, bias);
        chip.run(64);
        return chip.spike_counts(b, Phase::One);
    };
    EXPECT_EQ(build_and_run(), build_and_run());
}

TEST(EncodeWeight, SplitsMagnitudeIntoMantissaExponent) {
    const auto e1 = encode_weight(64, 8);
    EXPECT_EQ(e1.weight << e1.exponent, 64);
    const auto e2 = encode_weight(256, 8);
    EXPECT_EQ(e2.weight << e2.exponent, 256);
    EXPECT_LE(e2.weight, 127);
    const auto e3 = encode_weight(-1000, 8);
    EXPECT_NEAR(static_cast<double>(e3.weight << e3.exponent), -1000.0, 8.0);
    EXPECT_GE(e3.weight, -128);
}
