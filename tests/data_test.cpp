// Unit tests for src/data: the four synthetic generators (MNIST / Fashion /
// CIFAR / MSTAR substitutes), IDX loading, and the bias-encoding of inputs
// (paper Sec. III-D).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/dataset.hpp"
#include "data/encode.hpp"
#include "data/idx_loader.hpp"

using namespace neuro::data;
using neuro::common::Rng;

namespace {

/// Nearest-centroid accuracy: a floor on class separability that any
/// learnable dataset must clear comfortably.
double centroid_accuracy(const Dataset& d) {
    const std::size_t dim = d.pixels();
    std::vector<std::vector<double>> centroid(d.num_classes,
                                              std::vector<double>(dim, 0.0));
    std::vector<std::size_t> count(d.num_classes, 0);
    const std::size_t half = d.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
        const auto& s = d.samples[i];
        ++count[s.label];
        for (std::size_t p = 0; p < dim; ++p) centroid[s.label][p] += s.image[p];
    }
    for (std::size_t c = 0; c < d.num_classes; ++c)
        if (count[c] > 0)
            for (auto& v : centroid[c]) v /= static_cast<double>(count[c]);

    std::size_t hit = 0;
    for (std::size_t i = half; i < d.size(); ++i) {
        const auto& s = d.samples[i];
        double best = 1e30;
        std::size_t best_c = 0;
        for (std::size_t c = 0; c < d.num_classes; ++c) {
            double dist = 0.0;
            for (std::size_t p = 0; p < dim; ++p) {
                const double e = centroid[c][p] - s.image[p];
                dist += e * e;
            }
            if (dist < best) {
                best = dist;
                best_c = c;
            }
        }
        if (best_c == s.label) ++hit;
    }
    return static_cast<double>(hit) / static_cast<double>(d.size() - half);
}

}  // namespace

class GeneratorTest : public testing::TestWithParam<const char*> {};

TEST_P(GeneratorTest, ShapeLabelsAndRange) {
    GenOptions opt;
    opt.count = 100;
    opt.seed = 5;
    const Dataset d = make_by_name(GetParam(), opt);
    EXPECT_EQ(d.size(), 100u);
    EXPECT_EQ(d.num_classes, 10u);
    std::vector<std::size_t> counts(10, 0);
    for (const auto& s : d.samples) {
        ASSERT_LT(s.label, 10u);
        ++counts[s.label];
        ASSERT_EQ(s.image.size(), d.pixels());
        for (float v : s.image) {
            ASSERT_GE(v, 0.0f);
            ASSERT_LE(v, 1.0f);
        }
    }
    // Balanced generation (round-robin labels).
    for (std::size_t c = 0; c < 10; ++c) EXPECT_EQ(counts[c], 10u);
}

TEST_P(GeneratorTest, DeterministicPerSeed) {
    GenOptions opt;
    opt.count = 20;
    opt.seed = 77;
    const Dataset a = make_by_name(GetParam(), opt);
    const Dataset b = make_by_name(GetParam(), opt);
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.samples[i].label, b.samples[i].label);
        for (std::size_t p = 0; p < a.samples[i].image.size(); ++p)
            ASSERT_FLOAT_EQ(a.samples[i].image[p], b.samples[i].image[p]);
    }
    opt.seed = 78;
    const Dataset c = make_by_name(GetParam(), opt);
    bool differs = false;
    for (std::size_t p = 0; p < a.samples[0].image.size() && !differs; ++p)
        differs = a.samples[0].image[p] != c.samples[0].image[p];
    EXPECT_TRUE(differs) << "different seeds must give different images";
}

TEST_P(GeneratorTest, ClassesAreSeparable) {
    GenOptions opt;
    opt.count = 600;
    opt.seed = 3;
    const Dataset d = make_by_name(GetParam(), opt);
    // Every generator must beat chance by a wide margin even for the
    // weakest classifier; thresholds reflect intended difficulty ordering.
    const double acc = centroid_accuracy(d);
    EXPECT_GT(acc, 0.35) << GetParam() << " centroid accuracy " << acc;
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorTest,
                         testing::Values("digits", "fashion", "cifar", "sar"));

TEST(Generators, DifficultyOrderingDigitsEasiestByCentroid) {
    GenOptions opt;
    opt.count = 600;
    opt.seed = 9;
    const double digits = centroid_accuracy(make_digits(opt));
    const double cifar = centroid_accuracy(make_cifar(opt));
    EXPECT_GT(digits, cifar) << "digits must be easier than the CIFAR substitute";
}

TEST(Generators, GeometryMatchesPaper) {
    GenOptions opt;
    opt.count = 10;
    EXPECT_EQ(make_digits(opt).height, 28u);
    EXPECT_EQ(make_digits(opt).channels, 1u);
    EXPECT_EQ(make_fashion(opt).width, 28u);
    EXPECT_EQ(make_cifar(opt).channels, 3u);
    EXPECT_EQ(make_cifar(opt).height, 32u);
    EXPECT_EQ(make_sar(opt).height, 32u);  // paper crops/resizes MSTAR to 32x32
    EXPECT_EQ(make_sar(opt).channels, 1u);
}

TEST(Generators, CustomSizeHonoured) {
    GenOptions opt;
    opt.count = 10;
    opt.height = 14;
    opt.width = 14;
    const Dataset d = make_digits(opt);
    EXPECT_EQ(d.height, 14u);
    EXPECT_EQ(d.width, 14u);
}

TEST(Generators, UnknownNameThrows) {
    EXPECT_THROW(make_by_name("imagenet", {}), std::invalid_argument);
}

TEST(Dataset, FilterClasses) {
    GenOptions opt;
    opt.count = 100;
    const Dataset d = make_digits(opt);
    const Dataset f = d.filter_classes({1, 3});
    EXPECT_EQ(f.size(), 20u);
    for (const auto& s : f.samples) EXPECT_TRUE(s.label == 1 || s.label == 3);
}

TEST(Dataset, SplitAndShuffle) {
    GenOptions opt;
    opt.count = 50;
    Dataset d = make_digits(opt);
    Rng rng(4);
    d.shuffle(rng);
    auto [train, test] = split(d, 30);
    EXPECT_EQ(train.size(), 30u);
    EXPECT_EQ(test.size(), 20u);
    EXPECT_THROW(split(d, 51), std::invalid_argument);
}

TEST(IdxLoader, MissingFilesReturnNullopt) {
    EXPECT_FALSE(load_idx("/nonexistent/images", "/nonexistent/labels", "x"));
}

TEST(IdxLoader, ParsesCraftedFiles) {
    const std::string dir = testing::TempDir() + "/neuro_idx_test";
    std::filesystem::create_directories(dir);
    const std::string img_path = dir + "/imgs";
    const std::string lab_path = dir + "/labs";

    auto be32 = [](std::ofstream& f, std::uint32_t v) {
        const unsigned char b[4] = {static_cast<unsigned char>(v >> 24),
                                    static_cast<unsigned char>(v >> 16),
                                    static_cast<unsigned char>(v >> 8),
                                    static_cast<unsigned char>(v)};
        f.write(reinterpret_cast<const char*>(b), 4);
    };
    {
        std::ofstream f(img_path, std::ios::binary);
        be32(f, 0x803);
        be32(f, 2);   // 2 images
        be32(f, 2);   // 2x2
        be32(f, 2);
        const unsigned char px[8] = {0, 64, 128, 255, 10, 20, 30, 40};
        f.write(reinterpret_cast<const char*>(px), 8);
    }
    {
        std::ofstream f(lab_path, std::ios::binary);
        be32(f, 0x801);
        be32(f, 2);
        const unsigned char lab[2] = {7, 3};
        f.write(reinterpret_cast<const char*>(lab), 2);
    }
    const auto d = load_idx(img_path, lab_path, "crafted");
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->size(), 2u);
    EXPECT_EQ(d->height, 2u);
    EXPECT_EQ(d->samples[0].label, 7u);
    EXPECT_EQ(d->samples[1].label, 3u);
    EXPECT_FLOAT_EQ(d->samples[0].image[3], 1.0f);
    EXPECT_NEAR(d->samples[0].image[1], 64.0f / 255.0f, 1e-6);
    std::filesystem::remove_all(dir);
}

TEST(IdxWriter, RoundTripsThroughLoader) {
    GenOptions opt;
    opt.count = 30;
    opt.seed = 12;
    opt.height = 10;
    opt.width = 10;
    const Dataset d = make_digits(opt);
    const std::string dir = testing::TempDir() + "/neuro_idx_rt";
    std::filesystem::create_directories(dir);
    save_idx(d, dir + "/imgs", dir + "/labs");
    const auto back = load_idx(dir + "/imgs", dir + "/labs", "rt");
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->size(), d.size());
    EXPECT_EQ(back->height, 10u);
    for (std::size_t i = 0; i < d.size(); ++i) {
        ASSERT_EQ(back->samples[i].label, d.samples[i].label);
        for (std::size_t px = 0; px < d.pixels(); ++px)
            ASSERT_NEAR(back->samples[i].image[px], d.samples[i].image[px],
                        1.0f / 255.0f);
    }
    std::filesystem::remove_all(dir);
}

TEST(IdxWriter, RejectsMultiChannel) {
    GenOptions opt;
    opt.count = 5;
    const Dataset d = make_cifar(opt);
    EXPECT_THROW(save_idx(d, "/tmp/x", "/tmp/y"), std::invalid_argument);
}

TEST(Encode, BiasQuantizationIsLinear) {
    neuro::common::Tensor img({4});
    img[0] = 0.0f;
    img[1] = 0.25f;
    img[2] = 0.5f;
    img[3] = 1.0f;
    const auto bias = quantize_to_bias(img, 64);
    EXPECT_EQ(bias[0], 0);
    EXPECT_EQ(bias[1], 16);
    EXPECT_EQ(bias[2], 32);
    EXPECT_EQ(bias[3], 64);
}

TEST(Encode, RateCodeMatchesBiasIntegration) {
    // The explicit raster must carry exactly floor-style bias-integration
    // counts: spikes = bias (for theta = T).
    neuro::common::Tensor img({3});
    img[0] = 0.25f;
    img[1] = 0.75f;
    img[2] = 1.0f;
    const auto rasters = rate_code_spikes(img, 64);
    const auto bias = quantize_to_bias(img, 64);
    for (std::size_t i = 0; i < 3; ++i) {
        int count = 0;
        for (bool s : rasters[i]) count += s ? 1 : 0;
        EXPECT_EQ(count, bias[i]);
    }
}

TEST(Encode, IoCostShowsBiasAdvantage) {
    // Paper Sec. III-D: bias programming needs one write per pixel; spike
    // insertion needs one write per spike — far more for bright images.
    neuro::common::Tensor img({100});
    img.fill(0.8f);
    const auto cost = io_cost(img, 64);
    EXPECT_EQ(cost.bias_writes, 100u);
    EXPECT_GT(cost.spike_inserts, 40u * 100u);  // ~0.8 * 64 per pixel
    EXPECT_GT(cost.spike_inserts, cost.bias_writes);
}
