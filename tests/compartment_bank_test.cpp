// SoA <-> AoS equivalence tests for the compartment bank (the lane layout
// behind Chip's vectorized kernels).
//
// The chip stores dynamic compartment state as struct-of-arrays lanes
// (loihi/compartment.hpp) and steps them with SIMD-friendly kernels. This
// file pins the refactor down from the outside: an array-of-structs
// reference simulator — one struct per compartment, built on TraceState and
// the shared trace free functions, following the documented step semantics
// line by line — must agree bit-for-bit with every chip mode combination
// (dense/sparse sweep x scalar/vector kernels) on randomized networks:
// spikes, membranes, currents, all five traces, and every ActivityTotals
// counter, including the shared stochastic-rounding RNG stream of decaying
// traces.
//
// A second group cross-checks the four mode combinations against each other
// on an EMSTDP-shaped net (AndAuxActive error gates + plastic projections),
// and a concurrency section exercises the copy-on-write weight sharing from
// several threads (meaningful under TSan, registered there by CI).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "loihi/chip.hpp"
#include "loihi/trace.hpp"

using namespace neuro::loihi;

namespace {

// ---------------------------------------------------------------------------
// AoS reference simulator. Deliberately naive: every compartment is one
// struct, every step visits all of them in order, delivery walks a flat
// per-source synapse list. No lanes, no bitsets, no active list, no batched
// runs — just the documented semantics.
// ---------------------------------------------------------------------------

struct RefCompartment {
    std::int64_t u = 0;
    std::int64_t v = 0;
    std::int64_t pending_soma = 0;
    std::int64_t pending_aux = 0;
    std::int64_t aux_current = 0;
    std::int32_t bias = 0;
    std::int32_t refractory_left = 0;
    std::int32_t spikes_phase1 = 0;
    std::int32_t spikes_phase2 = 0;
    TraceState x1, y1, x2, y2, tag;
    bool spiked = false;
    bool aux_active = false;
    bool dead = false;
    std::int64_t vth_eff = 1;
};

struct RefSynapse {
    std::size_t dst = 0;      // global compartment id
    std::int32_t eff = 0;     // weight << weight_exp
    Port port = Port::Soma;
    std::uint8_t delay = 0;
};

struct RefEvent {
    std::size_t dst;
    std::int32_t weight;
    Port port;
};

class RefChip {
public:
    struct Pop {
        CompartmentConfig cfg;
        std::size_t first = 0;
        std::size_t size = 0;
    };

    std::size_t add_population(const CompartmentConfig& cfg, std::size_t n) {
        pops_.push_back({cfg, comp_.size(), n});
        comp_.resize(comp_.size() + n);
        fanout_.resize(comp_.size());
        for (std::size_t i = 0; i < n; ++i) {
            auto& c = comp_[pops_.back().first + i];
            c.vth_eff = std::max<std::int64_t>(1, cfg.vth);
        }
        return pops_.size() - 1;
    }

    void add_synapse(std::size_t src_pop, std::uint32_t src, std::size_t dst_pop,
                     std::uint32_t dst, std::int32_t weight, int weight_exp,
                     Port port, std::uint8_t delay) {
        RefSynapse s;
        s.dst = pops_[dst_pop].first + dst;
        s.eff = static_cast<std::int32_t>(static_cast<std::int64_t>(weight)
                                          << weight_exp);
        s.port = port;
        s.delay = delay;
        fanout_[pops_[src_pop].first + src].push_back(s);
    }

    void set_threshold_offset(std::size_t pop, std::size_t idx,
                              std::int32_t offset) {
        auto& c = comp_[pops_[pop].first + idx];
        c.vth_eff = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(pops_[pop].cfg.vth) + offset);
    }

    void set_dead(std::size_t pop, std::size_t idx) {
        comp_[pops_[pop].first + idx].dead = true;
    }

    void seed_noise(std::uint64_t seed) {
        trace_rng_ = neuro::common::Rng(seed ^ 0x7EAC0DEULL);
    }

    void set_phase(Phase p) { phase_ = p; }

    void set_bias(std::size_t pop, const std::vector<std::int32_t>& bias) {
        host_io_writes += bias.size();
        for (std::size_t i = 0; i < bias.size(); ++i)
            comp_[pops_[pop].first + i].bias = bias[i];
    }

    void insert_spike(std::size_t pop, std::size_t idx) {
        ++host_io_writes;
        auto& c = comp_[pops_[pop].first + idx];
        if (c.dead) return;
        const CompartmentConfig& cfg = pops_[pop].cfg;
        if (phase_ == Phase::One)
            ++c.spikes_phase1;
        else
            ++c.spikes_phase2;
        on_spike_traces(c, cfg);
        ++spikes;
        deliver(pops_[pop].first + idx);
    }

    void reset_membranes() {
        for (auto& c : comp_) {
            c.u = c.v = c.pending_soma = c.pending_aux = c.aux_current = 0;
            c.refractory_left = 0;
        }
    }

    void step() {
        ++now_;
        ++steps;
        for (const RefEvent& ev : wheel_[now_ % kWheel]) {
            if (ev.port == Port::Soma)
                comp_[ev.dst].pending_soma += ev.weight;
            else
                comp_[ev.dst].pending_aux += ev.weight;
        }
        wheel_[now_ % kWheel].clear();

        // Pass 1: integrate + spike decision, ascending compartment order
        // (the trace RNG draw order the chip guarantees).
        for (const Pop& p : pops_)
            for (std::size_t i = 0; i < p.size; ++i)
                step_compartment(comp_[p.first + i], p.cfg);

        // Pass 2: deliver, ascending order; spikes land as pending input for
        // the next step (one-step synaptic latency).
        for (std::size_t c = 0; c < comp_.size(); ++c)
            if (comp_[c].spiked) deliver(c);
    }

    void run(std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) step();
    }

    const RefCompartment& at(std::size_t pop, std::size_t idx) const {
        return comp_[pops_[pop].first + idx];
    }
    std::size_t pop_size(std::size_t pop) const { return pops_[pop].size; }

    // Mirrors of the ActivityTotals counters the stepper touches.
    std::uint64_t steps = 0;
    std::uint64_t compartment_updates = 0;
    std::uint64_t synaptic_ops = 0;
    std::uint64_t spikes = 0;
    std::uint64_t host_io_writes = 0;

private:
    static constexpr std::size_t kWheel = 128;  // > max synaptic delay + 1

    void on_spike_traces(RefCompartment& c, const CompartmentConfig& cfg) {
        c.x1.on_spike(cfg.pre_trace, phase_);
        c.y1.on_spike(cfg.post_trace, phase_);
        c.x2.on_spike(cfg.pre_trace2, phase_);
        c.y2.on_spike(cfg.post_trace2, phase_);
        c.tag.on_spike(cfg.tag_trace, phase_);
    }

    void tick_traces(RefCompartment& c, const CompartmentConfig& cfg) {
        c.x1.tick(cfg.pre_trace, &trace_rng_);
        c.y1.tick(cfg.post_trace, &trace_rng_);
        c.x2.tick(cfg.pre_trace2, &trace_rng_);
        c.y2.tick(cfg.post_trace2, &trace_rng_);
        c.tag.tick(cfg.tag_trace, &trace_rng_);
    }

    void step_compartment(RefCompartment& c, const CompartmentConfig& cfg) {
        c.spiked = false;
        if (c.dead) {
            c.pending_soma = 0;
            c.pending_aux = 0;
            return;
        }
        if (cfg.join == JoinOp::AndAuxActive) {
            if (c.pending_aux != 0) c.aux_active = true;
            c.pending_aux = 0;
        } else if (cfg.join == JoinOp::GatedAdd || cfg.join == JoinOp::Add) {
            c.aux_current = c.pending_aux;
            c.pending_aux = 0;
        }
        if (phase_ == Phase::One && !cfg.active_in_phase1) {
            c.pending_soma = 0;
            tick_traces(c, cfg);
            return;
        }
        ++compartment_updates;

        c.u = neuro::common::decay12(c.u, cfg.decay_u) + c.pending_soma;
        c.pending_soma = 0;
        std::int64_t drive = c.u + c.bias;
        if ((cfg.join == JoinOp::GatedAdd && c.spikes_phase1 > 0) ||
            cfg.join == JoinOp::Add)
            drive += c.aux_current;
        std::int64_t v = neuro::common::decay12(c.v, cfg.decay_v) + drive;
        if (cfg.floor_at_zero && v < 0) v = 0;
        c.v = v;

        if (c.refractory_left > 0) {
            --c.refractory_left;
            tick_traces(c, cfg);
            return;
        }
        if (v >= c.vth_eff) {
            const bool gate_open =
                cfg.join != JoinOp::AndAuxActive || c.aux_active;
            c.v = cfg.soft_reset ? v - c.vth_eff : 0;
            c.refractory_left = cfg.refractory;
            if (gate_open) {
                c.spiked = true;
                if (phase_ == Phase::One)
                    ++c.spikes_phase1;
                else
                    ++c.spikes_phase2;
                on_spike_traces(c, cfg);
                ++spikes;
            }
        }
        tick_traces(c, cfg);
    }

    void deliver(std::size_t src) {
        for (const RefSynapse& s : fanout_[src]) {
            if (s.delay != 0) {
                wheel_[(now_ + 1 + s.delay) % kWheel].push_back(
                    {s.dst, s.eff, s.port});
                continue;
            }
            if (s.port == Port::Soma)
                comp_[s.dst].pending_soma += s.eff;
            else
                comp_[s.dst].pending_aux += s.eff;
        }
        synaptic_ops += fanout_[src].size();
    }

    std::vector<Pop> pops_;
    std::vector<RefCompartment> comp_;
    std::vector<std::vector<RefSynapse>> fanout_;
    std::array<std::vector<RefEvent>, kWheel> wheel_;
    std::uint64_t now_ = 0;
    Phase phase_ = Phase::One;
    neuro::common::Rng trace_rng_{0x7EAC0DE};
};

// ---------------------------------------------------------------------------
// Randomized network builder: every draw goes into both simulators.
// ---------------------------------------------------------------------------

struct TwinNets {
    Chip chip;
    RefChip ref;
    std::vector<PopulationId> pops;
};

/// Builds a randomized network whose populations jointly cover the kernel
/// dispatch matrix: IF and leaky configs, soft and hard reset, floor,
/// refractory, every JoinOp, a phase-frozen population, decaying traces
/// (stochastic rounding), threshold offsets, dead units, synaptic delays
/// and both ports.
TwinNets build_random_net(std::uint64_t seed) {
    neuro::common::Rng rng(seed);
    TwinNets t;

    const std::size_t npops = 4 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    std::vector<CompartmentConfig> cfgs(npops);
    std::vector<std::size_t> sizes(npops);
    for (std::size_t p = 0; p < npops; ++p) {
        CompartmentConfig& cc = cfgs[p];
        sizes[p] = static_cast<std::size_t>(rng.uniform_int(3, 37));
        cc.vth = static_cast<std::int32_t>(rng.uniform_int(8, 60));
        cc.soft_reset = rng.bernoulli(0.5);
        cc.floor_at_zero = rng.bernoulli(0.5);
        cc.refractory = static_cast<std::int32_t>(rng.uniform_int(0, 3));
        switch (p % 4) {
            case 0:  // plain IF forward population (vector kind 1)
                cc.join = JoinOp::None;
                break;
            case 1:  // DFA hidden population (vector kind 2 when IF)
                cc.join = JoinOp::GatedAdd;
                break;
            case 2:  // dendritic summation (vector kind 3 when IF)
                cc.join = JoinOp::Add;
                break;
            default:  // error gate: always scalar, frozen in phase 1
                cc.join = JoinOp::AndAuxActive;
                cc.active_in_phase1 = false;
                break;
        }
        if (rng.bernoulli(0.3)) {  // leaky variant: generic decay kernel
            cc.decay_u = static_cast<std::int32_t>(rng.uniform_int(1024, 4096));
            cc.decay_v = static_cast<std::int32_t>(rng.uniform_int(0, 2048));
        }
        if (rng.bernoulli(0.25)) {  // decaying traces: shared-RNG scalar path
            cc.post_trace = {static_cast<std::int32_t>(rng.uniform_int(4, 32)),
                             static_cast<std::int32_t>(rng.uniform_int(256, 2048)),
                             TraceWindow::Both, 7};
        }

        PopulationConfig pc;
        pc.name = "p" + std::to_string(p);
        pc.size = sizes[p];
        pc.compartment = cc;
        t.pops.push_back(t.chip.add_population(pc));
        t.ref.add_population(cc, sizes[p]);
    }

    // Random sparse connectivity (~4 out-edges per neuron). Aux-port edges
    // target joined populations; everything else drives somata.
    for (std::size_t sp = 0; sp < npops; ++sp) {
        std::vector<Synapse> bysrc;
        std::vector<std::size_t> dst_pop_of;
        for (std::size_t i = 0; i < sizes[sp] * 4; ++i) {
            const std::size_t dp =
                static_cast<std::size_t>(rng.uniform_int(0, npops - 1));
            Synapse s;
            s.src = static_cast<std::uint32_t>(rng.uniform_int(0, sizes[sp] - 1));
            s.dst = static_cast<std::uint32_t>(rng.uniform_int(0, sizes[dp] - 1));
            s.weight = static_cast<std::int32_t>(rng.uniform_int(-30, 30));
            s.delay = static_cast<std::uint8_t>(
                rng.bernoulli(0.2) ? rng.uniform_int(1, 5) : 0);
            bysrc.push_back(s);
            dst_pop_of.push_back(dp);
        }
        // One projection per (dst pop, port) pair keeps the builder simple.
        for (std::size_t dp = 0; dp < npops; ++dp) {
            for (const Port port : {Port::Soma, Port::Aux}) {
                if (port == Port::Aux && cfgs[dp].join == JoinOp::None) continue;
                std::vector<Synapse> syns;
                for (std::size_t i = 0; i < bysrc.size(); ++i) {
                    const bool want_aux =
                        cfgs[dp].join != JoinOp::None && (i % 3 == 0);
                    if (dst_pop_of[i] == dp &&
                        (port == Port::Aux) == want_aux)
                        syns.push_back(bysrc[i]);
                }
                if (syns.empty()) continue;
                ProjectionConfig pr;
                pr.name = "s" + std::to_string(sp) + "d" + std::to_string(dp);
                pr.src = t.pops[sp];
                pr.dst = t.pops[dp];
                pr.port = port;
                pr.weight_exp = static_cast<int>(rng.uniform_int(0, 2));
                t.chip.add_projection(pr, syns);
                for (const Synapse& s : syns)
                    t.ref.add_synapse(sp, s.src, dp, s.dst, s.weight,
                                      pr.weight_exp, port, s.delay);
            }
        }
    }
    t.chip.finalize();

    // Device variation: threshold offsets on a few units, one dead unit per
    // third population.
    for (std::size_t p = 0; p < npops; ++p) {
        for (std::size_t i = 0; i < sizes[p]; i += 5) {
            const auto off = static_cast<std::int32_t>(rng.uniform_int(-6, 6));
            t.chip.set_threshold_offset(t.pops[p], i, off);
            t.ref.set_threshold_offset(p, i, off);
        }
        if (p % 3 == 2) {
            t.chip.set_compartment_dead(t.pops[p], 0, true);
            t.ref.set_dead(p, 0);
        }
    }
    return t;
}

/// Drives both simulators through a two-phase sample (the paper's operation
/// flow): phase-1 biases, a run, host spike insertions, the phase-boundary
/// membrane reset, then a phase-2 run.
void drive(TwinNets& t, std::uint64_t seed) {
    neuro::common::Rng rng(seed * 977 + 13);
    t.chip.seed_learning_noise(seed);
    t.ref.seed_noise(seed);

    t.chip.set_phase(Phase::One);
    t.ref.set_phase(Phase::One);
    for (std::size_t p = 0; p < t.pops.size(); ++p) {
        std::vector<std::int32_t> bias(t.ref.pop_size(p));
        for (auto& b : bias)
            b = static_cast<std::int32_t>(rng.uniform_int(-4, 12));
        t.chip.set_bias(t.pops[p], bias);
        t.ref.set_bias(p, bias);
    }
    t.chip.run(17);
    t.ref.run(17);

    for (int i = 0; i < 6; ++i) {
        const std::size_t p =
            static_cast<std::size_t>(rng.uniform_int(0, t.pops.size() - 1));
        const std::size_t idx =
            static_cast<std::size_t>(rng.uniform_int(0, t.ref.pop_size(p) - 1));
        t.chip.insert_spike(t.pops[p], idx);
        t.ref.insert_spike(p, idx);
    }
    t.chip.run(7);
    t.ref.run(7);

    t.chip.reset_membranes();
    t.ref.reset_membranes();
    t.chip.set_phase(Phase::Two);
    t.ref.set_phase(Phase::Two);
    t.chip.run(21);
    t.ref.run(21);
}

void expect_identical(const TwinNets& t) {
    for (std::size_t p = 0; p < t.pops.size(); ++p) {
        const auto c1 = t.chip.spike_counts(t.pops[p], Phase::One);
        const auto c2 = t.chip.spike_counts(t.pops[p], Phase::Two);
        for (std::size_t i = 0; i < t.ref.pop_size(p); ++i) {
            const RefCompartment& r = t.ref.at(p, i);
            ASSERT_EQ(t.chip.membrane(t.pops[p], i), r.v) << "pop " << p << " #" << i;
            ASSERT_EQ(t.chip.current(t.pops[p], i), r.u) << "pop " << p << " #" << i;
            ASSERT_EQ(c1[i], r.spikes_phase1) << "pop " << p << " #" << i;
            ASSERT_EQ(c2[i], r.spikes_phase2) << "pop " << p << " #" << i;
            ASSERT_EQ(t.chip.trace_x1(t.pops[p], i), r.x1.value);
            ASSERT_EQ(t.chip.trace_y1(t.pops[p], i), r.y1.value);
            ASSERT_EQ(t.chip.trace_x2(t.pops[p], i), r.x2.value);
            ASSERT_EQ(t.chip.trace_y2(t.pops[p], i), r.y2.value);
            ASSERT_EQ(t.chip.trace_tag(t.pops[p], i), r.tag.value);
        }
    }
    const ActivityTotals& a = t.chip.activity();
    EXPECT_EQ(a.steps, t.ref.steps);
    EXPECT_EQ(a.compartment_updates, t.ref.compartment_updates);
    EXPECT_EQ(a.synaptic_ops, t.ref.synaptic_ops);
    EXPECT_EQ(a.spikes, t.ref.spikes);
    EXPECT_EQ(a.host_io_writes, t.ref.host_io_writes);
}

}  // namespace

// ---------------------------------------------------------------------------
// SoA chip vs AoS reference, across the full mode matrix.
// ---------------------------------------------------------------------------

class BankEquivalence
    : public testing::TestWithParam<std::tuple<bool, bool, std::uint64_t>> {};

TEST_P(BankEquivalence, MatchesAosReferenceBitForBit) {
    const auto [sparse, vec, seed] = GetParam();
    TwinNets t = build_random_net(seed);
    t.chip.set_sparse_sweep(sparse);
    t.chip.set_vector_sweep(vec);
    drive(t, seed);
    expect_identical(t);
}

INSTANTIATE_TEST_SUITE_P(
    ModeMatrix, BankEquivalence,
    testing::Combine(testing::Bool(), testing::Bool(),
                     testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const auto& info) {
        return std::string(std::get<0>(info.param) ? "sparse" : "dense") +
               (std::get<1>(info.param) ? "Simd" : "Scalar") + "Seed" +
               std::to_string(std::get<2>(info.param));
    });

TEST(BankEquivalence, MidRunModetogglesPreserveState) {
    // Toggling the sweep/kernel selection between steps must not disturb
    // state: the mixed run has to match the reference exactly like a pure
    // run does.
    const std::uint64_t seed = 11;
    TwinNets t = build_random_net(seed);
    t.chip.seed_learning_noise(seed);
    t.ref.seed_noise(seed);
    t.chip.set_phase(Phase::One);
    t.ref.set_phase(Phase::One);
    std::vector<std::int32_t> bias(t.ref.pop_size(0), 9);
    t.chip.set_bias(t.pops[0], bias);
    t.ref.set_bias(0, bias);

    neuro::common::Rng flips(42);
    for (int s = 0; s < 40; ++s) {
        t.chip.set_sparse_sweep(flips.bernoulli(0.5));
        t.chip.set_vector_sweep(flips.bernoulli(0.5));
        t.chip.step();
        t.ref.step();
    }
    // Mode flips cost nothing observable: compare only the simulator state,
    // not the activity counters (wake_all bookkeeping is counter-neutral,
    // so those are covered by the matrix test above).
    for (std::size_t p = 0; p < t.pops.size(); ++p) {
        const auto c1 = t.chip.spike_counts(t.pops[p], Phase::One);
        for (std::size_t i = 0; i < t.ref.pop_size(p); ++i) {
            const RefCompartment& r = t.ref.at(p, i);
            ASSERT_EQ(t.chip.membrane(t.pops[p], i), r.v);
            ASSERT_EQ(c1[i], r.spikes_phase1);
            ASSERT_EQ(t.chip.trace_x1(t.pops[p], i), r.x1.value);
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-mode equivalence on an EMSTDP-shaped net, learning included.
// ---------------------------------------------------------------------------

namespace {

/// input -> hidden(GatedAdd) -> output, error pop (AndAuxActive, frozen in
/// phase 1) feeding the hidden aux port — the population roles of the
/// paper's network mapping, with plastic forward projections.
struct TrainNet {
    Chip chip;
    PopulationId in, hid, out, err;
    ProjectionId p_ih, p_ho;
};

TrainNet build_train_net(std::uint64_t seed) {
    neuro::common::Rng rng(seed);
    TrainNet n;
    PopulationConfig pin;
    pin.name = "in";
    pin.size = 24;
    pin.compartment.vth = 16;
    pin.compartment.floor_at_zero = true;
    n.in = n.chip.add_population(pin);

    PopulationConfig ph;
    ph.name = "hid";
    ph.size = 16;
    ph.compartment.vth = 40;
    ph.compartment.floor_at_zero = true;
    ph.compartment.join = JoinOp::GatedAdd;
    n.hid = n.chip.add_population(ph);

    PopulationConfig po;
    po.name = "out";
    po.size = 8;
    po.compartment.vth = 40;
    po.compartment.floor_at_zero = true;
    n.out = n.chip.add_population(po);

    PopulationConfig pe;
    pe.name = "err";
    pe.size = 8;
    pe.compartment.vth = 24;
    pe.compartment.join = JoinOp::AndAuxActive;
    pe.compartment.active_in_phase1 = false;
    n.err = n.chip.add_population(pe);

    auto dense = [&](std::size_t ns, std::size_t nd) {
        std::vector<Synapse> syns;
        for (std::uint32_t s = 0; s < ns; ++s)
            for (std::uint32_t d = 0; d < nd; ++d)
                syns.push_back({s, d,
                                static_cast<std::int32_t>(rng.uniform_int(-20, 20)),
                                0});
        return syns;
    };
    ProjectionConfig ih;
    ih.name = "ih";
    ih.src = n.in;
    ih.dst = n.hid;
    ih.plastic = true;
    ih.rule = emstdp_rule(2);
    n.p_ih = n.chip.add_projection(ih, dense(24, 16));
    ProjectionConfig ho;
    ho.name = "ho";
    ho.src = n.hid;
    ho.dst = n.out;
    ho.plastic = true;
    ho.rule = emstdp_rule(2);
    n.p_ho = n.chip.add_projection(ho, dense(16, 8));
    ProjectionConfig oe;
    oe.name = "oe";
    oe.src = n.out;
    oe.dst = n.err;
    oe.port = Port::Aux;
    std::vector<Synapse> gate;
    for (std::uint32_t i = 0; i < 8; ++i) gate.push_back({i, i, 4, 0});
    n.chip.add_projection(oe, gate);
    ProjectionConfig eh;
    eh.name = "eh";
    eh.src = n.err;
    eh.dst = n.hid;
    eh.port = Port::Aux;
    n.chip.add_projection(eh, dense(8, 16));
    n.chip.finalize();
    return n;
}

struct TrainResult {
    std::vector<std::int32_t> w_ih, w_ho;
    std::vector<std::int32_t> counts_out, counts_err;
    ActivityTotals totals;
};

TrainResult train_sample(bool sparse, bool vec) {
    TrainNet n = build_train_net(77);
    n.chip.set_sparse_sweep(sparse);
    n.chip.set_vector_sweep(vec);
    n.chip.seed_learning_noise(5);
    neuro::common::Rng rng(123);
    for (int sample = 0; sample < 3; ++sample) {
        std::vector<std::int32_t> bias(24);
        for (auto& b : bias)
            b = static_cast<std::int32_t>(rng.uniform_int(0, 12));
        n.chip.set_phase(Phase::One);
        n.chip.set_bias(n.in, bias);
        n.chip.run(24);
        n.chip.reset_membranes();
        n.chip.set_phase(Phase::Two);
        std::vector<std::int32_t> target(8, 0);
        target[sample % 8] = 20;
        n.chip.set_bias(n.err, target);
        n.chip.run(24);
        n.chip.apply_learning();
        n.chip.clear_bias(n.err);
        n.chip.reset_dynamic_state();
    }
    // One inference pass after training for the spike-count comparison.
    n.chip.set_phase(Phase::One);
    std::vector<std::int32_t> bias(24, 6);
    n.chip.set_bias(n.in, bias);
    n.chip.run(24);
    TrainResult r;
    r.w_ih = n.chip.weights(n.p_ih);
    r.w_ho = n.chip.weights(n.p_ho);
    r.counts_out = n.chip.spike_counts_total(n.out);
    r.counts_err = n.chip.spike_counts_total(n.err);
    r.totals = n.chip.activity();
    return r;
}

}  // namespace

TEST(ModeCrossEquivalence, TrainingIsBitIdenticalAcrossAllFourModes) {
    const TrainResult base = train_sample(/*sparse=*/false, /*vec=*/false);
    ASSERT_GT(base.totals.spikes, 0u) << "net must actually be active";
    for (const bool sparse : {false, true}) {
        for (const bool vec : {false, true}) {
            if (!sparse && !vec) continue;
            const TrainResult r = train_sample(sparse, vec);
            EXPECT_EQ(r.w_ih, base.w_ih) << "sparse=" << sparse << " vec=" << vec;
            EXPECT_EQ(r.w_ho, base.w_ho) << "sparse=" << sparse << " vec=" << vec;
            EXPECT_EQ(r.counts_out, base.counts_out);
            EXPECT_EQ(r.counts_err, base.counts_err);
            EXPECT_EQ(r.totals.steps, base.totals.steps);
            EXPECT_EQ(r.totals.compartment_updates,
                      base.totals.compartment_updates);
            EXPECT_EQ(r.totals.synaptic_ops, base.totals.synaptic_ops);
            EXPECT_EQ(r.totals.spikes, base.totals.spikes);
            EXPECT_EQ(r.totals.learning_synapse_visits,
                      base.totals.learning_synapse_visits);
        }
    }
}

// ---------------------------------------------------------------------------
// Copy-on-write weight sharing under concurrency (the Session substrate).
// Registered under TSan by CI: concurrent replicas must be able to read the
// shared weight image while one of them detaches to learn.
// ---------------------------------------------------------------------------

TEST(CowSharing, ConcurrentReplicasShareWeightsRaceFree) {
    TrainNet proto = build_train_net(31);
    proto.chip.seed_learning_noise(9);

    // Expected inference result, computed serially.
    auto infer = [](Chip chip) {
        chip.set_phase(Phase::One);
        chip.set_bias(0, std::vector<std::int32_t>(24, 7));
        chip.run(20);
        return chip.spike_counts_total(2);
    };
    const auto expected = infer(proto.chip);

    constexpr int kThreads = 4;
    std::vector<std::vector<std::int32_t>> results(kThreads);
    std::vector<std::vector<std::int32_t>> learner_weights(1);
    std::vector<std::thread> threads;
    for (int ti = 0; ti < kThreads; ++ti) {
        threads.emplace_back([&, ti] {
            Chip replica = proto.chip;  // shares structure + weight image
            if (ti == 0) {
                // The learner: detaches the weight image (copy-on-write)
                // while the other replicas keep reading the shared one.
                replica.set_phase(Phase::One);
                replica.set_bias(0, std::vector<std::int32_t>(24, 7));
                replica.run(20);
                replica.set_phase(Phase::Two);
                replica.run(10);
                replica.apply_learning();
                learner_weights[0] = replica.weights(1);
                results[ti].clear();  // not an inference result
            } else {
                replica.set_phase(Phase::One);
                replica.set_bias(0, std::vector<std::int32_t>(24, 7));
                replica.run(20);
                results[ti] = replica.spike_counts_total(2);
            }
        });
    }
    for (auto& th : threads) th.join();

    for (int ti = 1; ti < kThreads; ++ti)
        EXPECT_EQ(results[ti], expected) << "replica " << ti;
    // The learner really detached: the prototype still sees the original
    // weights.
    EXPECT_NE(learner_weights[0], proto.chip.weights(1))
        << "learning should have changed the learner's private copy";
}
