// Tests for the canonical STDP rules on the microcode learning engine
// (loihi/stdp.hpp) — the paper's Sec. II-B claim that "regular pairwise and
// triplet STDP rules can be implemented" in the sum-of-products form. Spike
// timing is forced by per-step bias pulses (bias = vth fires the neuron on
// exactly that step); a learning epoch runs after every step, which is how
// spike-timing rules are deployed on the chip.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "loihi/chip.hpp"
#include "loihi/stdp.hpp"

using namespace neuro::loihi;

namespace {

constexpr std::int32_t kVth = 64;

/// n_pre presynaptic neurons feeding one postsynaptic neuron, all with STDP
/// trace configurations, one plastic synapse per pre neuron.
struct StdpNet {
    Chip chip;
    PopulationId pre = 0;
    PopulationId post = 0;
    ProjectionId proj = 0;
    std::size_t n_pre;

    explicit StdpNet(const LearningRule& rule, std::size_t n = 1,
                     std::int32_t w0 = 0)
        : n_pre(n) {
        PopulationConfig pc;
        pc.name = "pre";
        pc.size = n;
        pc.compartment = stdp_compartment();
        pre = chip.add_population(pc);
        pc.name = "post";
        pc.size = 1;
        post = chip.add_population(pc);
        ProjectionConfig cfg;
        cfg.name = "syn";
        cfg.src = pre;
        cfg.dst = post;
        cfg.plastic = true;
        cfg.rule = rule;
        cfg.stochastic_rounding = false;  // timing tests want exact arithmetic
        std::vector<Synapse> syns;
        for (std::uint32_t i = 0; i < n; ++i) syns.push_back({i, 0, w0, 0});
        proj = chip.add_projection(cfg, std::move(syns));
        chip.finalize();
    }

    /// One timestep: fire the listed pre neurons and/or the post neuron,
    /// then run a learning epoch.
    void step(const std::vector<std::size_t>& fire_pre, bool fire_post) {
        std::vector<std::int32_t> bias(n_pre, 0);
        for (const auto i : fire_pre) bias[i] = kVth;
        chip.set_bias(pre, bias);
        chip.set_bias(post, {fire_post ? kVth : 0});
        chip.step();
        chip.apply_learning();
    }

    void idle(std::size_t steps) {
        for (std::size_t i = 0; i < steps; ++i) step({}, false);
    }

    std::int32_t weight(std::size_t i = 0) const {
        return chip.weights(proj)[i];
    }
};

}  // namespace

// ---- pairwise STDP ----------------------------------------------------------

TEST(PairwiseStdp, PreBeforePostPotentiates) {
    StdpNet net(pairwise_stdp());
    net.idle(2);
    net.step({0}, false);  // pre spike
    net.idle(2);
    net.step({}, true);  // post spike 3 steps later
    EXPECT_GT(net.weight(), 0);
}

TEST(PairwiseStdp, PostBeforePreDepresses) {
    StdpNet net(pairwise_stdp());
    net.idle(2);
    net.step({}, true);  // post spike
    net.idle(2);
    net.step({0}, false);  // pre spike 3 steps later
    EXPECT_LT(net.weight(), 0);
}

TEST(PairwiseStdp, NoActivityNoChange) {
    StdpNet net(pairwise_stdp(), 1, 17);
    net.idle(32);
    EXPECT_EQ(net.weight(), 17);
}

TEST(PairwiseStdp, SymmetricAmplitudesCancelOnCoincidence) {
    StdpNet net(pairwise_stdp());  // A+ == A-
    net.idle(2);
    net.step({0}, true);  // exact coincidence
    // x1 == y1 at the epoch (up to one stochastic trace-decay LSB), so the
    // two terms cancel to within a count.
    EXPECT_NEAR(net.weight(), 0, 1);
}

class StdpTimingTest : public testing::TestWithParam<std::size_t> {};

TEST_P(StdpTimingTest, PotentiationDecaysWithPrePostGap) {
    const std::size_t dt = GetParam();
    StdpNet net(pairwise_stdp());
    net.idle(2);
    net.step({0}, false);
    net.idle(dt - 1);
    net.step({}, true);
    // x1 at the post spike ~ 96 * 0.875^dt; dw = x1 >> 4.
    const double expected = 96.0 * std::pow(1.0 - 512.0 / 4096.0,
                                            static_cast<double>(dt));
    EXPECT_NEAR(net.weight(), static_cast<std::int32_t>(expected) >> 4, 1);
}

INSTANTIATE_TEST_SUITE_P(GapSweep, StdpTimingTest,
                         testing::Values(1u, 2u, 4u, 6u, 8u));

TEST(PairwiseStdp, CloserPairsChangeMore) {
    std::vector<std::int32_t> dw;
    for (const std::size_t dt : {1u, 4u, 8u}) {
        StdpNet net(pairwise_stdp());
        net.idle(2);
        net.step({0}, false);
        net.idle(dt - 1);
        net.step({}, true);
        dw.push_back(net.weight());
    }
    EXPECT_GE(dw[0], dw[1]);
    EXPECT_GE(dw[1], dw[2]);
    EXPECT_GT(dw[0], dw[2]);
    EXPECT_GT(dw[2], 0);
}

TEST(PairwiseStdp, RuleStringRoundTrips) {
    const auto rule = pairwise_stdp();
    const auto reparsed = parse_sum_of_products(rule.dw.str());
    LearnContext ctx;
    ctx.x0 = 1;
    ctx.x1 = 84;
    ctx.y0 = 1;
    ctx.y1 = 31;
    EXPECT_EQ(reparsed.evaluate(ctx), rule.dw.evaluate(ctx));
    EXPECT_EQ(reparsed.str(), rule.dw.str());
}

// ---- triplet STDP -----------------------------------------------------------

namespace {

/// Runs `pairings` pre-then-post pairings separated by `interval` idle steps
/// and returns the final weight.
std::int32_t run_pairing_protocol(const LearningRule& rule, std::size_t pairings,
                                  std::size_t interval) {
    StdpNet net(rule);
    net.idle(2);
    for (std::size_t k = 0; k < pairings; ++k) {
        net.step({0}, false);
        net.step({}, true);
        net.idle(interval);
    }
    return net.weight();
}

}  // namespace

TEST(TripletStdp, PotentiationGrowsWithPostRate) {
    // The triplet term x1*y2*y0 reads the slow post trace, which accumulates
    // across pairings only when they come fast. Subtract the matched pair
    // rule to isolate the triplet contribution at each rate.
    PairwiseStdpParams pair_params;
    pair_params.ltp_exponent = -5;  // match the triplet's a2+
    pair_params.ltd_exponent = -4;
    const auto pair_rule = pairwise_stdp(pair_params);
    const auto trip_rule = triplet_stdp();

    const std::int32_t pair_fast = run_pairing_protocol(pair_rule, 6, 2);
    const std::int32_t pair_slow = run_pairing_protocol(pair_rule, 6, 20);
    const std::int32_t trip_fast = run_pairing_protocol(trip_rule, 6, 2);
    const std::int32_t trip_slow = run_pairing_protocol(trip_rule, 6, 20);

    const std::int32_t extra_fast = trip_fast - pair_fast;
    const std::int32_t extra_slow = trip_slow - pair_slow;
    EXPECT_GT(extra_fast, extra_slow);
    EXPECT_GE(extra_slow, 0);
}

TEST(TripletStdp, ReducesToPairBehaviourForIsolatedPairings) {
    // With one isolated pairing the slow trace holds only the current
    // impulse, so the triplet surcharge is the small constant offset
    // documented in the header.
    const std::int32_t trip = run_pairing_protocol(triplet_stdp(), 1, 0);
    PairwiseStdpParams pp;
    pp.ltp_exponent = -5;
    pp.ltd_exponent = -4;
    const std::int32_t pair = run_pairing_protocol(pairwise_stdp(pp), 1, 0);
    EXPECT_GE(trip, pair);
    EXPECT_LE(trip - pair, (84 * 16) >> 8);  // x1 * impulse(y2) * 2^-8 bound
}

TEST(TripletStdp, DepressionStillTimingDependent) {
    StdpNet net(triplet_stdp());
    net.idle(2);
    net.step({}, true);
    net.step({0}, false);  // pre right after post
    EXPECT_LT(net.weight(), 0);
}

// ---- homeostatic STDP ---------------------------------------------------------

TEST(HomeostaticStdp, ConvergesToEquilibriumFromBelow) {
    StdpNet net(homeostatic_stdp());
    net.idle(2);
    std::int32_t prev = 0;
    std::int32_t last_delta = 0;
    for (std::size_t k = 0; k < 40; ++k) {
        net.step({0}, false);
        net.step({}, true);
        net.idle(4);
        last_delta = net.weight() - prev;
        prev = net.weight();
    }
    // Fixed point: w* = x1 at the post spike (ltp and decay both 2^-4).
    EXPECT_GT(net.weight(), 48);
    EXPECT_LT(net.weight(), 127);  // never saturates
    EXPECT_LE(std::abs(last_delta), 1);
}

TEST(HomeostaticStdp, ConvergesToSameBandFromAbove) {
    StdpNet low(homeostatic_stdp());
    StdpNet high(homeostatic_stdp(), 1, 120);
    low.idle(2);
    high.idle(2);
    for (std::size_t k = 0; k < 40; ++k) {
        for (StdpNet* net : {&low, &high}) {
            net->step({0}, false);
            net->step({}, true);
            net->idle(4);
        }
    }
    // The 2^-4 scales truncate to zero whenever |x1 - w| < 16, so the rule
    // has a one-shifted-LSB dead band around the fixed point; both runs must
    // land inside the same band, not on the same integer.
    EXPECT_NEAR(low.weight(), high.weight(), 16);
}

// ---- unsupervised causal selectivity ----------------------------------------

TEST(UnsupervisedStdp, CausalInputsWinAnticausalInputsLose) {
    // Pre neurons 0-3 fire one step before the (forced) post spike; 4-7 fire
    // one step after. Pairwise STDP turns the causal group excitatory and
    // the anticausal group inhibitory — the classic receptive-field split.
    StdpNet net(pairwise_stdp(), 8);
    net.idle(2);
    for (std::size_t k = 0; k < 12; ++k) {
        net.step({0, 1, 2, 3}, false);
        net.step({}, true);
        net.step({4, 5, 6, 7}, false);
        net.idle(12);
    }
    std::int32_t min_causal = 127, max_anticausal = -128;
    for (std::size_t i = 0; i < 4; ++i)
        min_causal = std::min(min_causal, net.weight(i));
    for (std::size_t i = 4; i < 8; ++i)
        max_anticausal = std::max(max_anticausal, net.weight(i));
    EXPECT_GT(min_causal, 0);
    EXPECT_LT(max_anticausal, 0);
    EXPECT_GT(min_causal, max_anticausal);
}

TEST(UnsupervisedStdp, SelectivityIsDeterministicInTheSeed) {
    const auto run = [] {
        StdpNet net(pairwise_stdp(), 8);
        net.idle(2);
        for (std::size_t k = 0; k < 6; ++k) {
            net.step({0, 1, 2, 3}, false);
            net.step({}, true);
            net.step({4, 5, 6, 7}, false);
            net.idle(8);
        }
        return net.chip.weights(net.proj);
    };
    EXPECT_EQ(run(), run());
}
