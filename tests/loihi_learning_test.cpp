// Unit tests for the sum-of-products learning engine (paper eq. 9): integer
// evaluation, the microcode text parser, the EMSTDP rule mapping (eq. 12)
// and the stochastic-rounding mode.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "loihi/learning.hpp"

using namespace neuro::loihi;
using neuro::common::Rng;

TEST(SumOfProducts, EvaluatesSimpleProducts) {
    // dw = 2 * x1 * y1
    SumOfProducts sop({LearnTerm{2, 0, {{LearnVar::X1, 0}, {LearnVar::Y1, 0}}}});
    LearnContext ctx;
    ctx.x1 = 3;
    ctx.y1 = 5;
    EXPECT_EQ(sop.evaluate(ctx), 30);
}

TEST(SumOfProducts, FactorsWithAddends) {
    // dw = (x1 - 2) * (y1 + 1)
    SumOfProducts sop({LearnTerm{1, 0, {{LearnVar::X1, -2}, {LearnVar::Y1, 1}}}});
    LearnContext ctx;
    ctx.x1 = 5;
    ctx.y1 = 3;
    EXPECT_EQ(sop.evaluate(ctx), 12);
}

TEST(SumOfProducts, NegativeShiftTruncatesTowardZero) {
    // 2^-3 * x1 with x1 = 7 -> 0; x1 = -7 -> 0 (symmetric truncation).
    SumOfProducts sop({LearnTerm{1, -3, {{LearnVar::X1, 0}}}});
    LearnContext ctx;
    ctx.x1 = 7;
    EXPECT_EQ(sop.evaluate(ctx), 0);
    ctx.x1 = -7;
    EXPECT_EQ(sop.evaluate(ctx), 0);
    ctx.x1 = 17;
    EXPECT_EQ(sop.evaluate(ctx), 2);
    ctx.x1 = -17;
    EXPECT_EQ(sop.evaluate(ctx), -2);
}

TEST(SumOfProducts, UsesWeightAndTag) {
    // Weight-decay-like: dw = -(w) + t
    SumOfProducts sop({LearnTerm{-1, 0, {{LearnVar::Wgt, 0}}},
                       LearnTerm{1, 0, {{LearnVar::Tag, 0}}}});
    LearnContext ctx;
    ctx.weight = 10;
    ctx.tag = 3;
    EXPECT_EQ(sop.evaluate(ctx), -7);
}

TEST(Parser, ParsesEmstdpShape) {
    const auto sop = parse_sum_of_products("2^-7*x1*y1 - 2^-8*x1*t");
    LearnContext ctx;
    ctx.x1 = 64;
    ctx.y1 = 32;
    ctx.tag = 48;
    // 2*64*32/256 - 64*48/256 = 16 - 12 = 4
    EXPECT_EQ(sop.evaluate(ctx), 4);
}

TEST(Parser, ParsesPairwiseStdp) {
    // Classic pairwise STDP: potentiate on post spike by pre trace,
    // depress on pre spike by post trace.
    const auto sop = parse_sum_of_products("2^-4*x1*y0 - 2^-4*y1*x0");
    LearnContext ctx;
    ctx.x1 = 32;
    ctx.y0 = 1;
    ctx.x0 = 0;
    ctx.y1 = 16;
    EXPECT_EQ(sop.evaluate(ctx), 2);
    ctx.y0 = 0;
    ctx.x0 = 1;
    EXPECT_EQ(sop.evaluate(ctx), -1);
}

TEST(Parser, ParsesParenthesizedAddends) {
    const auto sop = parse_sum_of_products("(x1 - 2) * (y1 + 3)");
    LearnContext ctx;
    ctx.x1 = 4;
    ctx.y1 = 1;
    EXPECT_EQ(sop.evaluate(ctx), 8);
}

TEST(Parser, ParsesConstantsAndSigns) {
    const auto sop = parse_sum_of_products("-3*x1 + 5");
    LearnContext ctx;
    ctx.x1 = 2;
    EXPECT_EQ(sop.evaluate(ctx), -1);
}

TEST(Parser, RoundTripsThroughStr) {
    const char* exprs[] = {"2^-7*x1*y1 - 2^-8*x1*t", "(x1-2)*(y1+3)",
                           "-3*x1 + 5", "x0*y1"};
    for (const char* e : exprs) {
        const auto a = parse_sum_of_products(e);
        const auto b = parse_sum_of_products(a.str());
        LearnContext ctx;
        ctx.x0 = 1;
        ctx.x1 = 13;
        ctx.y0 = 1;
        ctx.y1 = 9;
        ctx.tag = 21;
        ctx.weight = -4;
        EXPECT_EQ(a.evaluate(ctx), b.evaluate(ctx)) << e << " -> " << a.str();
    }
}

TEST(Parser, RejectsMalformedInput) {
    EXPECT_THROW(parse_sum_of_products(""), std::invalid_argument);
    EXPECT_THROW(parse_sum_of_products("x1 *"), std::invalid_argument);
    EXPECT_THROW(parse_sum_of_products("q1"), std::invalid_argument);
    EXPECT_THROW(parse_sum_of_products("(x1"), std::invalid_argument);
    EXPECT_THROW(parse_sum_of_products("x1 x1"), std::invalid_argument);
    EXPECT_THROW(parse_sum_of_products("2^^3*x1"), std::invalid_argument);
}

TEST(EmstdpRule, EquivalentToEq7) {
    // dw = eta*(h_hat - h)*h_pre must emerge from the two-term form with
    // y1 = h_hat, tag = h_hat + h, x1 = h_pre.
    const LearningRule rule = emstdp_rule(/*shift=*/4);
    for (int h_pre : {0, 8, 32}) {
        for (int h : {0, 5, 20}) {
            for (int h_hat : {0, 7, 20, 40}) {
                LearnContext ctx;
                ctx.x1 = h_pre;
                ctx.y1 = h_hat;
                ctx.tag = h_hat + h;
                const std::int64_t dw = rule.dw.evaluate(ctx);
                // Expected with symmetric truncation on each term.
                const std::int64_t t1 = (2LL * h_pre * h_hat) / 16;
                const std::int64_t t2 = (static_cast<std::int64_t>(h_pre) *
                                         (h_hat + h)) / 16;
                EXPECT_EQ(dw, t1 - t2);
                // Sign must follow (h_hat - h) whenever the magnitude is
                // above quantization.
                if (h_pre > 0 && std::abs(h_hat - h) * h_pre >= 32) {
                    if (h_hat > h) {
                        EXPECT_GT(dw, 0);
                    }
                    if (h_hat < h) {
                        EXPECT_LT(dw, 0);
                    }
                }
            }
        }
    }
}

TEST(EmstdpRule, TagRuleCountsPostSpikes) {
    const LearningRule rule = emstdp_rule(4);
    LearnContext ctx;
    ctx.y0 = 1;
    EXPECT_EQ(rule.dt.evaluate(ctx), 1);
    ctx.y0 = 0;
    EXPECT_EQ(rule.dt.evaluate(ctx), 0);
}

TEST(StochasticRounding, UnbiasedForSubLsbUpdates) {
    // v = 3 with shift 8 truncates to zero deterministically, but the
    // stochastically rounded mean must approach 3/256.
    SumOfProducts sop({LearnTerm{1, -8, {{LearnVar::X1, 0}}}});
    LearnContext ctx;
    ctx.x1 = 3;
    Rng rng(123);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(sop.evaluate(ctx, &rng));
    EXPECT_EQ(sop.evaluate(ctx), 0) << "deterministic path should truncate";
    EXPECT_NEAR(sum / n, 3.0 / 256.0, 5e-4);
}

TEST(StochasticRounding, UnbiasedForNegativeValues) {
    SumOfProducts sop({LearnTerm{-1, -8, {{LearnVar::X1, 0}}}});
    LearnContext ctx;
    ctx.x1 = 3;
    Rng rng(321);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(sop.evaluate(ctx, &rng));
    EXPECT_NEAR(sum / n, -3.0 / 256.0, 5e-4);
}
