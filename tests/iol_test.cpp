// Tests for the incremental-online-learning harness (paper Sec. IV-B).
// Run on a small dense-only network so the full schedule stays fast.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "iol/incremental.hpp"

using namespace neuro::iol;
using neuro::common::Rng;
using neuro::common::Tensor;

namespace {

/// Six well-separated rate prototypes over 18 inputs.
neuro::data::Dataset toy_pool(std::size_t per_class, std::uint64_t seed) {
    Rng rng(seed);
    const std::size_t classes = 6;
    const std::size_t dims = 18;
    std::vector<std::vector<float>> protos;
    for (std::size_t c = 0; c < classes; ++c) {
        std::vector<float> p(dims, 0.05f);
        for (std::size_t k = 0; k < 3; ++k) p[(c * 3 + k) % dims] = 0.8f;
        protos.push_back(std::move(p));
    }
    neuro::data::Dataset d;
    d.name = "toy6";
    d.channels = 1;
    d.height = 1;
    d.width = dims;
    d.num_classes = classes;
    for (std::size_t i = 0; i < per_class * classes; ++i) {
        const std::size_t c = i % classes;
        Tensor x({1, 1, dims});
        for (std::size_t p = 0; p < dims; ++p) {
            const float v = protos[c][p] + static_cast<float>(rng.normal(0.0, 0.06));
            x[p] = std::clamp(v, 0.0f, 1.0f);
        }
        d.samples.push_back({std::move(x), c});
    }
    return d;
}

NetworkFactory toy_factory() {
    return [] {
        neuro::core::EmstdpOptions opt;
        opt.seed = 13;
        return std::make_unique<neuro::core::EmstdpNetwork>(
            opt, 1, 1, 18, nullptr, std::vector<std::size_t>{}, 6);
    };
}

}  // namespace

TEST(Iol, ScheduleBookkeeping) {
    const auto pool = toy_pool(25, 1);
    const auto test = toy_pool(10, 2);
    IolOptions opt;
    opt.initial_classes = 2;
    opt.classes_per_iteration = 2;
    opt.iterations = 2;
    opt.rounds_per_iteration = 3;
    opt.pretrain_epochs = 2;
    opt.baseline_epochs = 1;

    const auto result = run_incremental(toy_factory(), pool, test, opt);

    ASSERT_EQ(result.rounds.size(), 6u);
    ASSERT_EQ(result.baseline.size(), 2u);
    EXPECT_EQ(result.class_order.size(), 6u);
    // Observed classes grow by 2 per iteration.
    EXPECT_EQ(result.rounds[0].observed_classes.size(), 4u);
    EXPECT_EQ(result.rounds[3].observed_classes.size(), 6u);
    for (const auto& r : result.rounds) {
        EXPECT_GE(r.accuracy_after_step1, 0.0);
        EXPECT_LE(r.accuracy_after_step1, 1.0);
        EXPECT_GE(r.accuracy_after_step2, 0.0);
        EXPECT_LE(r.accuracy_after_step2, 1.0);
    }
}

TEST(Iol, PretrainingLearnsInitialClasses) {
    const auto pool = toy_pool(30, 3);
    const auto test = toy_pool(12, 4);
    IolOptions opt;
    opt.initial_classes = 3;
    opt.classes_per_iteration = 1;
    opt.iterations = 1;
    opt.rounds_per_iteration = 2;
    opt.pretrain_epochs = 3;
    const auto result = run_incremental(toy_factory(), pool, test, opt);
    EXPECT_GT(result.pretrain_accuracy, 0.7)
        << "pretraining on the initial classes must work";
}

TEST(Iol, RecoversAcrossRoundsWithinIteration) {
    // The Fig. 4 signature: accuracy recovers over the rounds of an
    // iteration — the last round's step-2 accuracy beats the first round's
    // step-1 accuracy.
    const auto pool = toy_pool(40, 5);
    const auto test = toy_pool(15, 6);
    IolOptions opt;
    opt.initial_classes = 2;
    opt.classes_per_iteration = 2;
    opt.iterations = 1;
    opt.rounds_per_iteration = 4;
    opt.pretrain_epochs = 3;
    const auto result = run_incremental(toy_factory(), pool, test, opt);
    ASSERT_EQ(result.rounds.size(), 4u);
    EXPECT_GT(result.rounds.back().accuracy_after_step2,
              result.rounds.front().accuracy_after_step1);
}

TEST(Iol, RejectsOversizedSchedule) {
    const auto pool = toy_pool(10, 7);
    IolOptions opt;
    opt.initial_classes = 4;
    opt.classes_per_iteration = 2;
    opt.iterations = 3;  // needs 10 classes; pool has 6
    EXPECT_THROW(run_incremental(toy_factory(), pool, pool, opt),
                 std::invalid_argument);
}
