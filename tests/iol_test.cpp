// Tests for the incremental-online-learning harness (paper Sec. IV-B).
// Run on a small dense-only network so the full schedule stays fast.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "iol/incremental.hpp"

using namespace neuro::iol;
using neuro::common::Rng;
using neuro::common::Tensor;

namespace {

/// Six well-separated rate prototypes over 18 inputs.
neuro::data::Dataset toy_pool(std::size_t per_class, std::uint64_t seed) {
    Rng rng(seed);
    const std::size_t classes = 6;
    const std::size_t dims = 18;
    std::vector<std::vector<float>> protos;
    for (std::size_t c = 0; c < classes; ++c) {
        std::vector<float> p(dims, 0.05f);
        for (std::size_t k = 0; k < 3; ++k) p[(c * 3 + k) % dims] = 0.8f;
        protos.push_back(std::move(p));
    }
    neuro::data::Dataset d;
    d.name = "toy6";
    d.channels = 1;
    d.height = 1;
    d.width = dims;
    d.num_classes = classes;
    for (std::size_t i = 0; i < per_class * classes; ++i) {
        const std::size_t c = i % classes;
        Tensor x({1, 1, dims});
        for (std::size_t p = 0; p < dims; ++p) {
            const float v = protos[c][p] + static_cast<float>(rng.normal(0.0, 0.06));
            x[p] = std::clamp(v, 0.0f, 1.0f);
        }
        d.samples.push_back({std::move(x), c});
    }
    return d;
}

NetworkFactory toy_factory() {
    return [] {
        neuro::core::EmstdpOptions opt;
        opt.seed = 13;
        return std::make_unique<neuro::core::EmstdpNetwork>(
            opt, 1, 1, 18, nullptr, std::vector<std::size_t>{}, 6);
    };
}

}  // namespace

TEST(Iol, ScheduleBookkeeping) {
    const auto pool = toy_pool(25, 1);
    const auto test = toy_pool(10, 2);
    IolOptions opt;
    opt.initial_classes = 2;
    opt.classes_per_iteration = 2;
    opt.iterations = 2;
    opt.rounds_per_iteration = 3;
    opt.pretrain_epochs = 2;
    opt.baseline_epochs = 1;

    const auto result = run_incremental(toy_factory(), pool, test, opt);

    ASSERT_EQ(result.rounds.size(), 6u);
    ASSERT_EQ(result.baseline.size(), 2u);
    EXPECT_EQ(result.class_order.size(), 6u);
    // Observed classes grow by 2 per iteration.
    EXPECT_EQ(result.rounds[0].observed_classes.size(), 4u);
    EXPECT_EQ(result.rounds[3].observed_classes.size(), 6u);
    for (const auto& r : result.rounds) {
        EXPECT_GE(r.accuracy_after_step1, 0.0);
        EXPECT_LE(r.accuracy_after_step1, 1.0);
        EXPECT_GE(r.accuracy_after_step2, 0.0);
        EXPECT_LE(r.accuracy_after_step2, 1.0);
    }
}

TEST(Iol, PretrainingLearnsInitialClasses) {
    const auto pool = toy_pool(30, 3);
    const auto test = toy_pool(12, 4);
    IolOptions opt;
    opt.initial_classes = 3;
    opt.classes_per_iteration = 1;
    opt.iterations = 1;
    opt.rounds_per_iteration = 2;
    opt.pretrain_epochs = 3;
    const auto result = run_incremental(toy_factory(), pool, test, opt);
    EXPECT_GT(result.pretrain_accuracy, 0.7)
        << "pretraining on the initial classes must work";
}

TEST(Iol, RecoversAcrossRoundsWithinIteration) {
    // The Fig. 4 signature: accuracy recovers over the rounds of an
    // iteration — the last round's step-2 accuracy beats the first round's
    // step-1 accuracy.
    const auto pool = toy_pool(40, 5);
    const auto test = toy_pool(15, 6);
    IolOptions opt;
    opt.initial_classes = 2;
    opt.classes_per_iteration = 2;
    opt.iterations = 1;
    opt.rounds_per_iteration = 4;
    opt.pretrain_epochs = 3;
    const auto result = run_incremental(toy_factory(), pool, test, opt);
    ASSERT_EQ(result.rounds.size(), 4u);
    EXPECT_GT(result.rounds.back().accuracy_after_step2,
              result.rounds.front().accuracy_after_step1);
}

TEST(Iol, RejectsOversizedSchedule) {
    const auto pool = toy_pool(10, 7);
    IolOptions opt;
    opt.initial_classes = 4;
    opt.classes_per_iteration = 2;
    opt.iterations = 3;  // needs 10 classes; pool has 6
    EXPECT_THROW(run_incremental(toy_factory(), pool, pool, opt),
                 std::invalid_argument);
}

// ---- replay-draw determinism ------------------------------------------------
// sample_replay is the contract the online engine's replay pool mirrors
// (online::ReplayPool): class-balanced round-robin over the observed
// classes, uniform within the class, and a draw sequence that is a pure
// function of the RNG seed — identical across runs and thread counts.

namespace {

std::vector<std::vector<std::size_t>> toy_by_class() {
    // Class c owns indices [100*c, 100*c + 20).
    std::vector<std::vector<std::size_t>> by_class(6);
    for (std::size_t c = 0; c < 6; ++c)
        for (std::size_t i = 0; i < 20; ++i) by_class[c].push_back(100 * c + i);
    return by_class;
}

}  // namespace

TEST(IolReplay, SameSeedSameDrawsAcrossRuns) {
    const auto by_class = toy_by_class();
    const std::vector<std::size_t> observed{1, 3, 4};
    auto draw = [&](std::uint64_t seed) {
        Rng rng(seed);
        std::vector<std::size_t> all;
        for (int round = 0; round < 5; ++round) {
            const auto r = sample_replay(by_class, observed, 7, rng);
            all.insert(all.end(), r.begin(), r.end());
        }
        return all;
    };
    EXPECT_EQ(draw(17), draw(17));
    EXPECT_NE(draw(17), draw(18));
}

TEST(IolReplay, DrawsAreIdenticalOnEveryThreadCount) {
    const auto by_class = toy_by_class();
    const std::vector<std::size_t> observed{0, 2, 5};
    Rng serial_rng(99);
    const auto expected = sample_replay(by_class, observed, 60, serial_rng);

    for (std::size_t threads : {2u, 4u, 8u}) {
        std::vector<std::vector<std::size_t>> results(threads);
        std::vector<std::thread> pool;
        for (std::size_t t = 0; t < threads; ++t)
            pool.emplace_back([&, t] {
                Rng rng(99);  // each thread re-derives the same stream
                results[t] = sample_replay(by_class, observed, 60, rng);
            });
        for (auto& th : pool) th.join();
        for (const auto& r : results) EXPECT_EQ(r, expected);
    }
}

TEST(IolReplay, ClassBalancedAndWithinPoolDraws) {
    const auto by_class = toy_by_class();
    const std::vector<std::size_t> observed{1, 4};
    Rng rng(7);
    const auto r = sample_replay(by_class, observed, 10, rng);
    ASSERT_EQ(r.size(), 10u);
    std::size_t from_1 = 0;
    std::size_t from_4 = 0;
    for (std::size_t idx : r) {
        if (idx >= 100 && idx < 120) ++from_1;
        else if (idx >= 400 && idx < 420) ++from_4;
        else FAIL() << "draw " << idx << " outside the observed pools";
    }
    EXPECT_EQ(from_1, 5u);  // strict alternation: the round-robin cycle
    EXPECT_EQ(from_4, 5u);
}

TEST(IolReplay, RejectsEmptyObservedOrEmptyPool) {
    auto by_class = toy_by_class();
    Rng rng(1);
    EXPECT_THROW(sample_replay(by_class, {}, 3, rng), std::invalid_argument);
    by_class[2].clear();
    EXPECT_THROW(sample_replay(by_class, {2}, 3, rng), std::invalid_argument);
    EXPECT_TRUE(sample_replay(by_class, {2}, 0, rng).empty());  // count 0: no-op
}
