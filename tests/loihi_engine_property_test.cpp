// Property tests for the microcode learning engine (loihi/learning.hpp):
// randomized printer/parser round-trips, algebraic identities of the
// sum-of-products evaluator, statistical unbiasedness of stochastic
// rounding, and weight saturation at the learning boundary.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "common/rng.hpp"
#include "loihi/chip.hpp"
#include "loihi/learning.hpp"

using namespace neuro;
using namespace neuro::loihi;

namespace {

/// Uniformly random rule within the engine's vocabulary: up to 3 terms of
/// up to 3 factors, mantissas in [-9, 9] \ {0}, exponents in [-6, 0] (the
/// chip scales by right shifts; a positive power folds into the mantissa
/// and would not round-trip textually), addends in [-4, 4].
SumOfProducts random_rule(common::Rng& rng) {
    const LearnVar vars[] = {LearnVar::X0, LearnVar::X1, LearnVar::X2,
                             LearnVar::Y0, LearnVar::Y1, LearnVar::Y2,
                             LearnVar::Tag, LearnVar::Wgt};
    std::vector<LearnTerm> terms;
    const auto n_terms = static_cast<std::size_t>(rng.uniform_int(1, 3));
    for (std::size_t t = 0; t < n_terms; ++t) {
        LearnTerm term;
        term.mantissa = static_cast<std::int32_t>(rng.uniform_int(1, 9)) *
                        (rng.bernoulli(0.5) ? 1 : -1);
        term.exponent = static_cast<int>(rng.uniform_int(-6, 0));
        const auto n_factors = static_cast<std::size_t>(rng.uniform_int(1, 3));
        for (std::size_t f = 0; f < n_factors; ++f) {
            LearnFactor factor;
            factor.var = vars[rng.uniform_int(0, 7)];
            factor.addend = static_cast<std::int32_t>(rng.uniform_int(-4, 4));
            term.factors.push_back(factor);
        }
        terms.push_back(std::move(term));
    }
    return SumOfProducts(std::move(terms));
}

LearnContext random_context(common::Rng& rng) {
    LearnContext ctx;
    ctx.x0 = static_cast<std::int32_t>(rng.uniform_int(0, 1));
    ctx.x1 = static_cast<std::int32_t>(rng.uniform_int(0, 127));
    ctx.x2 = static_cast<std::int32_t>(rng.uniform_int(0, 127));
    ctx.y0 = static_cast<std::int32_t>(rng.uniform_int(0, 1));
    ctx.y1 = static_cast<std::int32_t>(rng.uniform_int(0, 127));
    ctx.y2 = static_cast<std::int32_t>(rng.uniform_int(0, 127));
    ctx.tag = static_cast<std::int32_t>(rng.uniform_int(-255, 255));
    ctx.weight = static_cast<std::int32_t>(rng.uniform_int(-128, 127));
    return ctx;
}

}  // namespace

class EnginePropertyTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(EnginePropertyTest, PrinterAndParserAreInverse) {
    common::Rng rng(GetParam());
    const auto rule = random_rule(rng);
    const auto text = rule.str();
    SumOfProducts reparsed;
    ASSERT_NO_THROW(reparsed = parse_sum_of_products(text)) << text;
    // Same evaluation on many contexts, and a fixed-point textual form.
    for (int k = 0; k < 32; ++k) {
        const auto ctx = random_context(rng);
        EXPECT_EQ(reparsed.evaluate(ctx), rule.evaluate(ctx)) << text;
    }
    EXPECT_EQ(reparsed.str(), text);
}

TEST_P(EnginePropertyTest, EvaluationIsAdditiveOverTerms) {
    common::Rng rng(GetParam() ^ 0xABCD);
    const auto a = random_rule(rng);
    const auto b = random_rule(rng);
    auto joined_terms = a.terms();
    for (const auto& t : b.terms()) joined_terms.push_back(t);
    const SumOfProducts joined(std::move(joined_terms));
    for (int k = 0; k < 32; ++k) {
        const auto ctx = random_context(rng);
        EXPECT_EQ(joined.evaluate(ctx), a.evaluate(ctx) + b.evaluate(ctx));
    }
}

TEST_P(EnginePropertyTest, StochasticRoundingIsExactOnMultiples) {
    common::Rng rng(GetParam() ^ 0x1234);
    common::Rng noise(99);
    // v divisible by 2^s: rounding must not perturb the result.
    const int s = static_cast<int>(rng.uniform_int(1, 6));
    const auto q = static_cast<std::int32_t>(rng.uniform_int(-20, 20));
    const std::int32_t v = q << s;
    const SumOfProducts rule(
        {LearnTerm{1, -s, {{LearnVar::Tag, 0}}}});
    LearnContext ctx;
    ctx.tag = v;
    for (int k = 0; k < 16; ++k) EXPECT_EQ(rule.evaluate(ctx, &noise), q);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(EngineRounding, SubLsbUpdatesKeepTheirExpectation) {
    // v = 3 scaled by 2^-4: truncation gives 0 forever; stochastic rounding
    // must average 3/16 over many trials.
    const SumOfProducts rule({LearnTerm{1, -4, {{LearnVar::Tag, 0}}}});
    LearnContext ctx;
    ctx.tag = 3;
    EXPECT_EQ(rule.evaluate(ctx), 0);  // truncation kills it

    common::Rng noise(7);
    const int trials = 20000;
    std::int64_t sum = 0;
    for (int k = 0; k < trials; ++k) sum += rule.evaluate(ctx, &noise);
    const double mean = static_cast<double>(sum) / trials;
    EXPECT_NEAR(mean, 3.0 / 16.0, 0.01);
}

TEST(EngineRounding, UnbiasedForNegativeValuesToo) {
    const SumOfProducts rule({LearnTerm{1, -4, {{LearnVar::Tag, 0}}}});
    LearnContext ctx;
    ctx.tag = -3;
    common::Rng noise(7);
    const int trials = 20000;
    std::int64_t sum = 0;
    for (int k = 0; k < trials; ++k) sum += rule.evaluate(ctx, &noise);
    EXPECT_NEAR(static_cast<double>(sum) / trials, -3.0 / 16.0, 0.01);
}

TEST(EngineRounding, TruncationIsSymmetricAboutZero) {
    const SumOfProducts rule({LearnTerm{1, -3, {{LearnVar::Tag, 0}}}});
    for (std::int32_t v = -64; v <= 64; ++v) {
        LearnContext pos;
        pos.tag = v;
        LearnContext neg;
        neg.tag = -v;
        EXPECT_EQ(rule.evaluate(pos), -rule.evaluate(neg)) << v;
    }
}

TEST(EngineParser, ReportsPositionsOnErrors) {
    const char* bad[] = {"", "x1 +", "2^-2 * q9", "x1 * (y1 + )", "3 ** x1",
                         "x1 y1"};
    for (const char* text : bad) {
        try {
            parse_sum_of_products(text);
            FAIL() << "expected parse failure for '" << text << "'";
        } catch (const std::invalid_argument& e) {
            EXPECT_NE(std::string(e.what()).find("position"), std::string::npos);
        }
    }
}

TEST(EngineSaturation, WeightsClampAtTheGridBoundary) {
    // A rule pushing +1000 per epoch must pin the weight at +127 (8 bits),
    // and the mirrored rule at -128.
    for (const int sign : {+1, -1}) {
        Chip chip;
        PopulationConfig pc;
        pc.name = "a";
        pc.size = 1;
        pc.compartment.vth = 4;
        const auto a = chip.add_population(pc);
        pc.name = "b";
        const auto b = chip.add_population(pc);
        ProjectionConfig cfg;
        cfg.name = "s";
        cfg.src = a;
        cfg.dst = b;
        cfg.plastic = true;
        cfg.rule.dw = SumOfProducts({LearnTerm{sign * 1000, 0, {}}});
        const auto proj = chip.add_projection(cfg, {{0, 0, 0, 0}});
        chip.finalize();
        chip.apply_learning();
        chip.apply_learning();  // idempotent at the rail
        EXPECT_EQ(chip.weights(proj)[0], sign > 0 ? 127 : -128);
    }
}
