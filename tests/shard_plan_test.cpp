// Shard-partitioner unit tests (loihi/shard.hpp): core-budget packing,
// cut minimization, degenerate single-shard plans, clean errors for
// unshardable inputs, and plan determinism.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "loihi/shard.hpp"

using namespace neuro;
using loihi::ChipLimits;
using loihi::plan_shards;
using loihi::PopulationAffinity;
using loihi::PopulationDemand;
using loihi::ShardPlan;

namespace {

ChipLimits limits_with_cores(std::size_t cores) {
    ChipLimits l;
    l.num_cores = cores;
    return l;
}

/// A layered-network shape: forward chain with heavy adjacent coupling and
/// a light error side-channel, like the EMSTDP build.
std::vector<PopulationDemand> layered_pops() {
    return {{"input", 2},  {"dense1", 40}, {"dense2", 40},
            {"output", 2}, {"label", 1},   {"oe+", 1},
            {"oe-", 1}};
}

std::vector<PopulationAffinity> layered_edges() {
    return {{0, 1, 25600}, {1, 2, 10000}, {2, 3, 1000}, {4, 5, 10},
            {3, 5, 10},    {4, 6, 10},    {3, 6, 10},   {5, 3, 10},
            {6, 3, 10}};
}

void expect_valid_partition(const ShardPlan& plan,
                            const std::vector<PopulationDemand>& pops,
                            std::size_t core_budget) {
    ASSERT_EQ(plan.shard_of.size(), pops.size());
    ASSERT_EQ(plan.cores_per_shard.size(), plan.num_shards);
    std::vector<std::size_t> cores(plan.num_shards, 0);
    for (std::size_t p = 0; p < pops.size(); ++p) {
        ASSERT_LT(plan.shard_of[p], plan.num_shards);
        cores[plan.shard_of[p]] += pops[p].cores;
    }
    for (std::size_t s = 0; s < plan.num_shards; ++s) {
        EXPECT_EQ(cores[s], plan.cores_per_shard[s]) << "shard " << s;
        EXPECT_LE(cores[s], core_budget) << "shard " << s;
        EXPECT_GT(plan.cores_per_shard[s], 0u) << "empty shard " << s;
    }
}

}  // namespace

TEST(ShardPlan, SingleShardDegenerate) {
    const auto plan =
        plan_shards(layered_pops(), layered_edges(), limits_with_cores(128), 0);
    EXPECT_EQ(plan.num_shards, 1u);
    EXPECT_TRUE(plan.single());
    EXPECT_EQ(plan.cut_synapses, 0u);
    for (const auto s : plan.shard_of) EXPECT_EQ(s, 0u);
    EXPECT_EQ(plan.cores_per_shard.at(0), plan.total_cores);
}

TEST(ShardPlan, AutoUsesMinimumShardsThatFit) {
    // 87 total cores on 48-core chips: needs at least 2, and the packing
    // must respect the budget.
    const auto limits = limits_with_cores(48);
    const auto plan = plan_shards(layered_pops(), layered_edges(), limits, 0);
    EXPECT_GE(plan.num_shards, 2u);
    EXPECT_LE(plan.num_shards, 3u);
    expect_valid_partition(plan, layered_pops(), limits.num_cores);
    // The heavy input->dense1 edge (25600 synapses) must not be cut when a
    // cut of the lighter dense2 boundary suffices.
    EXPECT_EQ(plan.shard_of[0], plan.shard_of[1]);
    EXPECT_LT(plan.cut_synapses, 25600u);
}

TEST(ShardPlan, ExplicitShardCountsSpread) {
    for (const std::size_t n : {2u, 4u}) {
        SCOPED_TRACE(n);
        const auto plan =
            plan_shards(layered_pops(), layered_edges(), limits_with_cores(128), n);
        EXPECT_EQ(plan.num_shards, n);
        expect_valid_partition(plan, layered_pops(), 128);
    }
}

TEST(ShardPlan, CutSynapsesMatchesAssignment) {
    const auto pops = layered_pops();
    const auto edges = layered_edges();
    const auto plan = plan_shards(pops, edges, limits_with_cores(128), 3);
    std::size_t cut = 0;
    for (const auto& e : edges)
        if (plan.shard_of[e.a] != plan.shard_of[e.b]) cut += e.synapses;
    EXPECT_EQ(plan.cut_synapses, cut);
}

TEST(ShardPlan, PopulationLargerThanOneChipErrorsCleanly) {
    auto pops = layered_pops();
    pops[1].cores = 200;  // dense1 alone exceeds the chip
    EXPECT_THROW(plan_shards(pops, layered_edges(), limits_with_cores(128), 0),
                 std::invalid_argument);
    EXPECT_THROW(plan_shards(pops, layered_edges(), limits_with_cores(128), 4),
                 std::invalid_argument);
    try {
        plan_shards(pops, layered_edges(), limits_with_cores(128), 0);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("dense1"), std::string::npos);
    }
}

TEST(ShardPlan, UnpackableExplicitCountThrows) {
    const std::vector<PopulationDemand> pops = {{"a", 100}, {"b", 100}};
    EXPECT_THROW(plan_shards(pops, {}, limits_with_cores(128), 1),
                 std::invalid_argument);
    EXPECT_NO_THROW(plan_shards(pops, {}, limits_with_cores(128), 2));
}

TEST(ShardPlan, MoreShardsThanPopulationsThrows) {
    // Populations are atomic, so 3 of them can never spread across 8 chips;
    // an explicit count that cannot be reached is an error, not a silent
    // smaller plan.
    const std::vector<PopulationDemand> pops = {{"a", 1}, {"b", 1}, {"c", 1}};
    EXPECT_THROW(plan_shards(pops, {}, limits_with_cores(128), 8),
                 std::invalid_argument);
    EXPECT_EQ(plan_shards(pops, {}, limits_with_cores(128), 3).num_shards, 3u);
}

TEST(ShardPlan, BadEdgeIndexThrows) {
    EXPECT_THROW(
        plan_shards(layered_pops(), {{0, 99, 5}}, limits_with_cores(128), 0),
        std::invalid_argument);
}

TEST(ShardPlan, DeterministicAcrossRuns) {
    for (const std::size_t n : {0u, 2u, 3u, 4u}) {
        SCOPED_TRACE(n);
        const auto a =
            plan_shards(layered_pops(), layered_edges(), limits_with_cores(64), n);
        for (int run = 0; run < 5; ++run) {
            const auto b = plan_shards(layered_pops(), layered_edges(),
                                       limits_with_cores(64), n);
            EXPECT_EQ(a.num_shards, b.num_shards);
            EXPECT_EQ(a.shard_of, b.shard_of);
            EXPECT_EQ(a.cores_per_shard, b.cores_per_shard);
            EXPECT_EQ(a.cut_synapses, b.cut_synapses);
        }
    }
}

TEST(ShardPlan, EmptyNetworkTrivialPlan) {
    const auto plan = plan_shards({}, {}, limits_with_cores(128), 0);
    EXPECT_EQ(plan.shard_of.size(), 0u);
    EXPECT_EQ(plan.total_cores, 0u);
}
