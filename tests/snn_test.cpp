// Unit tests for src/snn: conv/dense adjacency expansion and the ANN->SNN
// conversion (weight/threshold balancing). The headline property: a
// quantized spiking conv layer's counts track the float ReLU conv.

#include <gtest/gtest.h>

#include <cmath>

#include "ann/model.hpp"
#include "ann/ops.hpp"
#include "ann/trainer.hpp"
#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "data/encode.hpp"
#include "loihi/chip.hpp"
#include "snn/convert.hpp"
#include "snn/topology.hpp"

using namespace neuro::snn;
using neuro::common::Rng;
using neuro::common::Tensor;

TEST(ConvSpec, Geometry) {
    ConvSpec spec{1, 28, 28, 16, 5, 2};
    EXPECT_EQ(spec.out_h(), 12u);
    EXPECT_EQ(spec.out_size(), 16u * 12u * 12u);
    EXPECT_EQ(spec.fan_in(), 25u);
}

TEST(ConvTopology, ConnectionCountAndBounds) {
    ConvSpec spec{2, 8, 8, 3, 3, 1};
    std::size_t count = 0;
    for_each_conv_connection(spec, [&](std::size_t src, std::size_t dst,
                                       std::size_t widx) {
        ASSERT_LT(src, spec.in_size());
        ASSERT_LT(dst, spec.out_size());
        ASSERT_LT(widx, 3u * 2u * 3u * 3u);
        ++count;
    });
    EXPECT_EQ(count, spec.out_size() * spec.fan_in());
}

TEST(ConvTopology, MatchesDirectConvolution) {
    // Summing weights over the adjacency must reproduce conv2d_forward on a
    // "rate" vector — the adjacency and the dense math are the same linear
    // operator.
    ConvSpec spec{1, 6, 6, 2, 3, 1};
    Rng rng(3);
    Tensor img({1, 6, 6});
    for (auto& v : img) v = static_cast<float>(rng.uniform(0.0, 1.0));
    Tensor w({2, 1, 3, 3});
    for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    Tensor b({2});

    const Tensor ref = neuro::ann::conv2d_forward(img, w, b, 1);

    std::vector<float> acc(spec.out_size(), 0.0f);
    for_each_conv_connection(spec, [&](std::size_t src, std::size_t dst,
                                       std::size_t widx) {
        acc[dst] += w[widx] * img[src];
    });
    for (std::size_t i = 0; i < acc.size(); ++i) EXPECT_NEAR(acc[i], ref[i], 1e-4f);
}

TEST(DenseTopology, RowMajorExpansion) {
    const auto syns = dense_synapses(3, 2, {1, 2, 3, 4, 5, 6});
    ASSERT_EQ(syns.size(), 6u);
    // weight of (src=2, dst=1) must be w[1*3+2] = 6.
    bool found = false;
    for (const auto& s : syns)
        if (s.src == 2 && s.dst == 1) {
            EXPECT_EQ(s.weight, 6);
            found = true;
        }
    EXPECT_TRUE(found);
    EXPECT_THROW(dense_synapses(3, 2, {1, 2}), std::invalid_argument);
}

TEST(IdentityTopology, DiagonalOnly) {
    const auto syns = identity_synapses(4, 7);
    ASSERT_EQ(syns.size(), 4u);
    for (const auto& s : syns) {
        EXPECT_EQ(s.src, s.dst);
        EXPECT_EQ(s.weight, 7);
    }
}

TEST(Percentile, NearestRank) {
    EXPECT_FLOAT_EQ(percentile({1, 2, 3, 4, 5}, 1.0f), 5.0f);
    EXPECT_FLOAT_EQ(percentile({1, 2, 3, 4, 5}, 0.5f), 3.0f);
    EXPECT_FLOAT_EQ(percentile({5, 1, 3}, 0.3f), 1.0f);
    EXPECT_FLOAT_EQ(percentile({5, 1, 3}, 0.34f), 3.0f);
    EXPECT_THROW(percentile({}, 0.5f), std::invalid_argument);
    EXPECT_THROW(percentile({1.0f}, 1.5f), std::invalid_argument);
}

namespace {

/// Shared fixture: a small pretrained model and its conversion.
struct ConvertedFixture {
    neuro::ann::PaperTopology topo;
    neuro::data::Dataset data;
    std::unique_ptr<neuro::ann::Model> model;
    ConvertedStack stack;

    ConvertedFixture() {
        neuro::data::GenOptions gen;
        gen.count = 60;
        gen.seed = 8;
        gen.height = 14;
        gen.width = 14;
        data = neuro::data::make_digits(gen);
        topo.in_c = 1;
        topo.in_h = 14;
        topo.in_w = 14;
        topo.hidden = 20;
        Rng rng(4);
        model = std::make_unique<neuro::ann::Model>(
            neuro::ann::build_paper_model(topo, rng));
        neuro::ann::TrainOptions opt;
        opt.epochs = 2;
        neuro::ann::train(*model, data, opt, rng);
        stack = convert_conv_stack(*model, topo, data, 0.999f, 8);
    }
};

}  // namespace

TEST(Convert, ProducesValidQuantization) {
    ConvertedFixture f;
    EXPECT_GE(f.stack.conv1.vth, 1);
    EXPECT_GE(f.stack.conv2.vth, 1);
    EXPECT_GT(f.stack.conv1.lambda, 0.0f);
    EXPECT_EQ(f.stack.conv1.weights.size(), 16u * 1u * 5u * 5u);
    EXPECT_EQ(f.stack.conv1.bias.size(), f.stack.conv1.spec.out_size());
    std::int32_t wmax = 0;
    for (auto w : f.stack.conv1.weights) wmax = std::max(wmax, std::abs(w));
    EXPECT_EQ(wmax, 127) << "scaling must use the full 8-bit range";
}

TEST(Convert, SpikingConvTracksFloatConv) {
    // Lay the converted conv1 on a chip, rate-code an image via bias
    // integration, and compare per-neuron spike counts against the
    // normalized float activations: counts ~ clamp(a / lambda1, 0, 1) * T.
    ConvertedFixture f;
    const std::int32_t T = 64;

    neuro::loihi::Chip chip;
    neuro::loihi::PopulationConfig in;
    in.name = "in";
    in.size = f.stack.conv1.spec.in_size();
    in.compartment.vth = T;
    in.compartment.floor_at_zero = true;
    const auto in_pop = chip.add_population(in);
    neuro::loihi::PopulationConfig c1;
    c1.name = "conv1";
    c1.size = f.stack.conv1.spec.out_size();
    c1.compartment.vth = f.stack.conv1.vth;
    c1.compartment.floor_at_zero = true;
    const auto c1_pop = chip.add_population(c1);
    neuro::loihi::ProjectionConfig pr;
    pr.name = "conv1";
    pr.src = in_pop;
    pr.dst = c1_pop;
    chip.add_projection(pr, conv_synapses(f.stack.conv1.spec, f.stack.conv1.weights));
    chip.finalize();
    chip.set_bias(c1_pop, f.stack.conv1.bias);

    const auto* conv1 =
        dynamic_cast<const neuro::ann::Conv2d*>(f.model->layers()[0].get());
    double err_sum = 0.0;
    std::size_t n = 0;
    for (int s = 0; s < 5; ++s) {
        const auto& img = f.data.samples[static_cast<std::size_t>(s)].image;
        chip.reset_dynamic_state();
        chip.set_bias(in_pop, neuro::data::quantize_to_bias(img, T));
        chip.set_bias(c1_pop, f.stack.conv1.bias);
        chip.run(static_cast<std::size_t>(T) + 2);  // +delay slack

        const auto counts = chip.spike_counts(in_pop, neuro::loihi::Phase::One);
        const Tensor ref = neuro::ann::relu_forward(neuro::ann::conv2d_forward(
            img, conv1->weights(), conv1->bias(), conv1->stride()));
        const auto snn = chip.spike_counts(c1_pop, neuro::loihi::Phase::One);
        for (std::size_t i = 0; i < snn.size(); ++i) {
            const double expected =
                std::min(1.0, static_cast<double>(ref[i]) / f.stack.conv1.lambda) * T;
            err_sum += std::abs(static_cast<double>(snn[i]) - expected);
            ++n;
        }
    }
    // Mean absolute count error within a few spikes of T=64.
    EXPECT_LT(err_sum / static_cast<double>(n), 4.0);
}

TEST(Convert, RejectsNonPaperModels) {
    ConvertedFixture f;
    neuro::ann::Model empty;
    EXPECT_THROW(convert_conv_stack(empty, f.topo, f.data, 0.999f, 8),
                 std::invalid_argument);
}
