// Tests for the data-parallel batched training engine and the sparse
// active-set step loop it leans on:
//   * a 1-thread / batch-1 ParallelTrainer is bit-identical to the serial
//     core::train_epoch,
//   * batched results are independent of the thread count given fixed
//     seeds (the determinism contract of docs/ARCHITECTURE.md §4),
//   * the sparse sweep leaves every ActivityTotals counter — and the
//     trained weights — exactly equal to the dense reference sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "core/network.hpp"
#include "core/parallel_trainer.hpp"
#include "core/trainer.hpp"

using namespace neuro;
using namespace neuro::core;
using neuro::common::Rng;
using neuro::common::Tensor;

namespace {

constexpr std::size_t kDims = 25;
constexpr std::size_t kClasses = 3;

data::Dataset toy_stream(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<float>> protos;
    for (std::size_t k = 0; k < kClasses; ++k) {
        std::vector<float> p(kDims);
        for (auto& v : p) v = rng.bernoulli(0.5) ? 0.8f : 0.05f;
        protos.push_back(std::move(p));
    }
    data::Dataset d;
    d.name = "toy";
    d.channels = 1;
    d.height = 1;
    d.width = kDims;
    d.num_classes = kClasses;
    for (std::size_t i = 0; i < n; ++i) {
        const auto c = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(kClasses) - 1));
        Tensor x({1, 1, kDims});
        for (std::size_t j = 0; j < kDims; ++j)
            x[j] = std::clamp(
                protos[c][j] + static_cast<float>(rng.normal(0.0, 0.1)), 0.0f,
                1.0f);
        d.samples.push_back({std::move(x), c});
    }
    return d;
}

EmstdpOptions small_options() {
    EmstdpOptions opt;
    opt.phase_length = 32;
    opt.theta_dense = 128;
    return opt;
}

EmstdpNetwork make_net(const EmstdpOptions& opt) {
    return EmstdpNetwork(opt, 1, 1, kDims, nullptr, {12}, kClasses);
}

std::vector<std::vector<std::int32_t>> run_parallel_epochs(
    const EmstdpOptions& netopt, ParallelOptions popt,
    const data::Dataset& stream, std::size_t epochs) {
    EmstdpNetwork net = make_net(netopt);
    ParallelTrainer trainer(net, popt);
    Rng rng(101);
    for (std::size_t e = 0; e < epochs; ++e)
        trainer.train_epoch(stream, rng, /*measure_prequential=*/true);
    return net.plastic_weights();
}

}  // namespace

// ---- thread pool ------------------------------------------------------------

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
    common::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::atomic<int>> visits(257);
    for (auto& v : visits) v = 0;
    pool.run(visits.size(), [&](std::size_t j) { ++visits[j]; });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ReusableAcrossRuns) {
    common::ThreadPool pool(2);
    std::atomic<int> total{0};
    for (int round = 0; round < 10; ++round)
        pool.run(16, [&](std::size_t) { ++total; });
    EXPECT_EQ(total.load(), 160);
}

TEST(ThreadPool, PropagatesExceptions) {
    common::ThreadPool pool(3);
    EXPECT_THROW(
        pool.run(8,
                 [&](std::size_t j) {
                     if (j == 5) throw std::runtime_error("boom");
                 }),
        std::runtime_error);
    // The pool must still be usable after a failed run.
    std::atomic<int> total{0};
    pool.run(4, [&](std::size_t) { ++total; });
    EXPECT_EQ(total.load(), 4);
}

// ---- parallel trainer -------------------------------------------------------

TEST(ParallelTrainer, BatchOneMatchesSerialTrainerBitExact) {
    const auto stream = toy_stream(24, 5);
    const auto opt = small_options();

    EmstdpNetwork serial_net = make_net(opt);
    Rng serial_rng(101);
    const double serial_acc =
        core::train_epoch(serial_net, stream, serial_rng, true);

    EmstdpNetwork par_net = make_net(opt);
    ParallelOptions popt;
    popt.threads = 1;
    popt.batch = 1;
    ParallelTrainer trainer(par_net, popt);
    Rng par_rng(101);
    const double par_acc = trainer.train_epoch(stream, par_rng, true);

    EXPECT_EQ(serial_acc, par_acc);
    EXPECT_EQ(serial_net.plastic_weights(), par_net.plastic_weights());
    // And the serial path must consume the chip exactly alike: same step,
    // spike and I/O counters.
    const auto& a = serial_net.chip().activity();
    const auto& b = par_net.chip().activity();
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.compartment_updates, b.compartment_updates);
    EXPECT_EQ(a.synaptic_ops, b.synaptic_ops);
    EXPECT_EQ(a.spikes, b.spikes);
    EXPECT_EQ(a.host_io_writes, b.host_io_writes);
}

TEST(ParallelTrainer, ResultIndependentOfThreadCount) {
    const auto stream = toy_stream(22, 6);
    const auto netopt = small_options();

    ParallelOptions base;
    base.batch = 5;  // deliberately not a divisor of the stream size

    ParallelOptions p1 = base;
    p1.threads = 1;
    const auto w1 = run_parallel_epochs(netopt, p1, stream, 2);

    ParallelOptions p3 = base;
    p3.threads = 3;
    const auto w3 = run_parallel_epochs(netopt, p3, stream, 2);

    ParallelOptions p8 = base;
    p8.threads = 8;  // more workers than samples in the tail batch
    const auto w8 = run_parallel_epochs(netopt, p8, stream, 2);

    EXPECT_EQ(w1, w3);
    EXPECT_EQ(w1, w8);
}

TEST(ParallelTrainer, MeanClipMergeAlsoThreadInvariant) {
    const auto stream = toy_stream(18, 7);
    const auto netopt = small_options();

    ParallelOptions base;
    base.batch = 6;
    base.merge = MergeMode::MeanClip;

    ParallelOptions p1 = base;
    p1.threads = 1;
    ParallelOptions p4 = base;
    p4.threads = 4;
    EXPECT_EQ(run_parallel_epochs(netopt, p1, stream, 1),
              run_parallel_epochs(netopt, p4, stream, 1));
}

TEST(ParallelTrainer, ParallelEvaluateMatchesSerial) {
    const auto stream = toy_stream(30, 8);
    const auto opt = small_options();
    EmstdpNetwork net = make_net(opt);

    ParallelOptions popt;
    popt.threads = 3;
    popt.batch = 4;
    ParallelTrainer trainer(net, popt);
    Rng rng(13);
    trainer.train_epoch(stream, rng);

    EXPECT_EQ(trainer.evaluate(stream), core::evaluate(net, stream));
}

TEST(ParallelTrainer, BatchedTrainingStillLearnsTheToyTask) {
    const auto stream = toy_stream(120, 9);
    const auto opt = small_options();
    EmstdpNetwork net = make_net(opt);

    ParallelOptions popt;
    popt.threads = 4;
    popt.batch = 4;
    ParallelTrainer trainer(net, popt);
    Rng rng(17);
    for (int e = 0; e < 3; ++e) trainer.train_epoch(stream, rng);
    EXPECT_GT(trainer.evaluate(stream), 0.7);
}

// ---- sparse step loop -------------------------------------------------------

namespace {

void expect_activity_equal(const loihi::ActivityTotals& a,
                           const loihi::ActivityTotals& b) {
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.compartment_updates, b.compartment_updates);
    EXPECT_EQ(a.synaptic_ops, b.synaptic_ops);
    EXPECT_EQ(a.spikes, b.spikes);
    EXPECT_EQ(a.learning_synapse_visits, b.learning_synapse_visits);
    EXPECT_EQ(a.host_io_writes, b.host_io_writes);
}

void run_sparse_dense_parity(EmstdpOptions opt) {
    EmstdpNetwork sparse_net = make_net(opt);
    EmstdpNetwork dense_net = make_net(opt);
    ASSERT_TRUE(sparse_net.chip().sparse_sweep());
    dense_net.chip().set_sparse_sweep(false);

    const auto stream = toy_stream(10, 21);
    for (const auto& s : stream.samples) {
        sparse_net.train_sample(s.image, s.label);
        dense_net.train_sample(s.image, s.label);
    }
    // Interleave inference (exercises clear_bias / predict resets too).
    for (const auto& s : stream.samples)
        EXPECT_EQ(sparse_net.predict(s.image), dense_net.predict(s.image));

    expect_activity_equal(sparse_net.chip().activity(),
                          dense_net.chip().activity());
    EXPECT_EQ(sparse_net.plastic_weights(), dense_net.plastic_weights());
}

}  // namespace

TEST(SparseStep, ActivityCountersExactVsDenseSweep) {
    run_sparse_dense_parity(small_options());
}

TEST(SparseStep, ExactWithDecayingTracesAndFA) {
    // hw_trace_approx adds per-step decaying traces (shared-RNG order
    // matters); FA adds AND-gated aux compartments and the error chain.
    auto opt = small_options();
    opt.hw_trace_approx = true;
    opt.feedback = FeedbackMode::FA;
    run_sparse_dense_parity(opt);
}

TEST(SparseStep, ExactUnderFaultsAndThresholdVariation) {
    auto opt = small_options();
    EmstdpNetwork sparse_net = make_net(opt);
    EmstdpNetwork dense_net = make_net(opt);
    dense_net.chip().set_sparse_sweep(false);
    for (auto* net : {&sparse_net, &dense_net}) {
        net->chip().set_compartment_dead(net->input_pop(), 3, true);
        net->chip().set_threshold_offset(net->output_pop(), 1, -40);
        net->chip().set_threshold_offset(net->hidden_pops()[0], 2, 25);
    }
    const auto stream = toy_stream(6, 33);
    for (const auto& s : stream.samples) {
        sparse_net.train_sample(s.image, s.label);
        dense_net.train_sample(s.image, s.label);
    }
    expect_activity_equal(sparse_net.chip().activity(),
                          dense_net.chip().activity());
    EXPECT_EQ(sparse_net.plastic_weights(), dense_net.plastic_weights());
}

// ---- post-finalize weight programming --------------------------------------

TEST(ProgramWeights, ReprogramsAfterFinalizeAndRespectsStuckCells) {
    auto opt = small_options();
    EmstdpNetwork net = make_net(opt);
    const auto proj = net.plastic_projections()[0];
    auto w = net.chip().weights(proj);

    net.chip().set_synapse_stuck(proj, 2, 11);
    std::vector<std::int32_t> target(w.size(), 7);
    net.chip().program_weights(proj, target);

    const auto got = net.chip().weights(proj);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], i == 2 ? 11 : 7);

    std::vector<std::int32_t> too_big(w.size(), 1000);
    EXPECT_THROW(net.chip().program_weights(proj, too_big),
                 std::invalid_argument);
    EXPECT_THROW(net.chip().program_weights(proj, {1, 2, 3}),
                 std::invalid_argument);
}
