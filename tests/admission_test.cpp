// Deterministic virtual-clock tests for the neuro::serve admission layer
// (serve/admission.hpp): every CoDel state transition, the sqrt-decreasing
// drop schedule, weighted round-robin interleaving, and deadline-aware
// drops are driven by a ManualClock — no sleeps, no wall-time flakiness.
// The Server-level tests at the bottom pin the end-to-end contracts: an
// expired deadline resolves Rejected{DeadlineExceeded} without costing a
// session slot, and with no drops the admission-enabled server is
// bit-identical to the default one and to sequential Session inference.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/tensor.hpp"
#include "data/dataset.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/admission.hpp"
#include "serve/clock.hpp"
#include "serve/server.hpp"

using namespace neuro;
using serve::Admitted;
using serve::AdmissionConfig;
using serve::AdmissionCounters;
using serve::AdmissionQueue;
using serve::DropCause;
using serve::Dropped;
using serve::ManualClock;
using serve::Priority;

namespace {

using IntQueue = AdmissionQueue<int>;

constexpr auto kI = static_cast<std::size_t>(Priority::Interactive);
constexpr auto kB = static_cast<std::size_t>(Priority::Batch);
constexpr auto kF = static_cast<std::size_t>(Priority::Feedback);

struct PopResult {
    bool admitted = false;
    Admitted<int> out;
    std::vector<Dropped<int>> drops;
};

/// One dequeue attempt that never parks the thread: the wait deadline is
/// already in the past, so pop_until decides purely on queue state.
PopResult pop_now(IntQueue& q) {
    PopResult r;
    r.admitted = q.pop_until(r.out, std::chrono::steady_clock::now(), r.drops);
    return r;
}

void push_ok(IntQueue& q, int v, Priority cls = Priority::Interactive,
             std::uint64_t deadline_us = 0) {
    ASSERT_EQ(q.try_push(v, cls, deadline_us), IntQueue::Push::Ok);
}

}  // namespace

// ---- construction / config validation --------------------------------------

TEST(AdmissionConfigValidation, RejectsDegenerateParameters) {
    EXPECT_THROW(IntQueue(0), std::invalid_argument);
    AdmissionConfig zero_weight;
    zero_weight.weights = {1, 0, 1};
    EXPECT_THROW(IntQueue(4, zero_weight), std::invalid_argument);
    AdmissionConfig bad_codel;
    bad_codel.codel.enabled = true;
    bad_codel.codel.target_us = 0;
    EXPECT_THROW(IntQueue(4, bad_codel), std::invalid_argument);
    bad_codel.codel.target_us = 1000;
    bad_codel.codel.interval_us = 0;
    EXPECT_THROW(IntQueue(4, bad_codel), std::invalid_argument);
}

// ---- CoDel state machine ----------------------------------------------------

TEST(CoDel, DisabledTracksSojournButNeverDrops) {
    auto clk = std::make_shared<ManualClock>();
    IntQueue q(16, AdmissionConfig{}, clk);  // codel.enabled == false
    for (int i = 0; i < 4; ++i) push_ok(q, i);
    clk->set_us(10'000'000);  // ten full seconds of standing delay
    for (int i = 0; i < 4; ++i) {
        const PopResult r = pop_now(q);
        ASSERT_TRUE(r.admitted);
        EXPECT_EQ(r.out.value, i);  // FIFO preserved
        EXPECT_EQ(r.out.sojourn_us, 10'000'000u);
        EXPECT_TRUE(r.drops.empty());
    }
    const AdmissionCounters c = q.counters();
    EXPECT_EQ(c.codel_dropped[kI], 0u);
    EXPECT_EQ(c.drop_state_entries, 0u);
    EXPECT_FALSE(q.codel_state().dropping);
}

TEST(CoDel, EntersDropStateOnlyAfterAFullIntervalAboveTarget) {
    auto clk = std::make_shared<ManualClock>();
    AdmissionConfig cfg;
    cfg.codel.enabled = true;
    cfg.codel.target_us = 1'000;
    cfg.codel.interval_us = 10'000;
    IntQueue q(16, cfg, clk);
    for (int i = 0; i < 4; ++i) push_ok(q, i);

    // Above target, but the interval clock only starts at the first
    // above-target dequeue — no drop yet.
    clk->set_us(2'000);
    PopResult r = pop_now(q);
    ASSERT_TRUE(r.admitted);
    EXPECT_EQ(r.out.value, 0);
    EXPECT_TRUE(r.drops.empty());
    EXPECT_FALSE(q.codel_state().dropping);
    EXPECT_EQ(q.codel_state().first_above_us, 12'000u);  // 2000 + interval

    // Still inside the grace interval: admitted.
    r = pop_now(q);
    ASSERT_TRUE(r.admitted);
    EXPECT_EQ(r.out.value, 1);
    EXPECT_TRUE(r.drops.empty());

    // Interval elapsed while above target: the head entry is shed and the
    // queue enters the drop state (count = 1, next drop one interval out).
    clk->set_us(12'000);
    r = pop_now(q);
    ASSERT_TRUE(r.admitted);
    EXPECT_EQ(r.out.value, 3);  // 2 was dropped from the head
    ASSERT_EQ(r.drops.size(), 1u);
    EXPECT_EQ(r.drops[0].value, 2);
    EXPECT_EQ(r.drops[0].cause, DropCause::Overload);
    EXPECT_EQ(r.drops[0].sojourn_us, 12'000u);

    const AdmissionCounters c = q.counters();
    EXPECT_EQ(c.accepted[kI], 4u);
    EXPECT_EQ(c.dispatched[kI], 3u);
    EXPECT_EQ(c.codel_dropped[kI], 1u);
    EXPECT_EQ(c.drop_state_entries, 1u);
}

// The full scripted lifecycle on one timeline: sqrt-decreasing drop
// schedule while in the drop state, exit when sojourn falls back under
// target, hysteresis on quick re-entry (count resumes at count - 2), and
// fresh restart (count = 1) when the previous drop state is ancient.
TEST(CoDel, DropScheduleExitHysteresisAndRestart) {
    auto clk = std::make_shared<ManualClock>();
    AdmissionConfig cfg;
    cfg.codel.enabled = true;
    cfg.codel.target_us = 1'000;
    cfg.codel.interval_us = 10'000;
    IntQueue q(32, cfg, clk);
    for (int i = 0; i < 12; ++i) push_ok(q, i);

    clk->set_us(2'000);
    EXPECT_EQ(pop_now(q).out.value, 0);  // arms first_above = 12000
    EXPECT_EQ(pop_now(q).out.value, 1);

    // Entering the drop state sheds one entry; each later pop at the
    // scheduled time sheds exactly one more. The schedule is
    //   drop_next += interval / sqrt(count)
    // i.e. 10000/sqrt(1..4) = 10000, 7071, 5773, 5000 microseconds apart.
    struct Step {
        std::uint64_t at_us;
        int dropped, admitted;
        std::uint32_t count;
        std::uint64_t drop_next_us;
    };
    const Step steps[] = {
        {12'000, 2, 3, 1, 22'000},
        {22'000, 4, 5, 2, 29'071},
        {29'071, 6, 7, 3, 34'844},
        {34'844, 8, 9, 4, 39'844},
    };
    for (const Step& s : steps) {
        clk->set_us(s.at_us);
        const PopResult r = pop_now(q);
        ASSERT_TRUE(r.admitted);
        ASSERT_EQ(r.drops.size(), 1u);
        EXPECT_EQ(r.drops[0].value, s.dropped);
        EXPECT_EQ(r.drops[0].cause, DropCause::Overload);
        EXPECT_EQ(r.out.value, s.admitted);
        const serve::CoDelState st = q.codel_state();
        EXPECT_TRUE(st.dropping);
        EXPECT_EQ(st.count, s.count);
        EXPECT_EQ(st.drop_next_us, s.drop_next_us);
    }

    // Two stale entries (10, 11) remain; fresh traffic arrives. The stale
    // heads dispatch (next scheduled drop is at 39844, still ahead) …
    clk->set_us(34'900);
    push_ok(q, 100);
    push_ok(q, 101);
    EXPECT_EQ(pop_now(q).out.value, 10);
    EXPECT_EQ(pop_now(q).out.value, 11);

    // … and the first under-target sojourn exits the drop state.
    clk->set_us(35'200);
    const PopResult exit_pop = pop_now(q);
    ASSERT_TRUE(exit_pop.admitted);
    EXPECT_EQ(exit_pop.out.value, 100);
    EXPECT_EQ(exit_pop.out.sojourn_us, 300u);
    EXPECT_FALSE(q.codel_state().dropping);
    EXPECT_EQ(q.codel_state().count, 4u);  // remembered for hysteresis

    // Standing delay builds again within 16 intervals of the last drop
    // state: re-entry resumes near the previous drop rate (count = 4 - 2),
    // not from scratch.
    push_ok(q, 102);
    push_ok(q, 103);
    clk->set_us(40'000);
    EXPECT_EQ(pop_now(q).out.value, 101);  // re-arms first_above = 50000
    clk->set_us(50'000);
    const PopResult reenter = pop_now(q);
    ASSERT_TRUE(reenter.admitted);
    ASSERT_EQ(reenter.drops.size(), 1u);
    EXPECT_EQ(reenter.drops[0].value, 102);
    EXPECT_EQ(reenter.out.value, 103);
    EXPECT_EQ(q.codel_state().count, 2u);          // 4 - 2, hysteresis
    EXPECT_EQ(q.codel_state().drop_next_us, 57'071u);  // 50000 + 10000/sqrt(2)
    EXPECT_EQ(q.counters().drop_state_entries, 2u);

    // Ancient drop state (>16 intervals ago) + low count: restart at 1.
    clk->set_us(250'000);
    push_ok(q, 200);
    push_ok(q, 201);
    push_ok(q, 202);
    clk->set_us(261'000);
    EXPECT_EQ(pop_now(q).out.value, 200);  // re-arms first_above = 271000
    clk->set_us(271'000);
    const PopResult restart = pop_now(q);
    ASSERT_TRUE(restart.admitted);
    ASSERT_EQ(restart.drops.size(), 1u);
    EXPECT_EQ(restart.drops[0].value, 201);
    EXPECT_EQ(q.codel_state().count, 1u);
    EXPECT_EQ(q.counters().drop_state_entries, 3u);

    // Disposition bookkeeping balances: everything accepted was either
    // dispatched or explicitly dropped.
    const AdmissionCounters c = q.counters();
    EXPECT_EQ(c.accepted[kI], c.dispatched[kI] + c.codel_dropped[kI] +
                                  c.deadline_dropped[kI] + q.size());
}

TEST(CoDel, EmptyQueueResetsAboveTargetTracking) {
    auto clk = std::make_shared<ManualClock>();
    AdmissionConfig cfg;
    cfg.codel.enabled = true;
    cfg.codel.target_us = 1'000;
    cfg.codel.interval_us = 10'000;
    IntQueue q(16, cfg, clk);

    // Two entries with huge sojourn — but the queue empties before the
    // interval elapses, so nothing drops and first_above resets: a queue
    // that drains to empty holds no STANDING delay.
    push_ok(q, 0);
    push_ok(q, 1);
    clk->set_us(500'000);
    PopResult r = pop_now(q);
    ASSERT_TRUE(r.admitted);
    EXPECT_TRUE(r.drops.empty());
    EXPECT_EQ(q.codel_state().first_above_us, 510'000u);
    r = pop_now(q);  // last entry: total drops to 0 → tracking resets
    ASSERT_TRUE(r.admitted);
    EXPECT_TRUE(r.drops.empty());
    EXPECT_EQ(q.codel_state().first_above_us, 0u);
    EXPECT_EQ(q.counters().codel_dropped[kI], 0u);
}

// ---- weighted round robin ---------------------------------------------------

TEST(Wrr, WeightedInterleavingAcrossClasses) {
    auto clk = std::make_shared<ManualClock>();
    AdmissionConfig cfg;
    cfg.weights = {2, 1, 1};
    IntQueue q(16, cfg, clk);
    for (int v : {0, 1, 2, 3}) push_ok(q, v, Priority::Interactive);
    for (int v : {10, 11}) push_ok(q, v, Priority::Batch);
    for (int v : {20, 21}) push_ok(q, v, Priority::Feedback);

    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
        const PopResult r = pop_now(q);
        ASSERT_TRUE(r.admitted);
        ASSERT_TRUE(r.drops.empty());
        order.push_back(r.out.value);
    }
    // Weights {2,1,1}: two Interactive per Batch per Feedback, FIFO within
    // each class.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 20, 2, 3, 11, 21}));
}

TEST(Wrr, WorkConservingWhenOtherClassesAreEmpty) {
    auto clk = std::make_shared<ManualClock>();
    AdmissionConfig cfg;
    cfg.weights = {8, 1, 1};
    IntQueue q(16, cfg, clk);
    for (int v : {10, 11, 12, 13, 14}) push_ok(q, v, Priority::Batch);
    for (int i = 0; i < 5; ++i) {
        const PopResult r = pop_now(q);
        ASSERT_TRUE(r.admitted);
        EXPECT_EQ(r.out.value, 10 + i);  // sole class drains back-to-back
        EXPECT_EQ(r.out.cls, Priority::Batch);
    }
}

TEST(Wrr, DropsDoNotConsumeAClassQuantum) {
    auto clk = std::make_shared<ManualClock>();
    clk->set_us(1'000);
    AdmissionConfig cfg;
    cfg.weights = {2, 1, 1};
    IntQueue q(16, cfg, clk);
    push_ok(q, 90, Priority::Interactive, 500);  // deadline already passed
    push_ok(q, 0, Priority::Interactive);
    push_ok(q, 1, Priority::Interactive);
    push_ok(q, 10, Priority::Batch);
    push_ok(q, 20, Priority::Feedback);

    // The expired head is shed, yet Interactive still gets its full two
    // dispatches before the rotation moves on.
    PopResult r = pop_now(q);
    ASSERT_TRUE(r.admitted);
    ASSERT_EQ(r.drops.size(), 1u);
    EXPECT_EQ(r.drops[0].value, 90);
    EXPECT_EQ(r.drops[0].cause, DropCause::DeadlineExceeded);
    EXPECT_EQ(r.out.value, 0);
    EXPECT_EQ(pop_now(q).out.value, 1);
    EXPECT_EQ(pop_now(q).out.value, 10);
    EXPECT_EQ(pop_now(q).out.value, 20);
}

// ---- deadline-aware drop ----------------------------------------------------

TEST(Deadline, ExpiredEntryIsNeverDispatchedAndSkipsTheCoDelEstimator) {
    auto clk = std::make_shared<ManualClock>();
    clk->set_us(1'000);
    AdmissionConfig cfg;
    cfg.codel.enabled = true;
    cfg.codel.target_us = 100;  // sojourn will be far above target
    cfg.codel.interval_us = 10'000;
    IntQueue q(16, cfg, clk);
    push_ok(q, 7, Priority::Batch, 1'500);
    clk->set_us(2'000);

    PopResult r = pop_now(q);
    EXPECT_FALSE(r.admitted);  // nothing admitted — but the drop is handed back
    ASSERT_EQ(r.drops.size(), 1u);
    EXPECT_EQ(r.drops[0].value, 7);
    EXPECT_EQ(r.drops[0].cls, Priority::Batch);
    EXPECT_EQ(r.drops[0].cause, DropCause::DeadlineExceeded);
    EXPECT_EQ(r.drops[0].sojourn_us, 1'000u);

    const AdmissionCounters c = q.counters();
    EXPECT_EQ(c.deadline_dropped[kB], 1u);
    EXPECT_EQ(c.dispatched[kB], 0u);
    EXPECT_EQ(c.codel_dropped[kB], 0u);
    // A deadline miss is not served traffic: it must not arm the CoDel
    // above-target tracking even though its sojourn exceeded target.
    EXPECT_EQ(q.codel_state().first_above_us, 0u);
}

TEST(Deadline, BoundaryIsInclusive) {
    auto clk = std::make_shared<ManualClock>();
    clk->set_us(1'000);
    IntQueue q(16, AdmissionConfig{}, clk);
    push_ok(q, 1, Priority::Interactive, 2'000);
    clk->set_us(2'000);  // now == deadline: still within the SLO
    const PopResult r = pop_now(q);
    ASSERT_TRUE(r.admitted);
    EXPECT_EQ(r.out.value, 1);
    EXPECT_TRUE(r.drops.empty());
}

TEST(Deadline, MixedHeadDrainsExpiredThenAdmitsLive) {
    auto clk = std::make_shared<ManualClock>();
    clk->set_us(1'000);
    IntQueue q(16, AdmissionConfig{}, clk);
    push_ok(q, 90, Priority::Interactive, 1'200);
    push_ok(q, 91, Priority::Interactive, 1'300);
    push_ok(q, 1, Priority::Interactive);  // no deadline
    clk->set_us(5'000);
    const PopResult r = pop_now(q);
    ASSERT_TRUE(r.admitted);
    EXPECT_EQ(r.out.value, 1);
    ASSERT_EQ(r.drops.size(), 2u);
    EXPECT_EQ(r.drops[0].value, 90);
    EXPECT_EQ(r.drops[1].value, 91);
}

// ---- queue lifecycle --------------------------------------------------------

TEST(AdmissionLifecycle, CloseDrainsAcceptedThenReportsTerminalFalse) {
    auto clk = std::make_shared<ManualClock>();
    IntQueue q(8, AdmissionConfig{}, clk);
    for (int i = 0; i < 3; ++i) push_ok(q, i);
    q.close();
    int rejected = 99;
    EXPECT_EQ(q.try_push(rejected, Priority::Interactive), IntQueue::Push::Closed);
    EXPECT_FALSE(q.push(rejected, Priority::Interactive));
    for (int i = 0; i < 3; ++i) {
        const PopResult r = pop_now(q);
        ASSERT_TRUE(r.admitted);
        EXPECT_EQ(r.out.value, i);
    }
    PopResult done = pop_now(q);
    EXPECT_FALSE(done.admitted);
    EXPECT_TRUE(done.drops.empty());  // terminal: closed and drained
    Admitted<int> out;
    std::vector<Dropped<int>> drops;
    EXPECT_FALSE(q.pop(out, drops));  // blocking pop agrees, without blocking
}

// ---- collect_admitted -------------------------------------------------------

TEST(CollectAdmitted, DeliversTrailingDropsOnDrain) {
    auto clk = std::make_shared<ManualClock>();
    clk->set_us(1'000);
    IntQueue q(8, AdmissionConfig{}, clk);
    push_ok(q, 90, Priority::Interactive, 1'100);
    push_ok(q, 91, Priority::Interactive, 1'100);
    clk->set_us(2'000);
    q.close();

    std::vector<int> dropped;
    std::vector<Admitted<int>> out;
    const serve::BatchPolicy policy{4, 0};
    const bool alive = serve::collect_admitted(
        q, policy, out, [&](Dropped<int>&& d) { dropped.push_back(d.value); });
    // The collect ends the drain (false) — but both expired entries were
    // still surfaced through the drop sink, never silently discarded.
    EXPECT_FALSE(alive);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(dropped, (std::vector<int>{90, 91}));
}

TEST(CollectAdmitted, CoalescesPastDropsWithinOneBatch) {
    auto clk = std::make_shared<ManualClock>();
    clk->set_us(1'000);
    IntQueue q(8, AdmissionConfig{}, clk);
    push_ok(q, 1, Priority::Interactive);
    push_ok(q, 90, Priority::Interactive, 1'100);  // will expire
    push_ok(q, 2, Priority::Interactive);
    clk->set_us(2'000);

    std::vector<int> dropped;
    std::vector<Admitted<int>> out;
    const serve::BatchPolicy policy{3, 1'000};
    ASSERT_TRUE(serve::collect_admitted(
        q, policy, out, [&](Dropped<int>&& d) { dropped.push_back(d.value); }));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].value, 1);
    EXPECT_EQ(out[1].value, 2);
    EXPECT_EQ(dropped, (std::vector<int>{90}));
}

// ---- Server integration (ManualClock end-to-end) ----------------------------

namespace {

std::shared_ptr<const runtime::CompiledModel> make_model() {
    runtime::ModelSpec spec;
    spec.input(1, 12, 12).hidden_layers({40}).output_classes(10);
    return runtime::CompiledModel::compile(spec,
                                           runtime::BackendKind::LoihiSim);
}

data::Dataset make_images(std::size_t n) {
    data::GenOptions gen;
    gen.count = n;
    gen.seed = 21;
    gen.height = 12;
    gen.width = 12;
    return data::make_digits(gen);
}

}  // namespace

TEST(ServerAdmission, ExpiredDeadlineResolvesRejectedWithoutASessionSlot) {
    auto clk = std::make_shared<ManualClock>();
    clk->set_us(1'000);
    serve::ServerOptions opt;
    opt.workers = 1;
    opt.clock = clk;
    serve::Server server(make_model(), opt);  // not started: queue absorbs

    const auto images = make_images(4);
    std::vector<serve::InferenceHandle> doomed;
    serve::SubmitOptions sub;
    sub.deadline_us = 500;  // absolute deadline 1500 on the manual clock
    for (int i = 0; i < 3; ++i)
        doomed.push_back(server.submit(images.samples[0].image, sub));
    clk->set_us(10'000);  // all three SLOs are now long gone
    server.start();

    for (auto& h : doomed) {
        serve::InferenceResult r = h.get();
        EXPECT_EQ(r.status, serve::Status::Rejected);
        EXPECT_EQ(r.reject, serve::RejectReason::DeadlineExceeded);
        EXPECT_EQ(r.sojourn_us, 9'000.0);
    }
    // The pool is still healthy: live traffic flows normally.
    serve::InferenceResult ok = server.submit(images.samples[1].image).get();
    EXPECT_EQ(ok.status, serve::Status::Ok);
    server.shutdown();

    const serve::ServerStats s = server.stats();
    EXPECT_EQ(s.accepted, 4u);
    EXPECT_EQ(s.completed, 1u);
    EXPECT_EQ(s.deadline_dropped, 3u);
    EXPECT_EQ(s.class_deadline_dropped[kI], 3u);
    EXPECT_EQ(s.codel_dropped, 0u);
    EXPECT_EQ(s.errors, 0u);
}

TEST(ServerAdmission, PriorityClassRoundTripsIntoResultAndStats) {
    serve::ServerOptions opt;
    opt.workers = 1;
    opt.admission.feedback_capacity = 8;
    serve::Server server(make_model(), opt);
    server.start();
    const auto images = make_images(2);

    serve::SubmitOptions batch_cls;
    batch_cls.priority = Priority::Batch;
    serve::InferenceResult r = server.submit(images.samples[0].image, batch_cls).get();
    EXPECT_EQ(r.status, serve::Status::Ok);
    EXPECT_EQ(r.priority, Priority::Batch);
    EXPECT_GE(r.latency_us, r.sojourn_us);

    ASSERT_TRUE(server.submit_feedback(images.samples[1].image, 3));
    server.shutdown();

    const serve::ServerStats s = server.stats();
    EXPECT_EQ(s.class_accepted[kB], 1u);
    EXPECT_EQ(s.class_accepted[kF], 1u);  // feedback rides the Feedback class
    EXPECT_EQ(s.class_codel_dropped[kB], 0u);
    EXPECT_EQ(s.drop_state_entries, 0u);
}

TEST(ServerAdmission, NoDropAdmissionIsBitIdenticalToDefaultServerAndSession) {
    const auto model = make_model();
    const auto data = make_images(24);

    // Ground truth: plain sequential Session inference.
    std::vector<std::size_t> expected;
    {
        auto session = model->open_session();
        for (const auto& s : data.samples)
            expected.push_back(session->predict(s.image));
    }

    // Admission fully enabled, but nothing ever crosses the (generous)
    // CoDel target and no deadlines are set — so no drops occur, and every
    // accepted result must be bit-identical to the admission-free path.
    serve::ServerOptions opt;
    opt.workers = 3;
    opt.admission.codel.enabled = true;
    opt.admission.codel.target_us = 10'000'000;
    opt.admission.codel.interval_us = 1'000'000;
    opt.admission.weights = {4, 2, 1};
    serve::Server server(model, opt);
    server.start();

    std::vector<serve::InferenceHandle> handles;
    for (std::size_t i = 0; i < data.samples.size(); ++i) {
        serve::SubmitOptions sub;
        sub.priority = (i % 2 == 0) ? Priority::Interactive : Priority::Batch;
        handles.push_back(server.submit(data.samples[i].image, sub));
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
        serve::InferenceResult r = handles[i].get();
        ASSERT_EQ(r.status, serve::Status::Ok);
        EXPECT_EQ(r.label, expected[i]) << "image " << i;
    }
    server.shutdown();

    const serve::ServerStats s = server.stats();
    EXPECT_EQ(s.codel_dropped, 0u);
    EXPECT_EQ(s.deadline_dropped, 0u);
    EXPECT_EQ(s.drop_state_entries, 0u);
    EXPECT_EQ(s.class_accepted[kI] + s.class_accepted[kB],
              data.samples.size());
}
