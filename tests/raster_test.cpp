// Unit tests for the software rasterizer behind the synthetic dataset
// generators: primitive coverage, affine warps, blur and noise processes.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "data/raster.hpp"

using neuro::data::Canvas;
using neuro::common::Rng;

namespace {

float total(const Canvas& c) {
    float s = 0.0f;
    for (std::size_t y = 0; y < c.height(); ++y)
        for (std::size_t x = 0; x < c.width(); ++x) s += c.at(y, x);
    return s;
}

}  // namespace

TEST(Canvas, StartsBlank) {
    Canvas c(8, 8);
    EXPECT_FLOAT_EQ(total(c), 0.0f);
}

TEST(Canvas, StrokeCoversSegment) {
    Canvas c(16, 16);
    c.stroke(2.0f, 8.0f, 13.0f, 8.0f, 2.0f);
    // Pixels on the segment's spine are fully covered.
    EXPECT_FLOAT_EQ(c.at(8, 5), 1.0f);
    EXPECT_FLOAT_EQ(c.at(8, 10), 1.0f);
    // Far away stays blank.
    EXPECT_FLOAT_EQ(c.at(2, 2), 0.0f);
    EXPECT_FLOAT_EQ(c.at(14, 14), 0.0f);
}

TEST(Canvas, StrokesMaxCombine) {
    Canvas c(16, 16);
    c.stroke(2, 8, 13, 8, 2.0f, 0.5f);
    c.stroke(8, 2, 8, 13, 2.0f, 0.9f);
    // Crossing point takes the maximum, not the sum.
    EXPECT_FLOAT_EQ(c.at(8, 8), 0.9f);
}

TEST(Canvas, FillRectRespectsRotation) {
    Canvas axis(20, 20);
    axis.fill_rect(10, 10, 6, 2, 0.0f);
    EXPECT_FLOAT_EQ(axis.at(10, 5), 1.0f);   // inside along x
    EXPECT_FLOAT_EQ(axis.at(5, 10), 0.0f);   // outside along y

    Canvas rot(20, 20);
    rot.fill_rect(10, 10, 6, 2, static_cast<float>(M_PI / 2));
    EXPECT_FLOAT_EQ(rot.at(5, 10), 1.0f);    // rotated: long axis now vertical
    EXPECT_FLOAT_EQ(rot.at(10, 5), 0.0f);
}

TEST(Canvas, FillEllipseContainment) {
    Canvas c(20, 20);
    c.fill_ellipse(10, 10, 5, 3, 0.0f);
    EXPECT_FLOAT_EQ(c.at(10, 10), 1.0f);
    EXPECT_FLOAT_EQ(c.at(10, 14), 1.0f);  // inside semi-major
    EXPECT_FLOAT_EQ(c.at(16, 10), 0.0f);  // outside semi-minor
}

TEST(Canvas, FillTriangleInterior) {
    Canvas c(20, 20);
    c.fill_triangle(2, 2, 17, 2, 2, 17);
    EXPECT_FLOAT_EQ(c.at(4, 4), 1.0f);
    EXPECT_FLOAT_EQ(c.at(16, 16), 0.0f);
}

TEST(Canvas, IdentityWarpPreservesImage) {
    Canvas c(12, 12);
    c.fill_rect(6, 6, 3, 3, 0.0f);
    const Canvas warped = c.jitter(0.0f, 1.0f, 0.0f, 0.0f);
    for (std::size_t y = 0; y < 12; ++y)
        for (std::size_t x = 0; x < 12; ++x)
            EXPECT_NEAR(warped.at(y, x), c.at(y, x), 1e-5f);
}

TEST(Canvas, TranslationWarpMovesMass) {
    Canvas c(16, 16);
    c.fill_rect(6, 8, 2, 2, 0.0f);
    // jitter's translation is applied in source coordinates; +3 in x shifts
    // the content left by 3, i.e. content at dst x samples src x+3.
    const Canvas moved = c.jitter(0.0f, 1.0f, 3.0f, 0.0f);
    EXPECT_GT(moved.at(8, 3), 0.9f);
    EXPECT_LT(moved.at(8, 10), 0.1f);
}

TEST(Canvas, RotationWarpKeepsTotalMassApprox) {
    Canvas c(24, 24);
    c.fill_ellipse(12, 12, 5, 5, 0.0f);
    const float before = total(c);
    const Canvas rot = c.jitter(0.6f, 1.0f, 0.0f, 0.0f);
    EXPECT_NEAR(total(rot), before, before * 0.05f);
}

TEST(Canvas, BlurConservesInteriorMass) {
    Canvas c(16, 16);
    c.fill_rect(8, 8, 3, 3, 0.0f);
    const float before = total(c);
    c.blur(1);
    // Binomial blur is mass-conserving up to boundary effects (none here).
    EXPECT_NEAR(total(c), before, before * 0.02f);
    // And strictly reduces the peak.
    EXPECT_LT(c.at(8, 8), 1.0f + 1e-6f);
}

TEST(Canvas, NoiseClampsToUnitRange) {
    Canvas c(16, 16);
    c.fill_rect(8, 8, 6, 6, 0.0f);
    Rng rng(5);
    c.add_gaussian_noise(rng, 0.5f);
    for (std::size_t y = 0; y < 16; ++y)
        for (std::size_t x = 0; x < 16; ++x) {
            ASSERT_GE(c.at(y, x), 0.0f);
            ASSERT_LE(c.at(y, x), 1.0f);
        }
}

TEST(Canvas, SpeckleIsMultiplicative) {
    // Zero pixels stay zero under speckle (it multiplies).
    Canvas c(8, 8);
    c.at(3, 3) = 0.5f;
    Rng rng(6);
    c.apply_speckle(rng, 0.9f);
    EXPECT_FLOAT_EQ(c.at(0, 0), 0.0f);
    EXPECT_GE(c.at(3, 3), 0.0f);
}
