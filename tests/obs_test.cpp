// Contract tests for neuro::obs (docs/ARCHITECTURE.md §14):
//   * Timer — zero accumulation while disabled, stop() flush + disarm,
//     nesting and shared-sink addition,
//   * TraceContext — span telescoping (queue+batch+compute+resolve ==
//     total) and saturating deltas,
//   * Registry — get-or-create stability, cross-thread counter shard
//     aggregation (run under TSan in CI), histogram bucket edges, the
//     Prometheus exposition format (sorted families, _total suffix,
//     cumulative le buckets, collector output, "# EOF" terminator),
//   * FlightRecorder — ordering, wraparound, detail truncation, the
//     events JSON, and concurrent writers against a snapshotting reader.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

using namespace neuro;

namespace {

/// set_timing is process-global; every test that flips it restores the
/// disabled default so suites stay order-independent.
struct TimingGuard {
    explicit TimingGuard(bool on) { obs::set_timing(on); }
    ~TimingGuard() { obs::set_timing(false); }
};

}  // namespace

// ---- Timer ------------------------------------------------------------------

TEST(Timer, DisabledTimerNeverTouchesTheSink) {
    TimingGuard g(false);
    std::uint64_t sink = 0;
    {
        obs::Timer t(sink);
        volatile int spin = 0;
        for (int i = 0; i < 1000; ++i) spin = spin + i;
    }
    EXPECT_EQ(sink, 0u);
}

TEST(Timer, EnabledTimerAccumulatesElapsedNanoseconds) {
    TimingGuard g(true);
    std::uint64_t sink = 0;
    {
        obs::Timer t(sink);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // Slept ~2ms; any positive accumulation proves the clock was read.
    EXPECT_GT(sink, 0u);
}

TEST(Timer, StopFlushesOnceAndDisarms) {
    TimingGuard g(true);
    std::uint64_t sink = 0;
    obs::Timer t(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    t.stop();
    const std::uint64_t after_stop = sink;
    EXPECT_GT(after_stop, 0u);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    t.stop();  // idempotent: no second flush
    EXPECT_EQ(sink, after_stop);
}

TEST(Timer, SiblingScopesSharingASinkAdd) {
    TimingGuard g(true);
    std::uint64_t sink = 0;
    {
        obs::Timer a(sink);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const std::uint64_t first = sink;
    {
        obs::Timer b(sink);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GT(sink, first);
}

TEST(Timer, NestedScopesAccumulateIntoTheirOwnSinks) {
    TimingGuard g(true);
    std::uint64_t outer = 0;
    std::uint64_t inner = 0;
    {
        obs::Timer a(outer);
        {
            obs::Timer b(inner);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GT(inner, 0u);
    // The outer scope covers the inner one plus its own tail.
    EXPECT_GE(outer, inner);
}

TEST(Timer, FlipMidScopeKeepsTheStartingPolicy) {
    // A scope opened while timing is off stays off even if the switch
    // flips before it closes (the constructor decided).
    std::uint64_t sink = 0;
    obs::set_timing(false);
    {
        obs::Timer t(sink);
        obs::set_timing(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    obs::set_timing(false);
    EXPECT_EQ(sink, 0u);
}

// ---- TraceContext -----------------------------------------------------------

TEST(TraceContext, SpansTelescopeToTotal) {
    obs::TraceContext t;
    t.enabled = true;
    t.t_intake_us = 100;
    t.t_dequeue_us = 180;
    t.t_dispatch_us = 250;
    t.t_compute_done_us = 1300;
    t.t_complete_us = 1320;
    EXPECT_EQ(t.queue_us(), 80u);
    EXPECT_EQ(t.batch_us(), 70u);
    EXPECT_EQ(t.compute_us(), 1050u);
    EXPECT_EQ(t.resolve_us(), 20u);
    EXPECT_EQ(t.queue_us() + t.batch_us() + t.compute_us() + t.resolve_us(),
              t.total_us());
}

TEST(TraceContext, DeltasSaturateAtZeroOnClockCoarseness) {
    // A coarse clock can stamp equal (or, through saturation math, even
    // out-of-order-looking) values; spans must never underflow.
    EXPECT_EQ(obs::TraceContext::delta(50, 50), 0u);
    EXPECT_EQ(obs::TraceContext::delta(60, 50), 0u);
    obs::TraceContext t;
    EXPECT_EQ(t.total_us(), 0u);
}

TEST(TraceContext, SpanIdNamesAreStable) {
    EXPECT_STREQ(obs::to_string(obs::SpanId::QueueUs), "queue_us");
    EXPECT_STREQ(obs::to_string(obs::SpanId::ComputeUs), "compute_us");
    EXPECT_STREQ(obs::to_string(obs::SpanId::KernelSweepNs),
                 "kernel_sweep_ns");
    EXPECT_STREQ(obs::to_string(obs::SpanId::TotalUs), "total_us");
}

// ---- Registry ---------------------------------------------------------------

TEST(Registry, CounterAggregatesAcrossThreads) {
    obs::Registry reg;
    obs::Counter& c = reg.counter("neuro_test_ops", "test counter");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10'000;
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&c] {
            for (int j = 0; j < kPerThread; ++j) c.inc();
        });
    for (auto& t : threads) t.join();
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Registry, GetOrCreateReturnsTheSameInstrument) {
    obs::Registry reg;
    obs::Counter& a = reg.counter("neuro_test_ops", "help");
    obs::Counter& b = reg.counter("neuro_test_ops", "ignored second help");
    EXPECT_EQ(&a, &b);
    obs::Counter& labeled =
        reg.counter("neuro_test_ops", "help", "{model=\"m0\"}");
    EXPECT_NE(&a, &labeled);
}

TEST(Registry, KindMismatchThrows) {
    obs::Registry reg;
    reg.counter("neuro_test_metric", "as counter");
    EXPECT_THROW(reg.gauge("neuro_test_metric", "as gauge"),
                 std::invalid_argument);
    EXPECT_THROW(reg.histogram("neuro_test_metric", "as histogram"),
                 std::invalid_argument);
}

TEST(Registry, HistogramBucketEdgesArePowersOfTwo) {
    obs::Histogram h;
    h.record_us(0);    // <= 1us -> bucket 0
    h.record_us(1);    // edge: le="1" is inclusive
    h.record_us(2);    // bucket 1
    h.record_us(3);    // bucket 2 (le 4)
    h.record_us(1u << 25);            // last finite bucket
    h.record_us((1u << 25) + 1);      // +Inf
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(obs::Histogram::kBuckets - 1), 1u);
    EXPECT_EQ(h.bucket(obs::Histogram::kBuckets), 1u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.sum_us(), 0u + 1 + 2 + 3 + (1u << 25) + (1u << 25) + 1);
    EXPECT_EQ(obs::Histogram::upper_edge_us(0), 1u);
    EXPECT_EQ(obs::Histogram::upper_edge_us(10), 1024u);
}

TEST(Registry, ExposeEmitsPrometheusTextSortedWithEofTerminator) {
    obs::Registry reg;
    reg.counter("neuro_zeta_ops", "last family").inc(3);
    reg.counter("neuro_alpha_ops", "first family").inc(7);
    reg.gauge("neuro_mid_depth", "a gauge").set(-4);
    reg.histogram("neuro_lat_us", "a histogram").record_us(3);

    const std::string text = reg.expose();
    // Counters get the _total suffix; families sort by name.
    const auto alpha = text.find("neuro_alpha_ops_total 7\n");
    const auto zeta = text.find("neuro_zeta_ops_total 3\n");
    ASSERT_NE(alpha, std::string::npos) << text;
    ASSERT_NE(zeta, std::string::npos) << text;
    EXPECT_LT(alpha, zeta);
    EXPECT_NE(text.find("# HELP neuro_alpha_ops_total first family\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE neuro_alpha_ops_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("neuro_mid_depth -4\n"), std::string::npos);
    // Cumulative le buckets: a 3us sample lands in le="4" and above.
    EXPECT_NE(text.find("neuro_lat_us_bucket{le=\"2\"} 0\n"),
              std::string::npos);
    EXPECT_NE(text.find("neuro_lat_us_bucket{le=\"4\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("neuro_lat_us_bucket{le=\"+Inf\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("neuro_lat_us_sum 3\n"), std::string::npos);
    EXPECT_NE(text.find("neuro_lat_us_count 1\n"), std::string::npos);
    // The control-socket framing contract: text ends with a "# EOF" line.
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(Registry, CollectorsAppendBeforeTheTerminator) {
    obs::Registry reg;
    reg.add_collector([](std::string& out) {
        obs::append_help_type(out, "neuro_bridge_total", "counter",
                              "scrape-time bridge");
        obs::append_sample(out, "neuro_bridge_total",
                           "{model=\"m0\"}", std::uint64_t{42});
    });
    const std::string text = reg.expose();
    const auto bridge = text.find("neuro_bridge_total{model=\"m0\"} 42\n");
    ASSERT_NE(bridge, std::string::npos) << text;
    EXPECT_LT(bridge, text.rfind("# EOF\n"));
}

TEST(Registry, LabeledSeriesExposeWithinOneFamily) {
    obs::Registry reg;
    reg.counter("neuro_model_hits", "per-model", "{model=\"a\"}").inc(1);
    reg.counter("neuro_model_hits", "per-model", "{model=\"b\"}").inc(2);
    const std::string text = reg.expose();
    EXPECT_NE(text.find("neuro_model_hits_total{model=\"a\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("neuro_model_hits_total{model=\"b\"} 2\n"),
              std::string::npos);
    // One family header, two series.
    EXPECT_EQ(text.find("# TYPE neuro_model_hits_total counter"),
              text.rfind("# TYPE neuro_model_hits_total counter"));
}

// ---- FlightRecorder ---------------------------------------------------------

TEST(FlightRecorder, RecordsInOrderOldestFirst) {
    obs::FlightRecorder rec(16);
    for (std::uint64_t i = 0; i < 5; ++i)
        rec.record(obs::EventKind::ModelLoad, 100 + i, "m" + std::to_string(i),
                   i, 0);
    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(events[i].t_us, 100 + i);
        EXPECT_EQ(events[i].a, i);
        EXPECT_EQ(events[i].detail_str(), "m" + std::to_string(i));
        EXPECT_EQ(events[i].kind, obs::EventKind::ModelLoad);
    }
    EXPECT_EQ(rec.total_recorded(), 5u);
}

TEST(FlightRecorder, WraparoundKeepsTheMostRecentCapacityEvents) {
    obs::FlightRecorder rec(8);  // power of two already
    ASSERT_EQ(rec.capacity(), 8u);
    for (std::uint64_t i = 0; i < 20; ++i)
        rec.record(obs::EventKind::CoDelDrop, i, "d", i, 0);
    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 8u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].a, 12 + i);  // tickets 12..19 survive
    EXPECT_EQ(rec.total_recorded(), 20u);
}

TEST(FlightRecorder, SnapshotMaxNReturnsTheNewestSuffix) {
    obs::FlightRecorder rec(32);
    for (std::uint64_t i = 0; i < 10; ++i)
        rec.record(obs::EventKind::Eviction, i, "e", i, 0);
    const auto events = rec.snapshot(3);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].a, 7u);
    EXPECT_EQ(events[2].a, 9u);
}

TEST(FlightRecorder, CapacityRoundsUpToAPowerOfTwo) {
    obs::FlightRecorder rec(100);
    EXPECT_EQ(rec.capacity(), 128u);
    obs::FlightRecorder tiny(1);
    EXPECT_EQ(tiny.capacity(), 8u);  // floor
}

TEST(FlightRecorder, DetailTruncatesToThirtyNineBytesPlusNul) {
    obs::Event e;
    const std::string long_name(64, 'x');
    e.set_detail(long_name);
    EXPECT_EQ(std::strlen(e.detail), sizeof e.detail - 1);
    EXPECT_EQ(e.detail_str(), std::string(sizeof e.detail - 1, 'x'));
    e.set_detail("short");
    EXPECT_EQ(e.detail_str(), "short");
}

TEST(FlightRecorder, SlowRequestSpansSurviveTheRing) {
    obs::FlightRecorder rec(8);
    obs::Event e;
    e.kind = obs::EventKind::SlowRequest;
    e.t_us = 777;
    e.a = 42;       // request_id
    e.b = 125'000;  // latency_us
    for (std::size_t i = 0; i < e.spans.size(); ++i)
        e.spans[i] = 10 * (i + 1);
    e.set_detail("modelA");
    rec.record(e);
    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].spans, e.spans);
    EXPECT_EQ(events[0].detail_str(), "modelA");
}

TEST(FlightRecorder, EventsJsonCarriesKindsDetailsAndSpans) {
    obs::FlightRecorder rec(8);
    rec.record(obs::EventKind::Eviction, 5, "victim", 4096, 2);
    obs::Event slow;
    slow.kind = obs::EventKind::SlowRequest;
    slow.t_us = 9;
    slow.a = 1;
    slow.b = 200'000;
    slow.spans[0] = 11;  // queue_us
    slow.spans[6] = 77;  // total_us
    slow.set_detail("m0");
    rec.record(slow);
    const std::string json = obs::events_to_json(rec.snapshot());
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    EXPECT_NE(json.find("\"kind\":\"eviction\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"detail\":\"victim\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"slow_request\""), std::string::npos);
    EXPECT_NE(json.find("\"queue_us\":11"), std::string::npos);
    EXPECT_NE(json.find("\"total_us\":77"), std::string::npos);
    // Non-slow events carry no spans object.
    const auto eviction = json.find("\"kind\":\"eviction\"");
    const auto spans = json.find("\"spans\"");
    ASSERT_NE(spans, std::string::npos);
    EXPECT_GT(spans, eviction);
    EXPECT_EQ(obs::events_to_json({}), "[]");
}

TEST(FlightRecorder, ConcurrentWritersNeverBlockOrTearTheReader) {
    obs::FlightRecorder rec(64);
    constexpr int kWriters = 4;
    constexpr std::uint64_t kPerWriter = 5'000;
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_acquire)) {
            // Every surviving event must be internally consistent: the
            // a-word always equals the t_us stamp in this workload, so a
            // torn slot would be visible immediately.
            for (const auto& e : rec.snapshot())
                ASSERT_EQ(e.a, e.t_us);
        }
    });
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&rec, w] {
            for (std::uint64_t i = 0; i < kPerWriter; ++i) {
                const std::uint64_t stamp = w * kPerWriter + i;
                rec.record(obs::EventKind::ConnError, stamp, "fd", stamp, 0);
            }
        });
    for (auto& t : writers) t.join();
    stop.store(true, std::memory_order_release);
    reader.join();
    EXPECT_EQ(rec.total_recorded(), kWriters * kPerWriter);
    EXPECT_EQ(rec.snapshot().size(), rec.capacity());
}
