// Tests for the terminal plotting used by the figure benches (src/viz):
// deterministic geometry, marker placement, range handling, legends, and the
// spike raster's bucketing.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "viz/chart.hpp"

using namespace neuro::viz;

namespace {

/// Splits chart output into lines for structural assertions.
std::vector<std::string> lines_of(const std::string& s) {
    std::vector<std::string> out;
    std::istringstream in(s);
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
}

/// Plot row index (within the chart body) of the first occurrence of `mark`.
std::size_t first_mark_row(const std::vector<std::string>& lines, char mark) {
    for (std::size_t r = 0; r < lines.size(); ++r)
        if (lines[r].find(mark) != std::string::npos) return r;
    return static_cast<std::size_t>(-1);
}

}  // namespace

TEST(LineChart, HasExpectedGeometry) {
    ChartOptions opt;
    opt.width = 40;
    opt.height = 10;
    const auto chart =
        line_chart({0, 1, 2, 3}, {{"a", {1, 2, 3, 4}}}, opt);
    const auto lines = lines_of(chart);
    // 10 plot rows + x-axis + x-tick row + legend.
    ASSERT_EQ(lines.size(), 13u);
    for (std::size_t r = 0; r < 10; ++r) {
        EXPECT_EQ(lines[r].size(), 9 + 2 + 40) << "row " << r;
        EXPECT_EQ(lines[r][10], '|');
    }
    EXPECT_NE(lines[10].find(std::string(40, '-')), std::string::npos);
    EXPECT_NE(lines.back().find("legend:  * a"), std::string::npos);
}

TEST(LineChart, RisingSeriesRisesAcrossTheCanvas) {
    ChartOptions opt;
    opt.width = 32;
    opt.height = 8;
    const auto lines = lines_of(line_chart({0, 1}, {{"up", {0, 1}}}, opt));
    // First column marker near the bottom row, last column near the top.
    EXPECT_EQ(lines[0].back(), '*');            // top-right
    EXPECT_EQ(lines[7][11], '*');               // bottom-left (gutter is 11 cols)
}

TEST(LineChart, TwoSeriesGetDistinctMarkers) {
    const auto chart = line_chart(
        {0, 1, 2}, {{"fa", {1, 2, 3}}, {"dfa", {3, 2, 1}}});
    EXPECT_NE(chart.find('*'), std::string::npos);
    EXPECT_NE(chart.find('o'), std::string::npos);
    EXPECT_NE(chart.find("* fa"), std::string::npos);
    EXPECT_NE(chart.find("o dfa"), std::string::npos);
}

TEST(LineChart, FlatSeriesLandsMidWindow) {
    ChartOptions opt;
    opt.width = 16;
    opt.height = 9;
    const auto lines = lines_of(line_chart({0, 1}, {{"flat", {5, 5}}}, opt));
    EXPECT_EQ(first_mark_row(lines, '*'), 4u);  // centre row of 9
}

TEST(LineChart, NanPointsAreSkipped) {
    const double nan = std::nan("");
    const auto chart =
        line_chart({0, 1, 2, 3}, {{"gappy", {1, nan, nan, 2}}});
    // Only the two finite sample markers (no interpolated bridge).
    std::size_t stars = 0;
    for (const char c : chart) stars += c == '*' ? 1 : 0;
    EXPECT_EQ(stars, 3u);  // 2 sample points + 1 in the legend
}

TEST(LineChart, ExplicitRangeClampsOutliers) {
    ChartOptions opt;
    opt.width = 16;
    opt.height = 8;
    opt.y_lo = 0.0;
    opt.y_hi = 1.0;
    const auto lines = lines_of(line_chart({0, 1}, {{"hot", {0.5, 99.0}}}, opt));
    EXPECT_NE(lines[0].find('*'), std::string::npos);  // clamped to top row
}

TEST(LineChart, ValidatesInput) {
    EXPECT_THROW(line_chart({0}, {{"a", {1}}}), std::invalid_argument);
    EXPECT_THROW(line_chart({0, 1}, {}), std::invalid_argument);
    EXPECT_THROW(line_chart({0, 1}, {{"a", {1, 2, 3}}}), std::invalid_argument);
    ChartOptions tiny;
    tiny.width = 2;
    EXPECT_THROW(line_chart({0, 1}, {{"a", {1, 2}}}, tiny),
                 std::invalid_argument);
}

TEST(LineChart, IsDeterministic) {
    const std::vector<double> x = {0, 1, 2, 3, 4};
    const std::vector<Series> s = {{"e", {5, 3, 2, 3, 6}}};
    EXPECT_EQ(line_chart(x, s), line_chart(x, s));
}

TEST(SpikeRaster, BucketsEventsAndScalesDensity) {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> ev;
    // Neuron 0 fires every step (dense); neuron 7 fires once.
    for (std::uint64_t t = 0; t < 64; ++t) ev.push_back({t, 0});
    ev.push_back({32, 7});
    const auto raster = spike_raster(ev, 64, 8, 16, 8);
    const auto lines = lines_of(raster);
    ASSERT_GE(lines.size(), 9u);
    // Row of neuron 0 is saturated '#', row of neuron 7 has one light mark.
    EXPECT_NE(lines[1].find('#'), std::string::npos);
    EXPECT_NE(lines[8].find('|'), std::string::npos);
    EXPECT_EQ(lines[8].find('#'), std::string::npos);
}

TEST(SpikeRaster, SilenceIsDots) {
    const auto raster = spike_raster({}, 10, 4, 10, 4);
    for (const auto& line : lines_of(raster))
        EXPECT_EQ(line.find('#'), std::string::npos);
}

TEST(SpikeRaster, ValidatesExtent) {
    EXPECT_THROW(spike_raster({}, 0, 4), std::invalid_argument);
    EXPECT_THROW(spike_raster({{5, 0}}, 4, 4), std::out_of_range);
    EXPECT_THROW(spike_raster({{0, 9}}, 4, 4), std::out_of_range);
}
