// Unit tests for the header-only bench helpers (bench/bench_util.hpp),
// primarily JsonWriter: emitted files must be valid JSON whatever the cell
// contents — quotes, backslashes, control characters — and numeric cells
// must pass through as JSON numbers.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "bench/bench_util.hpp"

using neuro::bench::JsonWriter;

namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

struct TempDir {
    std::string path = "bench_util_test_out";
    ~TempDir() { std::filesystem::remove_all(path); }
};

}  // namespace

TEST(JsonWriter, EscapesQuotesBackslashesAndControlCharacters) {
    TempDir tmp;
    JsonWriter json(tmp.path, "escapes", {"name \"quoted\"", "value"});
    json.add_row({std::string("back\\slash \"q\" tab\t newline\n bell\x07"),
                  "plain"});
    const auto path = json.write();

    const std::string text = slurp(path);
    EXPECT_EQ(text,
              "[\n"
              "  {\"name \\\"quoted\\\"\": "
              "\"back\\\\slash \\\"q\\\" tab\\t newline\\n bell\\u0007\", "
              "\"value\": \"plain\"}\n"
              "]\n");
}

TEST(JsonWriter, NumericCellsPassThroughAsJsonNumbers) {
    TempDir tmp;
    JsonWriter json(tmp.path, "numbers", {"a", "b", "c", "d"});
    json.add_row({"42", "-3.5", "1e-9", "0"});
    const std::string text = slurp(json.write());
    EXPECT_EQ(text,
              "[\n"
              "  {\"a\": 42, \"b\": -3.5, \"c\": 1e-9, \"d\": 0}\n"
              "]\n");
}

TEST(JsonWriter, NumberLookalikesAreQuotedStrings) {
    TempDir tmp;
    // Not valid JSON numbers: leading zeros, bare dot/sign, hex, inf/nan,
    // trailing garbage — all must emit as strings, never as raw tokens.
    JsonWriter json(tmp.path, "lookalikes", {"k"});
    for (const char* cell :
         {"007", ".5", "+1", "-", "0x1F", "inf", "nan", "1.", "1e", "3 "})
        json.add_row({cell});
    const std::string text = slurp(json.write());
    for (const char* cell : {"\"007\"", "\".5\"", "\"+1\"", "\"-\"", "\"0x1F\"",
                             "\"inf\"", "\"nan\"", "\"1.\"", "\"1e\"", "\"3 \""})
        EXPECT_NE(text.find(cell), std::string::npos) << cell;
}

TEST(JsonWriter, RowWidthMismatchThrows) {
    JsonWriter json("unused", "x", {"a", "b"});
    EXPECT_THROW(json.add_row({"only-one"}), std::invalid_argument);
}

TEST(JsonWriter, MultipleRowsFormAnArray) {
    TempDir tmp;
    JsonWriter json(tmp.path, "rows", {"config", "rate"});
    json.add_row({"serial", "10.5"});
    json.add_row({"parallel", "21.0"});
    const std::string text = slurp(json.write());
    EXPECT_EQ(text,
              "[\n"
              "  {\"config\": \"serial\", \"rate\": 10.5},\n"
              "  {\"config\": \"parallel\", \"rate\": 21.0}\n"
              "]\n");
}
