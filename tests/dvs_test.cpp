// Tests for the synthetic DVS substrate (src/dvs): generator determinism and
// geometry, address-event validity, class-conditional motion statistics,
// event sparsity (the property the paper's intro motivates), frame
// accumulation and event-by-event chip injection.

#include <gtest/gtest.h>

#include <cmath>

#include "dvs/events.hpp"

using namespace neuro;
using namespace neuro::dvs;

namespace {

GestureOptions small_opts(std::size_t count = 24) {
    GestureOptions opt;
    opt.count = count;
    opt.width = 16;
    opt.height = 16;
    opt.duration = 48;
    opt.seed = 3;
    return opt;
}

/// Mean event position over a time slice [t0, t1).
std::pair<double, double> centroid(const EventStream& s, std::uint32_t t0,
                                   std::uint32_t t1) {
    double sx = 0, sy = 0;
    std::size_t n = 0;
    for (const auto& e : s.events) {
        if (e.t < t0 || e.t >= t1) continue;
        sx += e.x;
        sy += e.y;
        ++n;
    }
    return {sx / static_cast<double>(n), sy / static_cast<double>(n)};
}

}  // namespace

TEST(DvsGenerator, IsDeterministicInTheSeed) {
    const auto a = make_gestures(small_opts());
    const auto b = make_gestures(small_opts());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.streams[i].label, b.streams[i].label);
        EXPECT_EQ(a.streams[i].events, b.streams[i].events);
    }
    auto opt = small_opts();
    opt.seed = 4;
    const auto c = make_gestures(opt);
    EXPECT_NE(a.streams[0].events, c.streams[0].events);
}

TEST(DvsGenerator, LabelsAreBalancedAcrossClasses) {
    auto opt = small_opts(60);
    opt.classes = 6;
    const auto ds = make_gestures(opt);
    std::vector<std::size_t> per_class(6, 0);
    for (const auto& s : ds.streams) ++per_class.at(s.label);
    for (const auto n : per_class) EXPECT_EQ(n, 10u);
}

TEST(DvsGenerator, RejectsBadOptions) {
    auto opt = small_opts();
    opt.classes = 0;
    EXPECT_THROW(make_gestures(opt), std::invalid_argument);
    opt = small_opts();
    opt.classes = 7;
    EXPECT_THROW(make_gestures(opt), std::invalid_argument);
    opt = small_opts();
    opt.width = 2;
    EXPECT_THROW(make_gestures(opt), std::invalid_argument);
    opt = small_opts();
    opt.duration = 1;
    EXPECT_THROW(make_gestures(opt), std::invalid_argument);
}

TEST(DvsGenerator, EventsAreTimeOrderedAndInBounds) {
    const auto ds = make_gestures(small_opts());
    for (const auto& s : ds.streams) {
        ASSERT_FALSE(s.events.empty());
        std::uint32_t prev_t = 0;
        for (const auto& e : s.events) {
            EXPECT_GE(e.t, prev_t);
            EXPECT_LT(e.t, ds.duration);
            EXPECT_LT(e.x, ds.width);
            EXPECT_LT(e.y, ds.height);
            prev_t = e.t;
        }
    }
}

TEST(DvsGenerator, OutputIsSparse) {
    // The paper's premise: DVS output is sparse by nature. A full frame
    // stream would be pixels * duration "events"; the sensor emits a small
    // fraction of that.
    const auto ds = make_gestures(small_opts());
    for (const auto& s : ds.streams) {
        const double dense =
            static_cast<double>(ds.pixels()) * static_cast<double>(ds.duration);
        EXPECT_LT(static_cast<double>(s.events.size()), 0.25 * dense);
    }
}

TEST(DvsGenerator, LeadingEdgeIsOnTrailingEdgeIsOff) {
    // For a left-to-right sweep the brightening (ON) edge sits ahead of the
    // darkening (OFF) edge at all times.
    auto opt = small_opts(12);
    opt.classes = 1;  // SweepRight only
    opt.noise_rate = 0.0;
    const auto ds = make_gestures(opt);
    for (const auto& s : ds.streams) {
        double on_x = 0, off_x = 0;
        std::size_t n_on = 0, n_off = 0;
        for (const auto& e : s.events) {
            if (e.on) {
                on_x += e.x;
                ++n_on;
            } else {
                off_x += e.x;
                ++n_off;
            }
        }
        ASSERT_GT(n_on, 0u);
        ASSERT_GT(n_off, 0u);
        EXPECT_GT(on_x / static_cast<double>(n_on),
                  off_x / static_cast<double>(n_off));
    }
}

// ---- per-class motion statistics ---------------------------------------------

struct SweepCase {
    Gesture g;
    int dx;  ///< expected sign of centroid x drift
    int dy;  ///< expected sign of centroid y drift
};

class DvsMotionTest : public testing::TestWithParam<SweepCase> {};

TEST_P(DvsMotionTest, CentroidDriftsAlongTheSweepAxis) {
    const auto [g, dx, dy] = GetParam();
    GestureOptions opt = small_opts(6 * 4);
    opt.classes = 6;
    opt.noise_rate = 0.0;
    const auto ds = make_gestures(opt);
    for (const auto& s : ds.streams) {
        if (s.label != static_cast<std::size_t>(g)) continue;
        const auto early = centroid(s, 0, ds.duration / 3);
        const auto late = centroid(s, 2 * ds.duration / 3, ds.duration);
        if (dx != 0) {
            EXPECT_GT(dx * (late.first - early.first), 2.0)
                << "gesture " << static_cast<int>(g);
        }
        if (dy != 0) {
            EXPECT_GT(dy * (late.second - early.second), 2.0)
                << "gesture " << static_cast<int>(g);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, DvsMotionTest,
    testing::Values(SweepCase{Gesture::SweepRight, +1, 0},
                    SweepCase{Gesture::SweepLeft, -1, 0},
                    SweepCase{Gesture::SweepDown, 0, +1},
                    SweepCase{Gesture::SweepUp, 0, -1}));

TEST(DvsMotionTest, RotationsStayCentredWhileSweepsTraverse) {
    // The rotating-bar classes pivot about the sensor centre: their event
    // centroid must hover near the middle for the whole recording, unlike
    // the sweeps, whose centroid crosses the field.
    GestureOptions opt = small_opts(12);
    opt.classes = 6;
    opt.noise_rate = 0.0;
    const auto ds = make_gestures(opt);
    const double cx = static_cast<double>(ds.width - 1) / 2.0;
    const double cy = static_cast<double>(ds.height - 1) / 2.0;
    for (const auto& s : ds.streams) {
        const bool rotation = s.label >= 4;  // RotateCw, RotateCcw
        double worst = 0.0;
        for (std::uint32_t t0 = 0; t0 + 8 <= ds.duration; t0 += 8) {
            // A sweep that reached the border stops producing events; skip
            // empty windows instead of dividing by zero.
            std::size_t n = 0;
            double sx = 0, sy = 0;
            for (const auto& e : s.events) {
                if (e.t < t0 || e.t >= t0 + 8) continue;
                sx += e.x;
                sy += e.y;
                ++n;
            }
            if (n == 0) continue;
            const double d = std::hypot(sx / static_cast<double>(n) - cx,
                                        sy / static_cast<double>(n) - cy);
            worst = std::max(worst, d);
        }
        if (rotation)
            EXPECT_LT(worst, 3.0) << "label " << s.label;
        else
            EXPECT_GT(worst, 4.0) << "label " << s.label;
    }
}

TEST(DvsMotionTest, OpposingRotationsProduceDistinctStreams) {
    GestureOptions opt = small_opts(12);
    opt.classes = 6;
    const auto ds = make_gestures(opt);
    const EventStream* cw = nullptr;
    const EventStream* ccw = nullptr;
    for (const auto& s : ds.streams) {
        if (s.label == static_cast<std::size_t>(Gesture::RotateCw) && !cw)
            cw = &s;
        if (s.label == static_cast<std::size_t>(Gesture::RotateCcw) && !ccw)
            ccw = &s;
    }
    ASSERT_NE(cw, nullptr);
    ASSERT_NE(ccw, nullptr);
    EXPECT_NE(cw->events, ccw->events);
}

// ---- frame accumulation --------------------------------------------------------

TEST(DvsFrames, AccumulateShapeAndNormalization) {
    const auto ds = make_gestures(small_opts(6));
    const auto frame =
        accumulate_frame(ds.streams[0], ds.width, ds.height);
    ASSERT_EQ(frame.rank(), 3u);
    EXPECT_EQ(frame.dim(0), 2u);
    EXPECT_EQ(frame.dim(1), ds.height);
    EXPECT_EQ(frame.dim(2), ds.width);
    EXPECT_FLOAT_EQ(frame.max(), 1.0f);
    EXPECT_GE(frame.min(), 0.0f);
}

TEST(DvsFrames, TimeBinsPartitionTheEvents) {
    const auto ds = make_gestures(small_opts(4));
    const auto& s = ds.streams[0];
    const auto binned = accumulate_frames(s, ds.width, ds.height, ds.duration, 4);
    ASSERT_EQ(binned.dim(0), 8u);  // 4 slices x (ON, OFF)

    // Each event lands in exactly one slice: raw (pre-normalization) bin
    // masses sum to the event count. Reconstruct by re-scaling with the peak.
    common::Tensor raw({2 * 4, ds.height, ds.width});
    for (const auto& e : s.events) {
        const std::size_t slice =
            (static_cast<std::size_t>(e.t) * 4) / ds.duration;
        raw.at3(slice * 2 + (e.on ? 0 : 1), e.y, e.x) += 1.0f;
    }
    EXPECT_FLOAT_EQ(raw.sum(), static_cast<float>(s.events.size()));
    // Normalized tensor is proportional to the raw counts.
    EXPECT_NEAR(binned.sum() * raw.max(), raw.sum(), 1e-2);
}

TEST(DvsFrames, BinnedFramesSeparateOpposingSweeps) {
    // With one bin the left/right sweeps accumulate to near-identical
    // pictures; two bins restore the direction signal.
    GestureOptions opt = small_opts(8);
    opt.classes = 2;  // SweepRight, SweepLeft
    opt.noise_rate = 0.0;
    const auto ds = make_gestures(opt);
    const auto& right = ds.streams[0];  // label 0
    const auto& left = ds.streams[1];   // label 1

    const auto r2 = accumulate_frames(right, ds.width, ds.height, ds.duration, 2);
    const auto l2 = accumulate_frames(left, ds.width, ds.height, ds.duration, 2);
    // Early-slice ON mass for a right sweep sits in the left half, for a
    // left sweep in the right half.
    const auto half_mass = [&](const common::Tensor& f, bool left_half) {
        double m = 0;
        for (std::size_t y = 0; y < ds.height; ++y)
            for (std::size_t x = 0; x < ds.width; ++x)
                if ((x < ds.width / 2) == left_half) m += f.at3(0, y, x);
        return m;
    };
    EXPECT_GT(half_mass(r2, true), half_mass(r2, false));
    EXPECT_GT(half_mass(l2, false), half_mass(l2, true));
}

TEST(DvsFrames, BinArgumentsAreValidated) {
    const auto ds = make_gestures(small_opts(1));
    EXPECT_THROW(
        accumulate_frames(ds.streams[0], ds.width, ds.height, ds.duration, 0),
        std::invalid_argument);
    EXPECT_THROW(accumulate_frames(ds.streams[0], ds.width, ds.height, 0, 1),
                 std::invalid_argument);
    // Events beyond the declared duration are rejected.
    EventStream late;
    late.events.push_back({100, 0, 0, true});
    EXPECT_THROW(accumulate_frames(late, 4, 4, 50, 2), std::out_of_range);
}

TEST(DvsFrames, RejectsEventsOutsideTheSensor) {
    EventStream s;
    s.events.push_back({0, 20, 0, true});
    EXPECT_THROW(accumulate_frame(s, 16, 16), std::out_of_range);
}

TEST(DvsFrames, ClassesAreSeparableByNearestCentroid) {
    // Sanity bound for the learning demos: accumulated frames of the four
    // sweep classes must be linearly well-separated.
    GestureOptions opt = small_opts(160);
    opt.classes = 4;
    const auto ds = make_gestures(opt);

    const std::size_t half = ds.size() / 2;
    std::vector<common::Tensor> centroids(4, common::Tensor({2, 16, 16}));
    std::vector<std::size_t> counts(4, 0);
    for (std::size_t i = 0; i < half; ++i) {
        const auto f = accumulate_frame(ds.streams[i], 16, 16);
        centroids[ds.streams[i].label] += f;
        ++counts[ds.streams[i].label];
    }
    for (std::size_t c = 0; c < 4; ++c)
        centroids[c] *= 1.0f / static_cast<float>(counts[c]);

    std::size_t correct = 0;
    for (std::size_t i = half; i < ds.size(); ++i) {
        const auto f = accumulate_frame(ds.streams[i], 16, 16);
        double best = 1e30;
        std::size_t best_c = 0;
        for (std::size_t c = 0; c < 4; ++c) {
            double d2 = 0;
            for (std::size_t k = 0; k < f.size(); ++k) {
                const double d = f[k] - centroids[c][k];
                d2 += d * d;
            }
            if (d2 < best) {
                best = d2;
                best_c = c;
            }
        }
        correct += best_c == ds.streams[i].label ? 1 : 0;
    }
    EXPECT_GT(static_cast<double>(correct) / static_cast<double>(half), 0.85);
}

// ---- event-driven injection -----------------------------------------------------

TEST(DvsInjection, DeliversEveryEventExactlyOnce) {
    GestureOptions opt = small_opts(2);
    opt.noise_rate = 0.0;
    const auto ds = make_gestures(opt);
    const auto& stream = ds.streams[0];

    loihi::Chip chip;
    loihi::PopulationConfig pc;
    pc.name = "dvs";
    pc.size = 2 * ds.pixels();
    pc.compartment.vth = 1 << 20;  // count only
    const auto pop = chip.add_population(pc);
    chip.finalize();

    const auto io_before = chip.activity().host_io_writes;
    std::size_t cursor = 0;
    std::size_t injected = 0;
    for (std::uint32_t t = 0; t < ds.duration; ++t) {
        injected += inject_events_at(chip, pop, stream, t, cursor, ds.width,
                                     ds.height);
        chip.step();
    }
    EXPECT_EQ(injected, stream.events.size());
    EXPECT_EQ(cursor, stream.events.size());
    EXPECT_EQ(chip.activity().host_io_writes - io_before, stream.events.size());

    // Per-neuron counts equal per-pixel event counts per polarity.
    const auto counts = chip.spike_counts_total(pop);
    std::vector<std::int32_t> expected(2 * ds.pixels(), 0);
    for (const auto& e : stream.events)
        ++expected[(e.on ? 0 : 1) * ds.pixels() + e.y * ds.width + e.x];
    EXPECT_EQ(counts, expected);
}

TEST(DvsInjection, ValidatesPopulationShape) {
    const auto ds = make_gestures(small_opts(1));
    loihi::Chip chip;
    loihi::PopulationConfig pc;
    pc.name = "wrong";
    pc.size = ds.pixels();  // missing the polarity factor of 2
    const auto pop = chip.add_population(pc);
    chip.finalize();
    std::size_t cursor = 0;
    EXPECT_THROW(inject_events_at(chip, pop, ds.streams[0], 0, cursor, ds.width,
                                  ds.height),
                 std::invalid_argument);
}
