// Cross-validation of the spike-domain convolution against the float ANN
// convolution: the chip's explicit synapse expansion (snn/topology) driving
// integer IF dynamics must compute, neuron for neuron, the same weighted sum
// the reference conv2d computes — the structural guarantee behind freezing
// offline-pretrained conv layers on the chip (paper Sec. IV-A). Randomized
// over geometries with TEST_P.

#include <gtest/gtest.h>

#include <cmath>

#include "ann/ops.hpp"
#include "common/rng.hpp"
#include "loihi/chip.hpp"
#include "snn/topology.hpp"

using namespace neuro;
using namespace neuro::loihi;

namespace {

struct ConvCase {
    std::size_t in_c, in_h, in_w, out_c, kernel, stride;
};

/// Integer reference: accumulates w * count over the conv window, mirroring
/// ann::conv2d_forward's geometry but in exact integer arithmetic.
std::vector<std::int64_t> int_conv(const snn::ConvSpec& spec,
                                   const std::vector<std::int32_t>& weights,
                                   const std::vector<std::int32_t>& counts) {
    std::vector<std::int64_t> out(spec.out_size(), 0);
    snn::for_each_conv_connection(
        spec, [&](std::size_t src, std::size_t dst, std::size_t widx) {
            out[dst] += static_cast<std::int64_t>(weights[widx]) * counts[src];
        });
    return out;
}

}  // namespace

class ConvEquivalenceTest : public testing::TestWithParam<ConvCase> {};

TEST_P(ConvEquivalenceTest, ChipMembraneEqualsIntegerConvOfSpikeCounts) {
    const auto p = GetParam();
    snn::ConvSpec spec{p.in_c, p.in_h, p.in_w, p.out_c, p.kernel, p.stride};
    common::Rng rng(p.in_h * 131 + p.out_c * 17 + p.kernel);

    // Random signed kernel bank and a random integer input image.
    std::vector<std::int32_t> weights(spec.out_c * spec.in_c * spec.kernel *
                                      spec.kernel);
    for (auto& w : weights)
        w = static_cast<std::int32_t>(rng.uniform_int(-20, 20));
    const std::int32_t T = 16;
    std::vector<std::int32_t> image(spec.in_size());
    for (auto& v : image) v = static_cast<std::int32_t>(rng.uniform_int(0, T));

    // Chip: bias-driven input (vth = T makes the count equal the bias) into
    // an integrate-only conv population.
    Chip chip;
    PopulationConfig pc;
    pc.name = "in";
    pc.size = spec.in_size();
    pc.compartment.vth = T;
    const auto in = chip.add_population(pc);
    pc.name = "conv";
    pc.size = spec.out_size();
    pc.compartment.vth = 1 << 28;  // integrate only, no spikes, no floor
    const auto conv = chip.add_population(pc);
    ProjectionConfig cfg;
    cfg.name = "conv";
    cfg.src = in;
    cfg.dst = conv;
    chip.add_projection(cfg, snn::conv_synapses(spec, weights));
    chip.finalize();

    chip.set_bias(in, image);
    chip.run(static_cast<std::size_t>(T));
    chip.clear_bias(in);
    chip.run(1);  // flush the last step's deliveries

    const auto counts = chip.spike_counts(in, Phase::One);
    for (std::size_t i = 0; i < image.size(); ++i)
        ASSERT_EQ(counts[i], image[i]) << "input neuron " << i;

    const auto expected = int_conv(spec, weights, counts);
    for (std::size_t j = 0; j < spec.out_size(); ++j)
        EXPECT_EQ(chip.membrane(conv, j), expected[j]) << "conv neuron " << j;
}

TEST_P(ConvEquivalenceTest, SynapseExpansionMatchesFloatConvGeometry) {
    const auto p = GetParam();
    snn::ConvSpec spec{p.in_c, p.in_h, p.in_w, p.out_c, p.kernel, p.stride};
    common::Rng rng(p.in_w * 7 + p.stride);

    // Same computation in float through ann::ops: int weights/counts cast to
    // float are exactly representable, so results must match to the bit.
    std::vector<std::int32_t> weights(spec.out_c * spec.in_c * spec.kernel *
                                      spec.kernel);
    for (auto& w : weights)
        w = static_cast<std::int32_t>(rng.uniform_int(-20, 20));
    std::vector<std::int32_t> counts(spec.in_size());
    for (auto& v : counts) v = static_cast<std::int32_t>(rng.uniform_int(0, 16));

    common::Tensor x({spec.in_c, spec.in_h, spec.in_w});
    for (std::size_t i = 0; i < counts.size(); ++i)
        x[i] = static_cast<float>(counts[i]);
    common::Tensor w({spec.out_c, spec.in_c, spec.kernel, spec.kernel});
    for (std::size_t i = 0; i < weights.size(); ++i)
        w[i] = static_cast<float>(weights[i]);
    common::Tensor b({spec.out_c});
    const auto y = ann::conv2d_forward(x, w, b, spec.stride);

    const auto expected = int_conv(spec, weights, counts);
    ASSERT_EQ(y.size(), expected.size());
    for (std::size_t j = 0; j < expected.size(); ++j)
        EXPECT_EQ(static_cast<std::int64_t>(y[j]), expected[j]) << j;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvEquivalenceTest,
    testing::Values(ConvCase{1, 5, 5, 1, 1, 1},   // pointwise
                    ConvCase{1, 7, 7, 2, 3, 1},   // basic 3x3
                    ConvCase{1, 8, 8, 3, 3, 2},   // strided
                    ConvCase{2, 6, 6, 2, 3, 1},   // multi-channel in
                    ConvCase{3, 9, 7, 2, 5, 2},   // rectangular, 5x5, stride 2
                    ConvCase{2, 5, 9, 4, 2, 2},   // even kernel
                    ConvCase{1, 12, 12, 8, 5, 2}  // paper-conv1-like
                    ));
