// End-to-end determinism and state-hygiene guarantees (DESIGN.md Sec. 5:
// "identical seeds reproduce identical spike trains, accuracies and energy
// numbers bit-for-bit") — the property every experiment in this repository
// silently depends on.

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.hpp"
#include "core/network.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "loihi/faults.hpp"

using namespace neuro;

namespace {

data::Dataset tiny_digits(std::size_t count, std::uint64_t seed) {
    data::GenOptions gen;
    gen.count = count;
    gen.seed = seed;
    gen.height = 12;
    gen.width = 12;
    return data::make_digits(gen);
}

core::EmstdpNetwork make_net(std::uint64_t seed) {
    core::EmstdpOptions opt;
    opt.seed = seed;
    opt.phase_length = 32;
    return core::EmstdpNetwork(opt, 1, 12, 12, nullptr, {40}, 10);
}

/// All plastic weights of a network, concatenated.
std::vector<std::int32_t> all_weights(const core::EmstdpNetwork& net) {
    std::vector<std::int32_t> out;
    for (const auto proj : net.plastic_projections()) {
        const auto w = net.chip().weights(proj);
        out.insert(out.end(), w.begin(), w.end());
    }
    return out;
}

}  // namespace

TEST(Determinism, IdenticalSeedsGiveBitIdenticalTraining) {
    const auto ds = tiny_digits(40, 3);
    auto a = make_net(7);
    auto b = make_net(7);
    EXPECT_EQ(all_weights(a), all_weights(b));  // identical init

    common::Rng ra(42), rb(42);
    core::train_epoch(a, ds, ra);
    core::train_epoch(b, ds, rb);
    EXPECT_EQ(all_weights(a), all_weights(b));  // identical trajectory

    const auto& s = ds.samples.front().image;
    EXPECT_EQ(a.output_counts(s), b.output_counts(s));
}

TEST(Determinism, DifferentSeedsDiverge) {
    const auto ds = tiny_digits(40, 3);
    auto a = make_net(7);
    auto b = make_net(8);
    EXPECT_NE(all_weights(a), all_weights(b));
}

TEST(Determinism, ActivityCountersAreReproducible) {
    const auto ds = tiny_digits(10, 3);
    const auto run = [&] {
        auto net = make_net(7);
        common::Rng rng(42);
        core::train_epoch(net, ds, rng);
        return net.chip().activity();
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.spikes, b.spikes);
    EXPECT_EQ(a.synaptic_ops, b.synaptic_ops);
    EXPECT_EQ(a.compartment_updates, b.compartment_updates);
    EXPECT_EQ(a.host_io_writes, b.host_io_writes);
    EXPECT_EQ(a.learning_synapse_visits, b.learning_synapse_visits);
}

TEST(Determinism, SamplesAreIndependentAfterReset) {
    // Evaluating twice must give the same counts: reset_dynamic_state wipes
    // every bit of per-sample state (membranes, currents, traces, counters,
    // pending deliveries).
    const auto ds = tiny_digits(6, 3);
    auto net = make_net(7);
    const auto& x = ds.samples[0].image;
    const auto first = net.output_counts(x);
    for (std::size_t i = 1; i < ds.size(); ++i)
        (void)net.output_counts(ds.samples[i].image);  // interleave other inputs
    EXPECT_EQ(net.output_counts(x), first);
}

TEST(Determinism, CheckpointRoundTripPreservesBehaviour) {
    const auto ds = tiny_digits(30, 3);
    auto trained = make_net(7);
    common::Rng rng(42);
    core::train_epoch(trained, ds, rng);

    const std::string path = "determinism_ckpt.bin";
    trained.save(path);
    auto clone = make_net(7);  // same build seed = same topology
    clone.load(path);
    EXPECT_EQ(all_weights(clone), all_weights(trained));
    for (std::size_t i = 0; i < 5; ++i) {
        const auto& x = ds.samples[i].image;
        EXPECT_EQ(clone.predict(x), trained.predict(x)) << i;
    }
    std::remove(path.c_str());
}

TEST(Determinism, EvaluationDoesNotMutateTheModel) {
    const auto ds = tiny_digits(20, 3);
    auto net = make_net(7);
    common::Rng rng(42);
    core::train_epoch(net, ds, rng);
    const auto before = all_weights(net);
    (void)core::evaluate(net, ds);
    EXPECT_EQ(all_weights(net), before);
}

TEST(Robustness, LearningSurvivesInjectedFaults) {
    // The paper's motivation end-to-end at test scale: a chip with threshold
    // mismatch, a dead hidden unit and stuck synapses still learns the task
    // well above chance — EMSTDP only ever sees the surviving hardware.
    const auto all = tiny_digits(260, 3);
    const auto [train, test] = data::split(all, 200);
    auto net = make_net(7);
    loihi::apply_threshold_variation(net.chip(), net.hidden_pops().front(), 0.15,
                                     5);
    net.chip().set_compartment_dead(net.hidden_pops().front(), 3, true);
    loihi::stick_fraction(net.chip(), net.plastic_projections().front(), 0.05, 0,
                          9);
    common::Rng rng(42);
    for (int e = 0; e < 2; ++e) core::train_epoch(net, train, rng);
    EXPECT_GT(core::evaluate(net, test), 0.3);  // chance = 0.1
}
