// Contract tests for serve::ModelRouter (the multi-model serving fleet):
//   * multi-model dispatch is bit-identical to dedicated Sessions on the
//     same weight snapshots, across interleaved traffic,
//   * unknown / invalid model names reject at the intake (UnknownModel)
//     without occupying queue space,
//   * lazy load materializes an entry at first dispatch; load/pin/unload
//     drive residency explicitly,
//   * LRU eviction under a tight resident-byte budget evicts the coldest
//     unpinned entry, never a pinned one, and never drops an accepted
//     request (queued requests reload their entry at dispatch),
//   * the canary split is deterministic in request_id and matches the
//     published ModelRouter::canary_arm hash, with per-arm counters,
//   * eviction racing live dispatch is safe (run under TSan in CI).

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/tensor.hpp"
#include "online/registry.hpp"
#include "runtime/compiled_model.hpp"
#include "runtime/model_spec.hpp"
#include "serve/router.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"

using namespace neuro;
using serve::ModelRouter;
using serve::RouterOptions;

namespace {

constexpr std::size_t kDims = 16;
constexpr std::size_t kClasses = 4;

std::shared_ptr<const runtime::CompiledModel> make_model() {
    runtime::ModelSpec spec;
    spec.input(1, 1, kDims).hidden_layers({20}).output_classes(kClasses);
    spec.options.seed = 7;
    return runtime::CompiledModel::compile(spec,
                                           runtime::BackendKind::LoihiSim);
}

/// A weight image whose output layer strongly prefers `winner`, making
/// per-model routing observable as a constant prediction.
runtime::WeightSnapshot forced_snapshot(const runtime::CompiledModel& model,
                                        std::size_t winner) {
    runtime::WeightSnapshot snap = model.initial_weights();
    auto& out = snap.layers.back();
    const std::size_t fan_in = out.size() / kClasses;
    for (std::size_t c = 0; c < kClasses; ++c)
        for (std::size_t i = 0; i < fan_in; ++i)
            out[c * fan_in + i] = c == winner ? 60 : -60;
    return snap;
}

std::size_t snapshot_bytes(const runtime::WeightSnapshot& snap) {
    std::size_t n = 0;
    for (const auto& layer : snap.layers)
        n += layer.size() * sizeof(std::int32_t);
    return n;
}

common::Tensor make_image(std::size_t seed) {
    common::Tensor x({1, 1, kDims});
    for (std::size_t i = 0; i < kDims; ++i)
        x[i] = static_cast<float>((seed * 31 + i * 7) % 17) / 17.0f;
    return x;
}

/// A fresh fleet root with one registry directory per (name, winner):
/// version 1 of each model forces predictions to its winner class.
std::string make_fleet(
    const std::string& tag, const runtime::CompiledModel& model,
    const std::vector<std::pair<std::string, std::size_t>>& entries) {
    const auto root =
        std::filesystem::temp_directory_path() / ("neuro_router_" + tag);
    std::filesystem::remove_all(root);
    std::filesystem::create_directories(root);
    for (const auto& [name, winner] : entries) {
        online::ModelRegistry reg((root / name).string());
        reg.record(1, 0.9, forced_snapshot(model, winner));
    }
    return root.string();
}

}  // namespace

// ---- routing correctness ----------------------------------------------------

TEST(Router, MultiModelBitIdenticalToDedicatedSessions) {
    const auto model = make_model();
    const auto fleet =
        make_fleet("identity", *model, {{"alpha", 1}, {"beta", 2}});

    RouterOptions opt;
    opt.workers = 3;
    opt.batch.max_batch = 4;
    opt.batch.max_delay_us = 200;
    opt.fleet_dir = fleet;
    ModelRouter router(model, opt);
    router.start();

    // Reference: dedicated sequential Sessions over the same snapshots.
    const auto alpha_model =
        model->with_weights(forced_snapshot(*model, 1));
    const auto beta_model = model->with_weights(forced_snapshot(*model, 2));
    auto ref_default = model->open_session();
    auto ref_alpha = alpha_model->open_session();
    auto ref_beta = beta_model->open_session();

    const std::size_t n = 24;
    std::vector<serve::InferenceHandle> handles;
    std::vector<std::vector<std::int32_t>> expected;
    for (std::size_t i = 0; i < n; ++i) {
        const auto image = make_image(i);
        serve::SubmitOptions s;
        runtime::Session* ref = nullptr;
        switch (i % 3) {
            case 0: ref = ref_default.get(); break;
            case 1: s.model = "alpha"; ref = ref_alpha.get(); break;
            default: s.model = "beta"; ref = ref_beta.get(); break;
        }
        expected.push_back(ref->output_counts(image));
        handles.push_back(router.submit_counts(image, s));
    }
    for (std::size_t i = 0; i < n; ++i) {
        auto r = handles[i].get();
        ASSERT_EQ(r.status, serve::Status::Ok) << r.error;
        EXPECT_EQ(r.counts, expected[i]) << "request " << i;
    }
    router.shutdown();

    const auto alpha = router.model_stats("alpha");
    EXPECT_TRUE(alpha.resident);
    EXPECT_EQ(alpha.base_version, 1u);
    EXPECT_EQ(alpha.loads, 1u);
    EXPECT_EQ(alpha.base_dispatched, n / 3);
    EXPECT_EQ(alpha.base_ok, n / 3);
}

TEST(Router, UnknownAndInvalidModelsRejectAtIntake) {
    const auto model = make_model();
    RouterOptions opt;
    opt.fleet_dir = "";  // no fleet at all
    ModelRouter router(model, opt);
    // Deliberately never started: intake rejects resolve inline, so these
    // get() calls must not block.
    serve::SubmitOptions s;
    s.model = "nope";
    auto r = router.submit(make_image(0), s).get();
    EXPECT_EQ(r.status, serve::Status::Rejected);
    EXPECT_EQ(r.reject, serve::RejectReason::UnknownModel);

    s.model = "9starts-with-digit";
    r = router.submit(make_image(0), s).get();
    EXPECT_EQ(r.reject, serve::RejectReason::UnknownModel);
    router.shutdown();
}

TEST(Router, ServerWrapperRejectsFleetNames) {
    // A plain Server is a fleet of one: addressing any name through its
    // unified SubmitOptions resolves UnknownModel, not a crash or a hang.
    serve::ServerOptions opt;
    serve::Server server(make_model(), opt);
    serve::SubmitOptions s;
    s.model = "tenant";
    auto r = server.submit(make_image(1), s).get();
    EXPECT_EQ(r.status, serve::Status::Rejected);
    EXPECT_EQ(r.reject, serve::RejectReason::UnknownModel);
    server.shutdown();
}

TEST(Router, LazyLoadMaterializesAtFirstDispatch) {
    const auto model = make_model();
    const auto fleet = make_fleet("lazy", *model, {{"alpha", 3}});
    RouterOptions opt;
    opt.fleet_dir = fleet;
    ModelRouter router(model, opt);
    router.start();

    // Submitting registers the entry (addressability check) but the load
    // itself happens at dispatch on a worker.
    auto r = router.submit(make_image(2), [] {
        serve::SubmitOptions s;
        s.model = "alpha";
        return s;
    }()).get();
    ASSERT_EQ(r.status, serve::Status::Ok) << r.error;
    EXPECT_EQ(r.label, 3u);

    const auto s = router.model_stats("alpha");
    EXPECT_TRUE(s.resident);
    EXPECT_FALSE(s.pinned);
    EXPECT_EQ(s.loads, 1u);
    EXPECT_EQ(s.base_version, 1u);
    EXPECT_GT(s.weight_bytes, 0u);
    router.shutdown();
}

// ---- explicit residency control ---------------------------------------------

TEST(Router, LoadPinUnloadDriveResidency) {
    const auto model = make_model();
    const auto fleet = make_fleet("explicit", *model, {{"alpha", 1}});
    {
        // A second accepted version for pin() to publish.
        online::ModelRegistry reg(
            (std::filesystem::path(fleet) / "alpha").string());
        reg.record(2, 0.95, forced_snapshot(*model, 2));
    }
    RouterOptions opt;
    opt.fleet_dir = fleet;
    ModelRouter router(model, opt);
    router.start();

    // load() picks the registry's last good version (2).
    EXPECT_EQ(router.load("alpha"), 2u);
    EXPECT_TRUE(router.model_stats("alpha").resident);

    // pin() an older version on the resident pool: published through the
    // COW channel, adopted at the next batch boundary.
    EXPECT_EQ(router.pin("alpha", 1), 1u);
    EXPECT_TRUE(router.model_stats("alpha").pinned);
    serve::SubmitOptions s;
    s.model = "alpha";
    auto r = router.submit(make_image(3), s).get();
    ASSERT_EQ(r.status, serve::Status::Ok) << r.error;
    EXPECT_EQ(r.label, 1u);  // version 1 forces winner 1

    router.unload("alpha");
    const auto st = router.model_stats("alpha");
    EXPECT_FALSE(st.resident);
    EXPECT_FALSE(st.pinned);
    EXPECT_EQ(st.weight_bytes, 0u);

    EXPECT_THROW(router.unload(""), std::invalid_argument);
    EXPECT_THROW(router.unload("ghost"), std::invalid_argument);
    router.shutdown();
}

// ---- LRU eviction -----------------------------------------------------------

TEST(Router, LruEvictsColdestAndSparesPinned) {
    const auto model = make_model();
    const auto fleet =
        make_fleet("lru", *model, {{"a", 1}, {"b", 2}, {"c", 3}});
    const std::size_t entry_bytes =
        snapshot_bytes(model->initial_weights());

    RouterOptions opt;
    opt.fleet_dir = fleet;
    // Default entry + exactly ONE fleet entry fit.
    opt.resident_budget_bytes = 2 * entry_bytes;
    ModelRouter router(model, opt);
    router.start();

    router.load("a");
    EXPECT_TRUE(router.model_stats("a").resident);
    // Loading "b" pushes past the budget; "a" is the only candidate.
    router.load("b");
    EXPECT_FALSE(router.model_stats("a").resident);
    EXPECT_EQ(router.model_stats("a").evictions, 1u);
    EXPECT_TRUE(router.model_stats("b").resident);
    EXPECT_LE(router.resident_bytes(), opt.resident_budget_bytes);

    // Touch "b" via traffic, then load "a" again — "b" is now hotter but
    // is still the only evictable entry, so it goes.
    serve::SubmitOptions s;
    s.model = "b";
    ASSERT_EQ(router.submit(make_image(4), s).get().status,
              serve::Status::Ok);
    router.load("a");
    EXPECT_FALSE(router.model_stats("b").resident);
    EXPECT_TRUE(router.model_stats("a").resident);

    // Pin "a": immune. Loading "c" then overshoots the soft ceiling with
    // nothing evictable — both stay resident.
    router.pin("a", 0);
    router.load("c");
    EXPECT_TRUE(router.model_stats("a").resident);
    EXPECT_TRUE(router.model_stats("c").resident);
    EXPECT_GT(router.resident_bytes(), opt.resident_budget_bytes);
    router.shutdown();
}

TEST(Router, EvictionNeverDropsAcceptedRequests) {
    // Budget for a single fleet entry while three models take traffic from
    // three threads: every dispatch of a cold entry forces a reload and
    // usually an eviction of whichever entry another thread just used.
    // Accepted-implies-completed must hold bit-exactly throughout. This is
    // the eviction-vs-dispatch race test CI runs under TSan.
    const auto model = make_model();
    const auto fleet =
        make_fleet("race", *model, {{"a", 1}, {"b", 2}, {"c", 3}});
    RouterOptions opt;
    opt.workers = 4;
    opt.queue_capacity = 256;
    opt.batch.max_batch = 4;
    opt.batch.max_delay_us = 100;
    opt.fleet_dir = fleet;
    opt.resident_budget_bytes =
        2 * snapshot_bytes(model->initial_weights());
    ModelRouter router(model, opt);
    router.start();

    const std::vector<std::string> names = {"a", "b", "c"};

    // Phase 1 (deterministic churn): strict round-robin with a get() after
    // each request. The just-served entry is idle by the time the next
    // name loads, so every load past the first must evict it — queued and
    // future requests for the victim simply reload it at dispatch.
    for (std::size_t round = 0; round < 8; ++round) {
        for (std::size_t t = 0; t < names.size(); ++t) {
            serve::SubmitOptions s;
            s.model = names[t];
            auto r = router.submit(make_image(round), s).get();
            ASSERT_EQ(r.status, serve::Status::Ok) << r.error;
            ASSERT_EQ(r.label, t + 1);
        }
    }
    std::uint64_t serial_evictions = 0;
    for (const auto& st : router.model_stats())
        serial_evictions += st.evictions;
    EXPECT_GT(serial_evictions, 0u);
    EXPECT_LE(router.resident_bytes(), opt.resident_budget_bytes);

    // Phase 2 (concurrent stress): three submitter threads flood their
    // models so intake, dispatch, lazy reload and eviction interleave —
    // the TSan target. The soft ceiling may park all entries resident
    // here; phase 1 already proved the eviction path.
    const std::size_t per_thread = 40;
    std::vector<std::vector<serve::InferenceHandle>> handles(names.size());
    {
        std::vector<std::thread> submitters;
        for (std::size_t t = 0; t < names.size(); ++t) {
            handles[t].reserve(per_thread);
            submitters.emplace_back([&, t] {
                for (std::size_t i = 0; i < per_thread; ++i) {
                    serve::SubmitOptions s;
                    s.model = names[t];
                    handles[t].push_back(router.submit(make_image(i), s));
                }
            });
        }
        for (auto& th : submitters) th.join();
    }
    for (std::size_t t = 0; t < names.size(); ++t) {
        for (auto& h : handles[t]) {
            auto r = h.get();
            ASSERT_EQ(r.status, serve::Status::Ok) << r.error;
            EXPECT_EQ(r.label, t + 1);  // model t forces winner t+1
        }
    }
    router.shutdown();

    std::uint64_t loads = 0;
    for (const auto& st : router.model_stats()) loads += st.loads;
    // The budget admits one fleet entry at a time, so serving three models
    // had to churn: entries were reloaded well past their first load.
    EXPECT_GT(loads, 3u);
}

// ---- canary splits ----------------------------------------------------------

TEST(Router, CanaryArmHashIsDeterministic) {
    for (std::uint64_t id = 0; id < 64; ++id) {
        EXPECT_FALSE(ModelRouter::canary_arm(id, 0));
        EXPECT_TRUE(ModelRouter::canary_arm(id, 100));
        EXPECT_EQ(ModelRouter::canary_arm(id, 37),
                  ModelRouter::canary_arm(id, 37));
    }
    // The hash actually splits: across 1000 ids at 30%, both arms appear.
    std::size_t canary = 0;
    for (std::uint64_t id = 0; id < 1000; ++id)
        if (ModelRouter::canary_arm(id, 30)) ++canary;
    EXPECT_GT(canary, 200u);
    EXPECT_LT(canary, 400u);
}

TEST(Router, CanarySplitMatchesHashAndCountsPerArm) {
    const auto model = make_model();
    const auto fleet = make_fleet("canary", *model, {{"alpha", 1}});
    {
        online::ModelRegistry reg(
            (std::filesystem::path(fleet) / "alpha").string());
        reg.record(2, 0.95, forced_snapshot(*model, 2));
    }
    RouterOptions opt;
    opt.fleet_dir = fleet;
    ModelRouter router(model, opt);
    router.start();

    // Base = version 1 (winner 1), canary = version 2 (winner 2) at 30%.
    router.pin("alpha", 1);
    router.set_canary("alpha", 2, 30);
    auto st = router.model_stats("alpha");
    EXPECT_EQ(st.canary_version, 2u);
    EXPECT_EQ(st.canary_pct, 30u);

    const std::size_t n = 120;
    std::size_t expect_canary = 0;
    std::vector<serve::InferenceHandle> handles;
    for (std::uint64_t id = 0; id < n; ++id) {
        serve::SubmitOptions s;
        s.model = "alpha";
        s.request_id = id;
        if (ModelRouter::canary_arm(id, 30)) ++expect_canary;
        handles.push_back(router.submit(make_image(id), s));
    }
    for (std::uint64_t id = 0; id < n; ++id) {
        auto r = handles[id].get();
        ASSERT_EQ(r.status, serve::Status::Ok) << r.error;
        // The arm is a pure function of the request id, so the label is
        // exactly predictable per request — determinism, not statistics.
        EXPECT_EQ(r.label, ModelRouter::canary_arm(id, 30) ? 2u : 1u)
            << "request " << id;
    }
    st = router.model_stats("alpha");
    EXPECT_EQ(st.canary_dispatched, expect_canary);
    EXPECT_EQ(st.base_dispatched, n - expect_canary);
    EXPECT_EQ(st.canary_ok, expect_canary);

    // Clearing the canary tears the arm down; traffic that hashed to it
    // now serves from base.
    router.set_canary("alpha", 0, 0);
    st = router.model_stats("alpha");
    EXPECT_EQ(st.canary_version, 0u);
    EXPECT_EQ(st.canary_pct, 0u);
    std::uint64_t canary_id = 0;
    while (!ModelRouter::canary_arm(canary_id, 30)) ++canary_id;
    serve::SubmitOptions s;
    s.model = "alpha";
    s.request_id = canary_id;
    EXPECT_EQ(router.submit(make_image(0), s).get().label, 1u);
    router.shutdown();
}

TEST(Router, CanaryPromotionViaPin) {
    const auto model = make_model();
    const auto fleet = make_fleet("promote", *model, {{"alpha", 1}});
    {
        online::ModelRegistry reg(
            (std::filesystem::path(fleet) / "alpha").string());
        reg.record(2, 0.95, forced_snapshot(*model, 2));
    }
    RouterOptions opt;
    opt.fleet_dir = fleet;
    ModelRouter router(model, opt);
    router.start();
    router.pin("alpha", 1);
    router.set_canary("alpha", 2, 25);

    // Promote: base becomes the canary version, canary clears — the
    // control-socket `pin` + `canary 0` sequence.
    router.pin("alpha", 2);
    router.set_canary("alpha", 0, 0);
    const auto st = router.model_stats("alpha");
    EXPECT_EQ(st.base_version, 2u);
    EXPECT_EQ(st.canary_version, 0u);
    serve::SubmitOptions s;
    s.model = "alpha";
    EXPECT_EQ(router.submit(make_image(5), s).get().label, 2u);

    EXPECT_THROW(router.set_canary("alpha", 2, 101), std::invalid_argument);
    router.shutdown();
}

// ---- model-tagged feedback --------------------------------------------------

TEST(Router, FeedbackCarriesTheModelTag) {
    const auto model = make_model();
    const auto fleet = make_fleet("feedback", *model, {{"alpha", 1}});
    RouterOptions opt;
    opt.fleet_dir = fleet;
    opt.admission.feedback_capacity = 8;
    ModelRouter router(model, opt);

    serve::SubmitOptions def;
    EXPECT_TRUE(router.submit_feedback(make_image(0), 1, def));
    serve::SubmitOptions tagged;
    tagged.model = "alpha";
    EXPECT_TRUE(router.submit_feedback(make_image(1), 2, tagged));
    serve::SubmitOptions unknown;
    unknown.model = "ghost";
    EXPECT_FALSE(router.submit_feedback(make_image(2), 1, unknown));

    serve::BatchPolicy policy{4, 1000};
    std::vector<serve::FeedbackSample> batch;
    ASSERT_TRUE(serve::collect_batch(*router.feedback_queue(), policy, batch));
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].model, "");
    EXPECT_EQ(batch[1].model, "alpha");
    EXPECT_EQ(batch[1].label, 2u);
    router.shutdown();
}
