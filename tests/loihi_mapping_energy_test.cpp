// Unit tests for the core mapper (paper Sec. III-C, Operation Flow 1) and
// the power/time/energy model (Table II, Fig. 3).

#include <gtest/gtest.h>

#include "loihi/chip.hpp"
#include "loihi/energy.hpp"
#include "loihi/mapping.hpp"

using namespace neuro::loihi;

TEST(Mapping, CapacityPackingRespectsCompartments) {
    ChipLimits limits;
    LayerMapSpec spec;
    spec.name = "x";
    spec.logical_neurons = 5000;
    spec.compartments_per_neuron = 2;
    EXPECT_EQ(capacity_neurons_per_core(spec, limits), 512u);
}

TEST(Mapping, CapacityPackingRespectsSynapseMemory) {
    ChipLimits limits;
    LayerMapSpec spec;
    spec.name = "x";
    spec.logical_neurons = 4096;
    spec.fan_in_per_neuron = 1024;  // 131072 / 1024 = 128 neurons/core
    EXPECT_EQ(capacity_neurons_per_core(spec, limits), 128u);
}

TEST(Mapping, SynapticMemoryAccountsEveryEntry) {
    ChipLimits limits;  // 8-bit weights -> 20 bits/entry
    EXPECT_EQ(synapse_entry_bits(limits), 20u);

    LayerMapSpec spec;
    spec.name = "dense";
    spec.logical_neurons = 100;
    spec.fan_in_per_neuron = 392;
    spec.neurons_per_core = 10;
    const auto r = map_layers({spec}, limits);
    ASSERT_EQ(r.layers.size(), 1u);
    // 10 neurons * 392 fan-in * 20 bits / 8 = 9800 bytes per core.
    EXPECT_EQ(r.layers[0].memory_bytes_per_core, 9800u);
    EXPECT_EQ(r.max_memory_bytes_per_core, 9800u);
    EXPECT_EQ(r.total_memory_bytes, 10u * 9800u);
}

TEST(Mapping, MemoryScalesWithWeightPrecision) {
    LayerMapSpec spec;
    spec.name = "x";
    spec.logical_neurons = 64;
    spec.fan_in_per_neuron = 64;
    spec.neurons_per_core = 8;
    ChipLimits narrow;
    narrow.weight_bits = 4;
    ChipLimits wide;
    wide.weight_bits = 16;
    const auto rn = map_layers({spec}, narrow);
    const auto rw = map_layers({spec}, wide);
    EXPECT_LT(rn.total_memory_bytes, rw.total_memory_bytes);
    // 4-bit: 16 bits/entry, 16-bit: 28 bits/entry.
    EXPECT_EQ(rn.total_memory_bytes * 28, rw.total_memory_bytes * 16);
}

TEST(Mapping, AxonTableBindsOnlyForLargeSourcePools) {
    ChipLimits limits;
    LayerMapSpec spec;
    spec.name = "x";
    spec.logical_neurons = 1000;
    spec.fan_in_per_neuron = 100;
    spec.distinct_sources = 2000;  // fits the 4096-entry axon table
    EXPECT_EQ(capacity_neurons_per_core(spec, limits), 1024u);
    spec.distinct_sources = 8000;  // exceeds it: npc limited to 4096/100
    EXPECT_EQ(capacity_neurons_per_core(spec, limits), 40u);
}

TEST(Mapping, ExplicitNpcOverridesAndClamps) {
    ChipLimits limits;
    std::vector<LayerMapSpec> layers(1);
    layers[0].name = "hidden";
    layers[0].logical_neurons = 100;
    layers[0].compartments_per_neuron = 2;
    layers[0].neurons_per_core = 10;
    auto r = map_layers(layers, limits);
    EXPECT_EQ(r.layers[0].num_cores, 10u);
    EXPECT_EQ(r.layers[0].neurons_per_core, 10u);
    EXPECT_EQ(r.max_compartments_per_core, 20u);

    layers[0].neurons_per_core = 4096;  // beyond capacity: clamped
    r = map_layers(layers, limits);
    EXPECT_EQ(r.layers[0].neurons_per_core, 512u);
    EXPECT_FALSE(r.violations.empty());
}

TEST(Mapping, LayersGetDisjointCores) {
    ChipLimits limits;
    std::vector<LayerMapSpec> layers(3);
    for (int i = 0; i < 3; ++i) {
        layers[i].name = "l" + std::to_string(i);
        layers[i].logical_neurons = 100;
        layers[i].neurons_per_core = 25;
    }
    const auto r = map_layers(layers, limits);
    EXPECT_EQ(r.total_cores, 12u);
    EXPECT_EQ(r.layers[0].first_core, 0u);
    EXPECT_EQ(r.layers[1].first_core, 4u);
    EXPECT_EQ(r.layers[2].first_core, 8u);
    EXPECT_TRUE(r.feasible);
}

TEST(Mapping, InfeasibleWhenChipOverflows) {
    ChipLimits limits;
    std::vector<LayerMapSpec> layers(1);
    layers[0].name = "huge";
    layers[0].logical_neurons = 10000;
    layers[0].neurons_per_core = 1;
    const auto r = map_layers(layers, limits);
    EXPECT_FALSE(r.feasible);
    EXPECT_FALSE(r.violations.empty());
}

namespace {

/// Builds a finalized chip whose single trainable layer is packed at `npc`
/// neurons/core, mimicking the Fig. 3 sweep structure.
Chip sweep_chip(std::size_t hidden, std::size_t fan_in, std::size_t npc) {
    Chip chip;
    PopulationConfig src;
    src.name = "features";
    src.size = fan_in;
    src.compartment.vth = 64;
    const auto s = chip.add_population(src);
    PopulationConfig hid;
    hid.name = "hidden";
    hid.size = hidden;
    hid.compartment.vth = 256;
    hid.neurons_per_core = npc;
    const auto h = chip.add_population(hid);
    std::vector<Synapse> syns;
    for (std::uint32_t i = 0; i < fan_in; ++i)
        for (std::uint32_t o = 0; o < hidden; ++o) syns.push_back({i, o, 1});
    ProjectionConfig pr;
    pr.name = "plastic";
    pr.src = s;
    pr.dst = h;
    pr.plastic = true;
    chip.add_projection(pr, syns);
    chip.finalize();
    return chip;
}

EnergyReport report_for(Chip& chip, std::size_t steps) {
    chip.reset_activity();
    chip.run(steps);
    return estimate_energy(EnergyModelParams{}, chip, chip.activity(), 1);
}

}  // namespace

TEST(Energy, PowerGrowsWithCores) {
    // Fewer neurons per core -> more occupied cores -> higher active power
    // (paper Fig. 3: power gating of unused cores).
    Chip dense = sweep_chip(100, 200, 25);
    Chip sparse = sweep_chip(100, 200, 5);
    const auto rd = report_for(dense, 128);
    const auto rs = report_for(sparse, 128);
    EXPECT_LT(rd.cores, rs.cores);
    EXPECT_LT(rd.power_w, rs.power_w);
}

TEST(Energy, StepTimeGrowsWithNeuronsPerCore) {
    // More neurons per core -> busier core -> slower barrier step (paper
    // Fig. 3: "the execution time increases as the core is shared by higher
    // number of neuron compartments").
    Chip slow = sweep_chip(100, 200, 25);
    Chip fast = sweep_chip(100, 200, 5);
    const auto r_slow = report_for(slow, 128);
    const auto r_fast = report_for(fast, 128);
    EXPECT_GT(r_slow.step_seconds, r_fast.step_seconds);
}

TEST(Energy, StepTimeNeverBeatsSiliconFloor) {
    Chip tiny = sweep_chip(4, 4, 1);
    const auto r = report_for(tiny, 64);
    EXPECT_GE(r.step_seconds, EnergyModelParams{}.step_floor_s);
    EXPECT_LE(r.fps, 1.0 / (64 * EnergyModelParams{}.step_floor_s) + 1.0);
}

TEST(Energy, SweepShowsUTradeoff) {
    // Energy/sample = power * time must not be monotonic across the sweep:
    // the product of a falling and a rising curve has an interior optimum
    // (the central claim of Fig. 3).
    std::vector<double> energy;
    for (std::size_t npc : {2, 5, 10, 15, 20, 25, 30}) {
        Chip chip = sweep_chip(100, 200, npc);
        energy.push_back(report_for(chip, 128).energy_per_sample_j);
    }
    const auto best = std::min_element(energy.begin(), energy.end());
    EXPECT_NE(best, energy.begin()) << "optimum must be interior (not smallest npc)";
    EXPECT_NE(best, energy.end() - 1) << "optimum must be interior (not largest npc)";
}

TEST(Energy, TrainingDoublesStepsPerSample) {
    Chip chip = sweep_chip(100, 200, 10);
    chip.reset_activity();
    chip.run(128);  // 2T steps = one training sample
    const auto train = estimate_energy(EnergyModelParams{}, chip, chip.activity(), 1);
    chip.reset_activity();
    chip.run(64);  // T steps = one inference sample
    const auto test = estimate_energy(EnergyModelParams{}, chip, chip.activity(), 1);
    EXPECT_EQ(train.steps_per_sample, 128u);
    EXPECT_EQ(test.steps_per_sample, 64u);
    EXPECT_GT(train.energy_per_sample_j, test.energy_per_sample_j);
    EXPECT_NEAR(train.fps * 2.0, test.fps, test.fps * 0.05);
}

TEST(Energy, RejectsDegenerateInputs) {
    Chip chip = sweep_chip(4, 4, 1);
    EXPECT_THROW(estimate_energy(EnergyModelParams{}, chip, chip.activity(), 1),
                 std::invalid_argument);  // no steps run
    chip.run(1);
    EXPECT_THROW(estimate_energy(EnergyModelParams{}, chip, chip.activity(), 0),
                 std::invalid_argument);  // zero samples
}
