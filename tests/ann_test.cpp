// Unit tests for src/ann: numerical gradient checks on every op, training
// behaviour, checkpoint round-trips, and the paper-topology geometry.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "ann/model.hpp"
#include "ann/ops.hpp"
#include "ann/trainer.hpp"
#include "data/dataset.hpp"

using namespace neuro::ann;
using neuro::common::Rng;
using neuro::common::Tensor;

namespace {

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng, float scale = 1.0f) {
    Tensor t(std::move(shape));
    for (auto& v : t) v = static_cast<float>(rng.uniform(-scale, scale));
    return t;
}

/// Central-difference derivative of a scalar function of one tensor entry.
template <typename F>
float numeric_grad(Tensor& x, std::size_t idx, F loss, float eps = 1e-3f) {
    const float keep = x[idx];
    x[idx] = keep + eps;
    const float up = loss();
    x[idx] = keep - eps;
    const float down = loss();
    x[idx] = keep;
    return (up - down) / (2.0f * eps);
}

float sum_all(const Tensor& t) {
    float s = 0.0f;
    for (float v : t) s += v;
    return s;
}

}  // namespace

TEST(ConvOutDim, FloorSemantics) {
    EXPECT_EQ(conv_out_dim(28, 5, 2), 12u);  // paper conv1
    EXPECT_EQ(conv_out_dim(12, 3, 2), 5u);   // paper conv2
    EXPECT_EQ(conv_out_dim(32, 5, 2), 14u);  // CIFAR geometry
    EXPECT_THROW(conv_out_dim(3, 5, 1), std::invalid_argument);
}

TEST(Conv2d, GradientMatchesNumeric) {
    Rng rng(2);
    Tensor x = random_tensor({2, 6, 6}, rng);
    Tensor w = random_tensor({3, 2, 3, 3}, rng, 0.5f);
    Tensor b = random_tensor({3}, rng, 0.1f);

    // Loss = sum(conv(x)) so dL/dy = 1 everywhere.
    auto loss = [&] { return sum_all(conv2d_forward(x, w, b, 1)); };
    const Tensor y = conv2d_forward(x, w, b, 1);
    Tensor dy(std::vector<std::size_t>(y.shape()));
    dy.fill(1.0f);
    Tensor dw(std::vector<std::size_t>(w.shape()));
    Tensor db({3});
    const Tensor dx = conv2d_backward(x, w, dy, 1, dw, db);

    for (std::size_t idx : {0u, 10u, 35u, 71u})
        EXPECT_NEAR(dx[idx], numeric_grad(x, idx, loss), 2e-2f) << "dx[" << idx << "]";
    for (std::size_t idx : {0u, 7u, 25u, 53u})
        EXPECT_NEAR(dw[idx], numeric_grad(w, idx, loss), 2e-2f) << "dw[" << idx << "]";
    for (std::size_t idx : {0u, 1u, 2u})
        EXPECT_NEAR(db[idx], numeric_grad(b, idx, loss), 2e-2f) << "db[" << idx << "]";
}

TEST(Conv2d, StridedGradientMatchesNumeric) {
    Rng rng(4);
    Tensor x = random_tensor({1, 7, 7}, rng);
    Tensor w = random_tensor({2, 1, 3, 3}, rng, 0.5f);
    Tensor b({2});

    auto loss = [&] { return sum_all(conv2d_forward(x, w, b, 2)); };
    const Tensor y = conv2d_forward(x, w, b, 2);
    EXPECT_EQ(y.dim(1), 3u);
    Tensor dy(std::vector<std::size_t>(y.shape()));
    dy.fill(1.0f);
    Tensor dw(std::vector<std::size_t>(w.shape()));
    Tensor db({2});
    const Tensor dx = conv2d_backward(x, w, dy, 2, dw, db);
    for (std::size_t idx : {0u, 8u, 24u, 48u})
        EXPECT_NEAR(dx[idx], numeric_grad(x, idx, loss), 2e-2f);
    for (std::size_t idx : {0u, 5u, 17u})
        EXPECT_NEAR(dw[idx], numeric_grad(w, idx, loss), 2e-2f);
}

TEST(Dense, GradientMatchesNumeric) {
    Rng rng(6);
    Tensor x = random_tensor({10}, rng);
    Tensor w = random_tensor({4, 10}, rng, 0.5f);
    Tensor b = random_tensor({4}, rng, 0.1f);

    auto loss = [&] { return sum_all(dense_forward(x, w, b)); };
    Tensor dy({4});
    dy.fill(1.0f);
    Tensor dw({4, 10});
    Tensor db({4});
    const Tensor dx = dense_backward(x, w, dy, dw, db);
    for (std::size_t idx : {0u, 5u, 9u})
        EXPECT_NEAR(dx[idx], numeric_grad(x, idx, loss), 1e-2f);
    for (std::size_t idx : {0u, 13u, 39u})
        EXPECT_NEAR(dw[idx], numeric_grad(w, idx, loss), 1e-2f);
}

TEST(SoftmaxCrossEntropy, GradientMatchesNumeric) {
    Rng rng(8);
    Tensor logits = random_tensor({5}, rng, 2.0f);
    const std::size_t label = 2;

    Tensor dlogits;
    softmax_cross_entropy(logits, label, dlogits);
    auto loss = [&] {
        Tensor d;
        return softmax_cross_entropy(logits, label, d);
    };
    for (std::size_t idx = 0; idx < 5; ++idx)
        EXPECT_NEAR(dlogits[idx], numeric_grad(logits, idx, loss), 1e-3f);
    // Gradient sums to zero (softmax minus one-hot).
    EXPECT_NEAR(sum_all(dlogits), 0.0f, 1e-5f);
}

TEST(SoftmaxCrossEntropy, StableForLargeLogits) {
    Tensor logits({3});
    logits[0] = 1000.0f;
    logits[1] = 0.0f;
    logits[2] = -1000.0f;
    Tensor d;
    const float loss = softmax_cross_entropy(logits, 0, d);
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_NEAR(loss, 0.0f, 1e-3f);
}

TEST(Relu, ForwardBackward) {
    Tensor x({4});
    x[0] = -1.0f;
    x[1] = 0.0f;
    x[2] = 2.0f;
    x[3] = -0.5f;
    const Tensor y = relu_forward(x);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[2], 2.0f);
    Tensor dy({4});
    dy.fill(1.0f);
    const Tensor dx = relu_backward(x, dy);
    EXPECT_FLOAT_EQ(dx[0], 0.0f);
    EXPECT_FLOAT_EQ(dx[2], 1.0f);
}

TEST(PaperTopology, GeometryFor28x28) {
    PaperTopology topo;
    topo.in_c = 1;
    topo.in_h = 28;
    topo.in_w = 28;
    EXPECT_EQ(topo.conv1_h(), 12u);
    EXPECT_EQ(topo.conv2_h(), 5u);
    EXPECT_EQ(topo.feature_size(), 8u * 5u * 5u);
}

TEST(Model, OverfitsTinySet) {
    // Ten samples, two classes; the full paper model must drive training
    // accuracy to 100% — a standard sanity check of the whole backward pass.
    neuro::data::GenOptions gen;
    gen.count = 10;
    gen.seed = 2;
    gen.height = 12;
    gen.width = 12;
    auto ds = neuro::data::make_digits(gen).filter_classes({0, 1});

    PaperTopology topo;
    topo.in_c = 1;
    topo.in_h = 12;
    topo.in_w = 12;
    topo.hidden = 24;
    topo.classes = 2;
    Rng rng(3);
    Model m = build_paper_model(topo, rng);
    // Re-map labels {0,1} directly.
    TrainOptions opt;
    opt.epochs = 60;
    opt.batch = 2;
    opt.lr = 0.05f;
    const auto result = train(m, ds, opt, rng);
    EXPECT_GE(result.final_train_accuracy, 0.99);
    EXPECT_LT(result.final_train_loss, 0.2);
}

TEST(Model, CheckpointRoundTrip) {
    PaperTopology topo;
    topo.in_c = 1;
    topo.in_h = 12;
    topo.in_w = 12;
    topo.hidden = 16;
    topo.classes = 4;
    Rng rng(5);
    Model a = build_paper_model(topo, rng);
    Model b = build_paper_model(topo, rng);  // different init

    Tensor x({1, 12, 12});
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(i % 7) / 7.0f;
    const Tensor ya = a.forward(x);
    const Tensor yb0 = b.forward(x);
    bool differ = false;
    for (std::size_t i = 0; i < ya.size(); ++i)
        if (ya[i] != yb0[i]) differ = true;
    ASSERT_TRUE(differ);

    const std::string path = testing::TempDir() + "/neuro_ann_ckpt.bin";
    a.save(path);
    b.load(path);
    const Tensor yb = b.forward(x);
    for (std::size_t i = 0; i < ya.size(); ++i) ASSERT_FLOAT_EQ(ya[i], yb[i]);
    std::filesystem::remove(path);
}

TEST(Model, DescribeMentionsLayers) {
    PaperTopology topo;
    topo.in_c = 1;
    topo.in_h = 28;
    topo.in_w = 28;
    Rng rng(1);
    const Model m = build_paper_model(topo, rng);
    const std::string d = m.describe();
    EXPECT_NE(d.find("conv 5x5k-16c-2s"), std::string::npos);
    EXPECT_NE(d.find("conv 3x3k-8c-2s"), std::string::npos);
    EXPECT_NE(d.find("dense 200->100"), std::string::npos);
    EXPECT_NE(d.find("dense 100->10"), std::string::npos);
}
