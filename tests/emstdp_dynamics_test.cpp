// Focused dynamics tests of the on-chip EMSTDP machinery: the two-channel
// error representation, the h' gating along the feedback path, trace
// bookkeeping across the two phases, and properties of the IF rate code.
// These pin the *mechanisms* of paper Sec. III at the spike level, one
// level below the task-accuracy tests in core_test.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "core/network.hpp"
#include "data/encode.hpp"
#include "loihi/chip.hpp"

using namespace neuro;
using core::EmstdpNetwork;
using core::EmstdpOptions;
using loihi::Phase;
using neuro::common::Tensor;

namespace {

/// Single-dense-layer network on an 8-pixel input with 4 classes. The
/// population order inside EmstdpNetwork is: input, output, label,
/// out_err+, out_err-.
struct Probe {
    EmstdpOptions opt;
    EmstdpNetwork net;
    loihi::PopulationId label_pop = 2;
    loihi::PopulationId err_pos = 3;
    loihi::PopulationId err_neg = 4;

    explicit Probe(EmstdpOptions o = {})
        : opt(o), net(opt, 1, 1, 8, nullptr, {}, 4) {}

    /// Runs both phases manually and returns (h1, h2, e+, e-).
    struct Counts {
        std::vector<std::int32_t> h1, h2, ep, en;
    };
    Counts run(const std::vector<std::int32_t>& input_bias, std::size_t label) {
        auto& chip = net.chip();
        chip.reset_dynamic_state();
        chip.set_bias(net.input_pop(), input_bias);
        std::vector<std::int32_t> lb(4, 0);
        lb[label] = static_cast<std::int32_t>(0.75f * 64.0f);
        chip.set_bias(label_pop, lb);
        chip.set_phase(Phase::One);
        chip.run(64);
        Counts c;
        c.h1 = chip.spike_counts(net.output_pop(), Phase::One);
        chip.reset_membranes();
        chip.set_phase(Phase::Two);
        chip.run(64);
        c.h2 = chip.spike_counts(net.output_pop(), Phase::Two);
        c.ep = chip.spike_counts(err_pos, Phase::Two);
        c.en = chip.spike_counts(err_neg, Phase::Two);
        return c;
    }
};

}  // namespace

TEST(ErrorChannels, PositiveChannelFiresForUnderActiveTarget) {
    Probe p;
    const auto c = p.run(std::vector<std::int32_t>(8, 32), 2);
    // The labelled class fires on the + channel (target above prediction);
    // its - channel stays comparatively silent.
    EXPECT_GT(c.ep[2], 0);
    EXPECT_LE(c.en[2], c.ep[2] / 2);
}

TEST(ErrorChannels, NegativeChannelFiresForOverActiveNonTargets) {
    Probe p;
    const auto c = p.run(std::vector<std::int32_t>(8, 32), 2);
    for (std::size_t j = 0; j < 4; ++j) {
        if (j == 2) continue;
        // Any non-target class active in phase 1 must show negative error.
        if (c.h1[j] > 4) {
            EXPECT_GT(c.en[j], 0) << "class " << j;
            EXPECT_LE(c.ep[j], 1) << "class " << j;
        }
    }
}

TEST(ErrorChannels, SilentInPhaseOne) {
    Probe p;
    auto& chip = p.net.chip();
    chip.reset_dynamic_state();
    chip.set_bias(p.net.input_pop(), std::vector<std::int32_t>(8, 40));
    std::vector<std::int32_t> lb(4, 0);
    lb[1] = 48;
    chip.set_bias(p.label_pop, lb);
    chip.set_phase(Phase::One);
    chip.run(64);
    const auto ep = chip.spike_counts(p.err_pos, Phase::One);
    const auto en = chip.spike_counts(p.err_neg, Phase::One);
    EXPECT_EQ(std::accumulate(ep.begin(), ep.end(), 0), 0);
    EXPECT_EQ(std::accumulate(en.begin(), en.end(), 0), 0);
}

TEST(ErrorChannels, CorrectionMovesOutputTowardTarget) {
    Probe p;
    const auto c = p.run(std::vector<std::int32_t>(8, 32), 2);
    // Labelled class rate must rise in phase 2; strongly active wrong
    // classes must fall.
    EXPECT_GT(c.h2[2], c.h1[2]);
    for (std::size_t j = 0; j < 4; ++j) {
        if (j == 2) continue;
        if (c.h1[j] > 8) {
            EXPECT_LT(c.h2[j], c.h1[j]) << "class " << j;
        }
    }
}

TEST(ErrorChannels, ErrorShrinksAsOutputMatchesTarget) {
    // Train the same sample repeatedly: the accumulated |error| of the
    // labelled class must shrink as the weights converge.
    Probe p;
    Tensor img({1, 1, 8});
    for (std::size_t i = 0; i < 8; ++i) img[i] = (i < 4) ? 0.6f : 0.05f;
    const auto bias = data::quantize_to_bias(img, 64);

    const auto first = p.run(bias, 1);
    p.net.chip().apply_learning();
    for (int k = 0; k < 20; ++k) {
        p.net.train_sample(img, 1);
    }
    const auto later = p.run(bias, 1);
    const int err_first = first.ep[1] + first.en[1];
    const int err_later = later.ep[1] + later.en[1];
    EXPECT_LT(err_later, err_first)
        << "error activity must decay as the sample is learned";
}

TEST(TraceBookkeeping, MatchesPhaseCountsExactly) {
    Probe p;
    const auto c = p.run(std::vector<std::int32_t>(8, 24), 0);
    auto& chip = p.net.chip();
    for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_EQ(chip.trace_y1(p.net.output_pop(), j), c.h2[j]) << j;
        EXPECT_EQ(chip.trace_tag(p.net.output_pop(), j), c.h1[j] + c.h2[j]) << j;
    }
    // Pre trace of the input: phase-1 count = programmed bias.
    EXPECT_EQ(chip.trace_x1(p.net.input_pop(), 0), 24);
}

TEST(FaGating, SilentForwardNeuronsGetNoHiddenError) {
    // Build a 2-layer FA network and force one hidden neuron silent by
    // zeroing the input; its error twin must never fire (the AND gate).
    EmstdpOptions opt;
    opt.feedback = core::FeedbackMode::FA;
    EmstdpNetwork net(opt, 1, 1, 6, nullptr, {5}, 3);
    // Populations: input 0, dense1 1, output 2, label 3, oe+ 4, oe- 5,
    // hid_err+ 6, hid_err- 7.
    auto& chip = net.chip();
    chip.reset_dynamic_state();
    chip.set_bias(net.input_pop(), std::vector<std::int32_t>(6, 0));  // silent
    std::vector<std::int32_t> lb(3, 0);
    lb[0] = 48;
    chip.set_bias(3, lb);
    chip.set_phase(Phase::One);
    chip.run(64);
    chip.reset_membranes();
    chip.set_phase(Phase::Two);
    chip.run(64);
    // With zero input, every hidden neuron was silent in phase 1, so the
    // whole hidden error population is gated shut even though the output
    // error is firing (label demands activity).
    const auto hep = chip.spike_counts(6, Phase::Two);
    const auto hen = chip.spike_counts(7, Phase::Two);
    EXPECT_EQ(std::accumulate(hep.begin(), hep.end(), 0), 0);
    EXPECT_EQ(std::accumulate(hen.begin(), hen.end(), 0), 0);
    const auto oep = chip.spike_counts(4, Phase::Two);
    EXPECT_GT(std::accumulate(oep.begin(), oep.end(), 0), 0)
        << "output error itself is ungated";
}

class RateCodeProperty : public testing::TestWithParam<int> {};

TEST_P(RateCodeProperty, SoftResetCountEqualsFlooredDrive) {
    // Property of the IF code (paper eq. 2): over a window, the spike count
    // equals floor(total integrated drive / theta) for any constant drive.
    const int bias = GetParam();
    loihi::Chip chip;
    loihi::PopulationConfig pc;
    pc.name = "p";
    pc.size = 1;
    pc.compartment.vth = 97;  // deliberately not a divisor of anything
    const auto pop = chip.add_population(pc);
    chip.finalize();
    chip.set_bias(pop, {bias});
    chip.run(64);
    // A compartment can emit at most one spike per step, so drives above
    // theta saturate the code at T spikes (backlog accumulates in v).
    EXPECT_EQ(chip.spike_counts(pop, Phase::One)[0],
              std::min<std::int64_t>(64, std::int64_t{bias} * 64 / 97));
}

INSTANTIATE_TEST_SUITE_P(DriveSweep, RateCodeProperty,
                         testing::Values(1, 3, 13, 48, 97, 150));
