// Tests for the full ANN -> SNN conversion baseline (snn/deploy.hpp): the
// balanced/quantized dense head, the inference-only chip deployment, and its
// fidelity to the float model it was converted from.

#include <gtest/gtest.h>

#include "ann/model.hpp"
#include "ann/trainer.hpp"
#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "snn/deploy.hpp"

using namespace neuro;

namespace {

/// Shared fixture: a small digits task with a briefly pretrained paper CNN.
struct ConversionCase {
    data::Dataset train;
    data::Dataset test;
    ann::PaperTopology topo{};
    ann::Model model;
    double ann_accuracy = 0.0;

    ConversionCase() {
        data::GenOptions gen;
        gen.count = 700;
        gen.seed = 5;
        gen.height = 16;
        gen.width = 16;
        const auto all = data::make_digits(gen);
        std::tie(train, test) = data::split(all, 500);

        topo.in_c = 1;
        topo.in_h = 16;
        topo.in_w = 16;
        common::Rng rng(7);
        model = ann::build_paper_model(topo, rng);
        ann::TrainOptions opt;
        opt.epochs = 3;
        common::Rng train_rng(11);
        ann::train(model, train, opt, train_rng);
        ann_accuracy = ann::evaluate(model, test);
    }
};

ConversionCase& shared_case() {
    static ConversionCase c;
    return c;
}

}  // namespace

TEST(ConvertFullModel, LayersAreWithinTheWeightGrid) {
    auto& c = shared_case();
    const auto m = snn::convert_full_model(c.model, c.topo, c.train, 0.999f, 8);
    for (const auto* layer : {&m.fc1, &m.fc2}) {
        EXPECT_GE(layer->vth, 1);
        EXPECT_GT(layer->lambda, 0.0f);
        ASSERT_EQ(layer->weights.size(), layer->in * layer->out);
        ASSERT_EQ(layer->bias.size(), layer->out);
        std::int32_t peak = 0;
        for (const auto w : layer->weights) {
            EXPECT_GE(w, -128);
            EXPECT_LE(w, 127);
            peak = std::max(peak, std::abs(w));
        }
        // The balancing maps the largest |weight| to the top of the grid.
        EXPECT_GE(peak, 120);
    }
    EXPECT_EQ(m.fc1.in, c.topo.feature_size());
    EXPECT_EQ(m.fc1.out, c.topo.hidden);
    EXPECT_EQ(m.fc2.out, c.topo.classes);
}

TEST(ConvertFullModel, RejectsNonPaperModels) {
    auto& c = shared_case();
    ann::Model tiny;
    EXPECT_THROW(snn::convert_full_model(tiny, c.topo, c.train, 0.999f, 8),
                 std::invalid_argument);
}

TEST(ConvertedNetwork, TracksTheFloatModelAccuracy) {
    auto& c = shared_case();
    const auto m = snn::convert_full_model(c.model, c.topo, c.train, 0.999f, 8);
    snn::ConvertedNetwork net(m, c.topo, /*phase_length=*/64);

    std::size_t agree = 0, correct = 0;
    for (const auto& s : c.test.samples) {
        const auto p = net.predict(s.image);
        agree += p == c.model.predict(s.image) ? 1 : 0;
        correct += p == s.label ? 1 : 0;
    }
    const double n = static_cast<double>(c.test.size());
    const double acc = static_cast<double>(correct) / n;
    // Conversion loses a few points to rate quantization but must stay close
    // to the float model and far above chance.
    EXPECT_GT(acc, c.ann_accuracy - 0.15);
    EXPECT_GT(acc, 0.5);
    EXPECT_GT(static_cast<double>(agree) / n, 0.6);
}

TEST(ConvertedNetwork, LongerWindowsDoNotLoseAccuracy) {
    auto& c = shared_case();
    const auto m = snn::convert_full_model(c.model, c.topo, c.train, 0.999f, 8);
    const auto accuracy_at = [&](std::int32_t T) {
        snn::ConvertedNetwork net(m, c.topo, T);
        std::size_t correct = 0;
        for (std::size_t i = 0; i < 120; ++i) {
            const auto& s = c.test.samples[i];
            correct += net.predict(s.image) == s.label ? 1 : 0;
        }
        return static_cast<double>(correct) / 120.0;
    };
    const double coarse = accuracy_at(16);
    const double fine = accuracy_at(96);
    EXPECT_GE(fine, coarse - 0.05);  // finer rate code, same or better
}

TEST(ConvertedNetwork, ValidatesGeometry) {
    auto& c = shared_case();
    const auto m = snn::convert_full_model(c.model, c.topo, c.train, 0.999f, 8);
    EXPECT_THROW(snn::ConvertedNetwork(m, c.topo, 0), std::invalid_argument);

    snn::ConvertedNetwork net(m, c.topo, 32);
    common::Tensor wrong({1, 8, 8});
    EXPECT_THROW(net.predict(wrong), std::invalid_argument);
}

TEST(ConvertedNetwork, IsInferenceOnlyAndStateless) {
    auto& c = shared_case();
    const auto m = snn::convert_full_model(c.model, c.topo, c.train, 0.999f, 8);
    snn::ConvertedNetwork net(m, c.topo, 64);
    // No plastic projections anywhere: apply_learning must be a no-op on the
    // weights.
    const auto w_before = net.chip().weights(3);  // fc2 projection
    const auto& s = c.test.samples.front();
    const auto first = net.output_counts(s.image);
    net.chip().apply_learning();
    const auto second = net.output_counts(s.image);
    EXPECT_EQ(first, second);  // per-sample reset makes repeats identical
    EXPECT_EQ(net.chip().weights(3), w_before);
}
