// Multi-chip sharded execution (loihi/router.hpp, core/sharded_network.hpp,
// runtime/sharded_backend.hpp): bit-identity with the single chip where the
// contract promises it, determinism everywhere, routing/learning across the
// cut, transparent spill, and session independence under concurrency.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "core/network.hpp"
#include "core/sharded_network.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "runtime/backend.hpp"
#include "runtime/compiled_model.hpp"
#include "runtime/sharded_backend.hpp"
#include "runtime/weights.hpp"

using namespace neuro;

namespace {

constexpr std::size_t kSide = 10;
constexpr std::size_t kClasses = 10;
constexpr std::size_t kHidden = 30;

data::Dataset digits(std::size_t count, std::uint64_t seed = 5) {
    data::GenOptions gen;
    gen.count = count;
    gen.seed = seed;
    gen.height = kSide;
    gen.width = kSide;
    return data::make_digits(gen);
}

core::EmstdpOptions small_opt(std::uint64_t seed = 7) {
    core::EmstdpOptions opt;
    opt.seed = seed;
    return opt;
}

core::EmstdpNetwork single_net(const core::EmstdpOptions& opt) {
    return core::EmstdpNetwork(opt, 1, kSide, kSide, nullptr, {kHidden},
                               kClasses);
}

core::ShardedEmstdpNetwork sharded_net(const core::EmstdpOptions& opt,
                                       std::size_t shards,
                                       std::size_t threads = 0) {
    return core::ShardedEmstdpNetwork(opt, 1, kSide, kSide, nullptr, {kHidden},
                                      kClasses, shards, threads);
}

void expect_activity_equal(const loihi::ActivityTotals& a,
                           const loihi::ActivityTotals& b) {
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.compartment_updates, b.compartment_updates);
    EXPECT_EQ(a.synaptic_ops, b.synaptic_ops);
    EXPECT_EQ(a.spikes, b.spikes);
    EXPECT_EQ(a.learning_synapse_visits, b.learning_synapse_visits);
    EXPECT_EQ(a.host_io_writes, b.host_io_writes);
}

runtime::ModelSpec sharded_spec(std::size_t shards,
                                std::uint64_t seed = 7) {
    runtime::ModelSpec spec;
    spec.input(1, kSide, kSide)
        .hidden_layers({kHidden})
        .output_classes(kClasses)
        .with_options(small_opt(seed))
        .with_shards(shards);
    return spec;
}

}  // namespace

// ---- acceptance: shard count 1 degenerates to today's path, bit for bit ---

TEST(ShardedExecution, SingleShardBitIdenticalToSingleChip) {
    const auto train = digits(24);
    const auto probe = digits(8, 17);
    const auto opt = small_opt();

    auto reference = single_net(opt);
    auto sharded = sharded_net(opt, 1);
    ASSERT_EQ(sharded.num_shards(), 1u);

    EXPECT_EQ(reference.plastic_weights(), sharded.plastic_weights());
    for (const auto& s : train.samples) {
        reference.train_sample(s.image, s.label);
        sharded.train_sample(s.image, s.label);
    }
    EXPECT_EQ(reference.plastic_weights(), sharded.plastic_weights());
    for (const auto& s : probe.samples) {
        EXPECT_EQ(reference.output_counts(s.image), sharded.output_counts(s.image));
        EXPECT_EQ(reference.predict(s.image), sharded.predict(s.image));
    }
    expect_activity_equal(reference.chip().activity(), sharded.activity());
}

// ---- multi-shard: the forward pass consumes no RNG, so inference must be
// bit-identical to the single chip for ANY shard count --------------------

TEST(ShardedExecution, MultiShardInferenceBitIdenticalToSingleChip) {
    const auto probe = digits(10, 17);
    const auto opt = small_opt();
    auto reference = single_net(opt);

    for (const std::size_t shards : {2u, 4u}) {
        SCOPED_TRACE(shards);
        auto sharded = sharded_net(opt, shards);
        ASSERT_EQ(sharded.num_shards(), shards);
        EXPECT_GT(sharded.plan().cut_synapses, 0u);
        for (const auto& s : probe.samples) {
            EXPECT_EQ(reference.output_counts(s.image),
                      sharded.output_counts(s.image));
            EXPECT_EQ(reference.predict(s.image), sharded.predict(s.image));
        }
        EXPECT_GT(sharded.chips().routed_spikes(), 0u);
    }
}

// ---- multi-shard training: with stochastic rounding off the whole
// protocol is RNG-free, so even learning must match the single chip ------

TEST(ShardedExecution, MultiShardTrainingBitIdenticalWithoutStochasticRounding) {
    auto opt = small_opt();
    opt.stochastic_rounding = false;
    const auto train = digits(16);
    const auto probe = digits(6, 29);

    auto reference = single_net(opt);
    for (const auto& s : train.samples) reference.train_sample(s.image, s.label);
    std::vector<std::vector<std::int32_t>> probe_counts;
    for (const auto& s : probe.samples)
        probe_counts.push_back(reference.output_counts(s.image));
    // Snapshot after exactly one train pass + one probe pass; each sharded
    // run below performs the identical sequence.
    const loihi::ActivityTotals reference_activity = reference.chip().activity();

    for (const std::size_t shards : {2u, 4u}) {
        SCOPED_TRACE(shards);
        auto sharded = sharded_net(opt, shards);
        for (const auto& s : train.samples) sharded.train_sample(s.image, s.label);
        EXPECT_EQ(reference.plastic_weights(), sharded.plastic_weights());
        for (std::size_t i = 0; i < probe.samples.size(); ++i)
            EXPECT_EQ(probe_counts[i], sharded.output_counts(probe.samples[i].image));
        // The energy model's inputs survive sharding: every counter equals
        // the single chip's when no RNG stream diverges.
        expect_activity_equal(reference_activity, sharded.activity());
    }
}

// ---- determinism: stochastic rounding on, any shard count, any thread
// count, any run -> identical weights ------------------------------------

TEST(ShardedExecution, MultiShardTrainingDeterministic) {
    const auto train = digits(12);
    for (const std::size_t shards : {2u, 4u}) {
        SCOPED_TRACE(shards);
        std::vector<std::vector<std::vector<std::int32_t>>> results;
        for (const std::size_t threads : {1u, 2u, 4u}) {
            auto net = sharded_net(small_opt(), shards, threads);
            for (const auto& s : train.samples) net.train_sample(s.image, s.label);
            results.push_back(net.plastic_weights());
        }
        EXPECT_EQ(results[0], results[1]);
        EXPECT_EQ(results[0], results[2]);
        // Repeat run, same thread count: identical again.
        auto net = sharded_net(small_opt(), shards, 2);
        for (const auto& s : train.samples) net.train_sample(s.image, s.label);
        EXPECT_EQ(results[0], net.plastic_weights());
    }
}

// ---- multi-shard training learns (cut plastic projections update) --------

namespace {

/// Prototype-per-class task (the configuration of core_test's on-chip
/// learning tests — the digits substitute needs far more data than a unit
/// test should spend).
data::Dataset toy_task(std::size_t dims, std::size_t classes, std::size_t n,
                       common::Rng& rng,
                       const std::vector<std::vector<float>>& protos) {
    data::Dataset d;
    d.name = "toy";
    d.channels = 1;
    d.height = 1;
    d.width = dims;
    d.num_classes = classes;
    for (std::size_t i = 0; i < n; ++i) {
        const auto c = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(classes) - 1));
        common::Tensor x({1, 1, dims});
        for (std::size_t k = 0; k < dims; ++k) {
            const float v =
                protos[c][k] + static_cast<float>(rng.normal(0.0, 0.08));
            x[k] = v < 0.0f ? 0.0f : (v > 1.0f ? 1.0f : v);
        }
        d.samples.push_back({std::move(x), c});
    }
    return d;
}

}  // namespace

TEST(ShardedExecution, MultiShardTrainingLearns) {
    const std::size_t dims = 20, classes = 4;
    common::Rng rng(12);
    std::vector<std::vector<float>> protos(classes, std::vector<float>(dims));
    for (auto& p : protos)
        for (auto& v : p) v = static_cast<float>(rng.uniform());
    const auto train = toy_task(dims, classes, 500, rng, protos);
    const auto test = toy_task(dims, classes, 120, rng, protos);

    core::ShardedEmstdpNetwork net(small_opt(), 1, 1, dims, nullptr, {30},
                                   classes, /*num_shards=*/2);
    ASSERT_EQ(net.num_shards(), 2u);
    ASSERT_GT(net.plan().cut_synapses, 0u);

    // Both plastic layers must actually change — including any that cross
    // the cut — and accuracy must clear chance (0.25) by a wide margin.
    const auto w0 = net.plastic_weights();
    for (const auto& s : train.samples) net.train_sample(s.image, s.label);
    const auto w1 = net.plastic_weights();
    ASSERT_EQ(w0.size(), w1.size());
    for (std::size_t l = 0; l < w0.size(); ++l)
        EXPECT_NE(w0[l], w1[l]) << "plastic layer " << l << " never updated";

    std::size_t hits = 0;
    for (const auto& s : test.samples)
        if (net.predict(s.image) == s.label) ++hits;
    EXPECT_GT(static_cast<double>(hits) / static_cast<double>(test.size()), 0.6);
}

// ---- router timing: delays and resets, step for step ----------------------

namespace {

/// src (1 IF neuron, bias-driven) -> dst (1 silent integrator) through one
/// synapse with the given extra delay.
loihi::Chip two_pop_chain(std::uint8_t delay) {
    loihi::Chip chip;
    loihi::PopulationConfig src;
    src.name = "src";
    src.size = 1;
    src.compartment.vth = 2;
    const auto s = chip.add_population(src);
    loihi::PopulationConfig dst;
    dst.name = "dst";
    dst.size = 1;
    dst.compartment.vth = 1 << 20;
    const auto d = chip.add_population(dst);
    loihi::ProjectionConfig pc;
    pc.name = "link";
    pc.src = s;
    pc.dst = d;
    chip.add_projection(pc, {{0, 0, 10, delay}});
    chip.finalize();
    chip.set_bias(s, {1});
    return chip;
}

}  // namespace

TEST(ShardedExecution, CrossShardDelaysAndResetsMatchSingleChipStepForStep) {
    for (const std::uint8_t delay : {std::uint8_t{0}, std::uint8_t{3}}) {
        SCOPED_TRACE(static_cast<int>(delay));
        auto single = two_pop_chain(delay);
        loihi::ShardPlan plan;
        plan.num_shards = 2;
        plan.shard_of = {0, 1};
        plan.cores_per_shard = {1, 1};
        loihi::ShardedChip sharded(single, plan, /*step_threads=*/1);
        ASSERT_TRUE(sharded.projection_is_cut(0));
        // (The split captured the prototype's bias registers; resets below
        // keep them, exactly like the single chip.)

        for (std::size_t t = 0; t < 20; ++t) {
            // Membrane resets mid-flight: pending input dies, delayed events
            // on the wheel survive — on both substrates identically.
            if (t == 7) {
                single.reset_membranes();
                sharded.reset_membranes();
            }
            if (t == 13) {
                single.reset_dynamic_state();
                sharded.reset_dynamic_state();
            }
            single.step();
            sharded.step();
            EXPECT_EQ(single.membrane(1, 0), sharded.membrane(1, 0))
                << "step " << t;
            EXPECT_EQ(single.spike_counts_total(0),
                      sharded.spike_counts_total(0))
                << "step " << t;
        }
    }
}

// ---- runtime surface -------------------------------------------------------

TEST(ShardedExecution, ShardedBackendKeepsSessionApi) {
    const auto train = digits(20);
    const auto probe = digits(8, 31);
    const auto model = runtime::CompiledModel::compile(
        sharded_spec(2), runtime::BackendKind::ShardedLoihiSim);
    EXPECT_EQ(model->backend(), runtime::BackendKind::ShardedLoihiSim);

    auto session = model->open_session();
    ASSERT_NE(session->native_sharded_network(), nullptr);
    EXPECT_EQ(session->native_sharded_network()->num_shards(), 2u);
    common::Rng rng(42);
    core::train_epoch(*session, train, rng);

    // Canonical snapshot: loads into the single-chip backend, and identical
    // weights give bit-identical inference there (the forward pass is
    // integer and RNG-free).
    const auto snap = session->weights();
    auto single = runtime::CompiledModel::compile(sharded_spec(0),
                                                  runtime::BackendKind::LoihiSim)
                      ->with_weights(snap)
                      ->open_session();
    for (const auto& s : probe.samples) {
        EXPECT_EQ(session->output_counts(s.image), single->output_counts(s.image));
        EXPECT_EQ(session->predict(s.image), single->predict(s.image));
    }

    // Activity + energy capabilities work on the sharded session.
    ASSERT_NE(session->activity(), nullptr);
    EXPECT_GT(session->activity()->spikes, 0u);
    const auto report =
        core::measure_energy(*session, probe, 4, false, loihi::EnergyModelParams{});
    EXPECT_GT(report.fps, 0.0);
    EXPECT_GT(report.cores, 0u);
}

TEST(ShardedExecution, AutoPlanOnSmallModelDegeneratesToSingleChipPath) {
    const auto model = runtime::CompiledModel::compile(
        sharded_spec(0), runtime::BackendKind::ShardedLoihiSim);
    EXPECT_EQ(model->backend(), runtime::BackendKind::ShardedLoihiSim);
    auto session = model->open_session();
    // Degenerate plan: the session IS the single-chip path.
    EXPECT_NE(session->native_network(), nullptr);
    EXPECT_EQ(session->native_sharded_network(), nullptr);

    const auto single = runtime::CompiledModel::compile(
        sharded_spec(0), runtime::BackendKind::LoihiSim);
    EXPECT_EQ(session->weights().layers, single->initial_weights().layers);
}

TEST(ShardedExecution, LoihiSimTransparentlySpillsOverBudgetModels) {
    // ~145 cores at 10 neurons/core: more than one chip, but every
    // population fits one, so the LoihiSim compile spills to a shard plan
    // behind the same API.
    runtime::ModelSpec spec;
    spec.input(1, kSide, kSide)
        .hidden_layers({700, 700})
        .output_classes(kClasses)
        .with_options(small_opt());
    const auto model =
        runtime::CompiledModel::compile(spec, runtime::BackendKind::LoihiSim);
    EXPECT_EQ(model->backend(), runtime::BackendKind::ShardedLoihiSim);
    auto session = model->open_session();
    auto* net = session->native_sharded_network();
    ASSERT_NE(net, nullptr);
    EXPECT_GE(net->num_shards(), 2u);
    for (const auto cores : net->plan().cores_per_shard)
        EXPECT_LE(cores, loihi::ChipLimits{}.num_cores);
}

TEST(ShardedExecution, UnshardablePopulationErrorsCleanlyOnShardedBackend) {
    // One dense layer of 2000 neurons at 10/core needs 200 cores — more
    // than a chip, and populations cannot split. The sharded backend must
    // reject it; the permissive single-chip simulator still accepts it.
    runtime::ModelSpec spec;
    spec.input(1, kSide, kSide)
        .hidden_layers({2000})
        .output_classes(kClasses)
        .with_options(small_opt());
    EXPECT_THROW(runtime::CompiledModel::compile(
                     spec.with_shards(2), runtime::BackendKind::ShardedLoihiSim),
                 std::invalid_argument);
    spec.with_shards(0);
    EXPECT_NO_THROW(runtime::CompiledModel::compile(
        spec, runtime::BackendKind::LoihiSim));
}

TEST(ShardedExecution, SpikeInsertionModeIsRejected) {
    auto opt = small_opt();
    opt.input_mode = core::InputMode::SpikeInsertion;
    EXPECT_THROW(core::ShardedEmstdpNetwork(opt, 1, kSide, kSide, nullptr,
                                            {kHidden}, kClasses, 2),
                 std::invalid_argument);
}

// ---- sessions: shared structure, independent state, concurrency ----------

TEST(ShardedExecution, ShardedSessionsShareStructureAndStayIndependent) {
    const auto train = digits(6);
    const auto model = runtime::CompiledModel::compile(
        sharded_spec(2), runtime::BackendKind::ShardedLoihiSim);

    auto a = model->open_session();
    auto b = model->open_session();
    auto& chips_a = a->native_sharded_network()->chips();
    auto& chips_b = b->native_sharded_network()->chips();
    for (std::size_t s = 0; s < chips_a.num_shards(); ++s) {
        EXPECT_TRUE(chips_a.shard(s).shares_structure_with(chips_b.shard(s)));
        EXPECT_TRUE(chips_a.shard(s).shares_weights_with(chips_b.shard(s)));
    }

    const auto b_before = b->weights();
    for (const auto& s : train.samples) a->train(s.image, s.label);
    EXPECT_EQ(b->weights().layers, b_before.layers);
    EXPECT_EQ(b->weights().layers, model->initial_weights().layers);
    EXPECT_NE(a->weights().layers, b_before.layers);
    for (std::size_t s = 0; s < chips_a.num_shards(); ++s)
        EXPECT_TRUE(chips_a.shard(s).shares_structure_with(chips_b.shard(s)));
}

TEST(ShardedExecution, ConcurrentShardedSessionsMatchSerial) {
    const auto train = digits(8);
    const auto probe = digits(6, 23);
    const auto model = runtime::CompiledModel::compile(
        sharded_spec(2), runtime::BackendKind::ShardedLoihiSim);

    // Serial ground truth.
    auto serial = model->open_session();
    for (const auto& s : train.samples) serial->train(s.image, s.label);
    const auto expected = serial->weights();

    // Two sessions train the same stream concurrently (each steps its own
    // shards on its own pool); both must reproduce the serial result.
    std::vector<std::unique_ptr<runtime::Session>> sessions;
    sessions.push_back(model->open_session());
    sessions.push_back(model->open_session());
    common::ThreadPool pool(2);
    pool.run(2, [&](std::size_t t) {
        for (const auto& s : train.samples) sessions[t]->train(s.image, s.label);
    });
    for (auto& session : sessions)
        EXPECT_EQ(session->weights().layers, expected.layers);
    for (const auto& s : probe.samples)
        EXPECT_EQ(sessions[0]->predict(s.image), sessions[1]->predict(s.image));
}

// ---- replication of a trained network across more chips -------------------

TEST(ShardedExecution, ShardingATrainedNetworkPreservesInference) {
    const auto train = digits(20);
    const auto probe = digits(8, 41);
    auto master = single_net(small_opt());
    for (const auto& s : train.samples) master.train_sample(s.image, s.label);

    core::ShardedEmstdpNetwork sharded(master, 2);
    EXPECT_EQ(master.plastic_weights(), sharded.plastic_weights());
    for (const auto& s : probe.samples) {
        EXPECT_EQ(master.output_counts(s.image), sharded.output_counts(s.image));
        EXPECT_EQ(master.predict(s.image), sharded.predict(s.image));
    }
}

TEST(ShardedExecution, SplitCapturesLiveLearningRulesAndClassMask) {
    auto opt = small_opt();
    opt.stochastic_rounding = false;  // training below must be RNG-free
    const auto train = digits(6);

    auto master = single_net(opt);
    // Post-finalize state the split must capture: reprogrammed microcode
    // (halved learning rate) and a class mask.
    master.set_learning_shift_offset(1);
    std::vector<bool> mask(kClasses, true);
    mask[3] = false;
    master.set_class_mask(mask);

    core::ShardedEmstdpNetwork sharded(master, 2);
    // Same reprogrammed rule on both substrates -> identical updates.
    for (const auto& s : train.samples) {
        master.train_sample(s.image, s.label);
        sharded.train_sample(s.image, s.label);
    }
    EXPECT_EQ(master.plastic_weights(), sharded.plastic_weights());
    // The captured clamp keeps the masked class silent on the split too.
    for (const auto& s : train.samples) EXPECT_NE(sharded.predict(s.image), 3u);
}
