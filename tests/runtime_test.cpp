// Tests for the session-based runtime API (src/runtime): spec -> compile ->
// session lifecycle, backend conformance, structure sharing / copy-on-write
// weights, bit-for-bit equivalence with the pre-runtime EmstdpNetwork path,
// cross-backend weight portability, and checkpoint round-trips.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "core/network.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "runtime/backend.hpp"
#include "runtime/compiled_model.hpp"
#include "runtime/loihi_backend.hpp"
#include "runtime/weights.hpp"

using namespace neuro;

namespace {

constexpr std::size_t kSide = 12;
constexpr std::size_t kClasses = 10;

data::Dataset digits(std::size_t count, std::uint64_t seed = 5) {
    data::GenOptions gen;
    gen.count = count;
    gen.seed = seed;
    gen.height = kSide;
    gen.width = kSide;
    return data::make_digits(gen);
}

runtime::ModelSpec small_spec(std::uint64_t seed = 7) {
    core::EmstdpOptions opt;
    opt.seed = seed;
    runtime::ModelSpec spec;
    spec.input(1, kSide, kSide)
        .hidden_layers({40})
        .output_classes(kClasses)
        .with_options(opt);
    return spec;
}

core::EmstdpNetwork legacy_network(std::uint64_t seed = 7) {
    core::EmstdpOptions opt;
    opt.seed = seed;
    return core::EmstdpNetwork(opt, 1, kSide, kSide, nullptr, {40}, kClasses);
}

void expect_activity_equal(const loihi::ActivityTotals& a,
                           const loihi::ActivityTotals& b) {
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.compartment_updates, b.compartment_updates);
    EXPECT_EQ(a.synaptic_ops, b.synaptic_ops);
    EXPECT_EQ(a.spikes, b.spikes);
    EXPECT_EQ(a.learning_synapse_visits, b.learning_synapse_visits);
    EXPECT_EQ(a.host_io_writes, b.host_io_writes);
}

}  // namespace

// ---- acceptance: bit-for-bit with the pre-runtime surface -----------------

TEST(Runtime, LoihiSessionBitIdenticalToLegacyNetwork) {
    const auto train = digits(48);
    const auto probe = digits(8, 17);

    auto legacy = legacy_network();
    const auto model = runtime::CompiledModel::compile(
        small_spec(), runtime::BackendKind::LoihiSim);
    auto session = model->open_session();

    common::Rng rng_a(42), rng_b(42);
    core::train_epoch(legacy, train, rng_a, true);
    core::train_epoch(*session, train, rng_b, true);

    // Weights: identical after a full training epoch.
    EXPECT_EQ(legacy.plastic_weights(), session->weights().layers);

    // Spike counts on fresh probe images: identical.
    for (const auto& s : probe.samples)
        EXPECT_EQ(legacy.output_counts(s.image),
                  session->output_counts(s.image));

    // Activity totals (the energy model's input): identical.
    ASSERT_NE(session->activity(), nullptr);
    expect_activity_equal(legacy.chip().activity(), *session->activity());
}

// ---- acceptance: concurrent sessions over one shared model ----------------

TEST(Runtime, ConcurrentSessionsShareStructureWithoutDeepCopy) {
    const auto test = digits(60, 23);
    const auto model = runtime::CompiledModel::compile(
        small_spec(), runtime::BackendKind::LoihiSim);

    // Serial ground truth.
    auto serial = model->open_session();
    std::vector<std::size_t> expected;
    expected.reserve(test.size());
    for (const auto& s : test.samples)
        expected.push_back(serial->predict(s.image));

    const std::size_t threads = 4;
    std::vector<std::unique_ptr<runtime::Session>> sessions;
    for (std::size_t t = 0; t < threads; ++t)
        sessions.push_back(model->open_session());

    // No per-thread chip deep-copy: every session reads the model's shared
    // structure, and inference never detaches the weight image.
    const auto& chip0 = sessions[0]->native_network()->chip();
    for (std::size_t t = 1; t < threads; ++t) {
        const auto& chip_t = sessions[t]->native_network()->chip();
        EXPECT_TRUE(chip0.shares_structure_with(chip_t));
        EXPECT_TRUE(chip0.shares_weights_with(chip_t));
    }

    std::vector<std::size_t> got(test.size(), 0);
    common::ThreadPool pool(threads);
    pool.run(threads, [&](std::size_t t) {
        for (std::size_t i = t; i < test.size(); i += threads)
            got[i] = sessions[t]->predict(test.samples[i].image);
    });
    EXPECT_EQ(got, expected);

    // Inference alone never copied the weight image.
    for (std::size_t t = 1; t < threads; ++t)
        EXPECT_TRUE(chip0.shares_weights_with(
            sessions[t]->native_network()->chip()));
}

TEST(Runtime, TrainingDetachesWeightsCopyOnWrite) {
    const auto train = digits(4);
    const auto model = runtime::CompiledModel::compile(
        small_spec(), runtime::BackendKind::LoihiSim);
    auto a = model->open_session();
    auto b = model->open_session();

    const auto& chip_a = a->native_network()->chip();
    const auto& chip_b = b->native_network()->chip();
    ASSERT_TRUE(chip_a.shares_weights_with(chip_b));

    const auto b_before = b->weights();
    a->train(train.samples[0].image, train.samples[0].label);

    // a detached and diverged; b still reads the original image.
    EXPECT_FALSE(chip_a.shares_weights_with(chip_b));
    EXPECT_TRUE(chip_a.shares_structure_with(chip_b));
    EXPECT_EQ(b->weights().layers, b_before.layers);
    EXPECT_EQ(b->weights().layers, model->initial_weights().layers);
    EXPECT_NE(a->weights().layers, b_before.layers);
}

TEST(Runtime, SessionsOpenedLaterStartFromFrozenState) {
    const auto train = digits(6);
    const auto model = runtime::CompiledModel::compile(
        small_spec(), runtime::BackendKind::LoihiSim);
    auto first = model->open_session();
    for (const auto& s : train.samples) first->train(s.image, s.label);

    // A session opened after `first` trained is unaffected by it.
    auto second = model->open_session();
    EXPECT_EQ(second->weights().layers, model->initial_weights().layers);
}

// ---- explicit replication (no implicit copies) ----------------------------

TEST(Runtime, ReplicateIsExplicitAndIndependent) {
    static_assert(!std::is_copy_assignable_v<core::EmstdpNetwork>,
                  "implicit copy-assignment must be deleted");
    static_assert(!std::is_copy_constructible_v<core::EmstdpNetwork>,
                  "implicit copy-construction must be inaccessible");

    const auto train = digits(6);
    auto master = legacy_network();
    auto replica = master.replicate();

    const auto w0 = master.plastic_weights();
    EXPECT_EQ(w0, replica.plastic_weights());

    for (const auto& s : train.samples) replica.train_sample(s.image, s.label);
    EXPECT_EQ(w0, master.plastic_weights());  // master untouched
    EXPECT_NE(w0, replica.plastic_weights());

    // Replicas of a *trained* network capture its weights.
    auto replica2 = replica.replicate();
    EXPECT_EQ(replica.plastic_weights(), replica2.plastic_weights());
}

TEST(Runtime, AdoptCapturesMasterState) {
    const auto train = digits(12);
    const auto probe = digits(8, 31);
    auto master = legacy_network();
    common::Rng rng(9);
    core::train_epoch(master, train, rng);

    const auto model = runtime::adopt(master);
    auto session = model->open_session();
    EXPECT_EQ(master.plastic_weights(), session->weights().layers);
    for (const auto& s : probe.samples)
        EXPECT_EQ(master.predict(s.image), session->predict(s.image));
}

// ---- cross-backend parity --------------------------------------------------

TEST(Runtime, SnapshotLoadsAcrossBackendsWithConsistentPredictions) {
    const auto all = digits(260, 3);
    const auto [train, test] = data::split(all, 200);

    const auto spec = small_spec();
    const auto chip_model =
        runtime::CompiledModel::compile(spec, runtime::BackendKind::LoihiSim);
    auto chip_session = chip_model->open_session();
    common::Rng rng(42);
    core::train_epoch(*chip_session, train, rng);

    // Same snapshot, both backends (no conv stack: the raw image doubles as
    // the rate vector on the reference).
    const auto snap = chip_session->weights();
    auto ref_session =
        runtime::CompiledModel::compile(spec, runtime::BackendKind::Reference)
            ->with_weights(snap)
            ->open_session();

    // Round-trip through the reference's float weights stays on the same
    // chip-grid points.
    EXPECT_EQ(ref_session->weights().layers, snap.layers);

    std::size_t agree = 0;
    for (const auto& s : test.samples)
        if (ref_session->predict(s.image) == chip_session->predict(s.image))
            ++agree;
    // 8-bit integer vs float dynamics: identical weights, near-identical
    // decisions (empirically ~90%+; the bound leaves quantization margin).
    EXPECT_GE(static_cast<double>(agree) / static_cast<double>(test.size()),
              0.75);
}

TEST(Runtime, BackendsConformToSessionContract) {
    const auto train = digits(8);
    for (const auto* backend : runtime::backends()) {
        SCOPED_TRACE(backend->name());
        const auto model = backend->compile(small_spec());
        EXPECT_EQ(model->backend(), backend->kind());
        auto session = model->open_session();

        // train/predict/output_counts work and are self-consistent.
        for (const auto& s : train.samples) session->train(s.image, s.label);
        const auto counts = session->output_counts(train.samples[0].image);
        EXPECT_EQ(counts.size(), kClasses);
        EXPECT_LT(session->predict(train.samples[0].image), kClasses);

        // Weight snapshots round-trip through the canonical representation.
        const auto snap = session->weights();
        ASSERT_EQ(snap.layers.size(), 2u);
        session->load_weights(snap);
        EXPECT_EQ(session->weights().layers, snap.layers);

        // Knobs are accepted on every backend.
        session->seed_noise(123);
        session->set_learning_shift_offset(1);
        std::vector<bool> mask(kClasses, true);
        mask[0] = false;
        session->set_class_mask(mask);
    }
}

TEST(Runtime, ReferenceBackendRejectsConvSpecs) {
    snn::ConvertedStack stack;
    stack.conv1.spec = {1, kSide, kSide, 1, 3, 1};
    stack.conv1.weights.assign(stack.conv1.spec.fan_in(), 1);
    stack.conv1.bias.assign(stack.conv1.spec.out_size(), 0);
    stack.conv2.spec = {1, stack.conv1.spec.out_h(), stack.conv1.spec.out_w(),
                        1, 3, 1};
    stack.conv2.weights.assign(stack.conv2.spec.fan_in(), 1);
    stack.conv2.bias.assign(stack.conv2.spec.out_size(), 0);

    auto spec = small_spec();
    spec.with_conv(stack);
    EXPECT_THROW(runtime::CompiledModel::compile(
                     spec, runtime::BackendKind::Reference),
                 std::invalid_argument);
    // The chip backend accepts the same spec.
    EXPECT_NO_THROW(runtime::CompiledModel::compile(
        spec, runtime::BackendKind::LoihiSim));
}

TEST(Runtime, SpecValidationRejectsNonsense) {
    EXPECT_THROW(runtime::ModelSpec{}.validate(), std::invalid_argument);
    auto spec = small_spec();
    spec.output_classes(0);
    EXPECT_THROW(
        runtime::CompiledModel::compile(spec, runtime::BackendKind::LoihiSim),
        std::invalid_argument);
}

// ---- checkpointing ---------------------------------------------------------

TEST(Runtime, SnapshotSaveLoadRoundTrip) {
    const auto train = digits(16);
    const auto probe = digits(8, 19);
    const auto model = runtime::CompiledModel::compile(
        small_spec(), runtime::BackendKind::LoihiSim);
    auto session = model->open_session();
    common::Rng rng(42);
    core::train_epoch(*session, train, rng);

    const std::string path = "runtime_test_roundtrip.weights";
    session->save(path);
    const auto loaded = runtime::load_snapshot(path);
    EXPECT_EQ(loaded.layers, session->weights().layers);

    // A fresh model seeded with the loaded snapshot reproduces the trained
    // session's behaviour exactly (same backend, same weights).
    auto restored = model->with_weights(loaded)->open_session();
    EXPECT_EQ(restored->weights().layers, session->weights().layers);
    for (const auto& s : probe.samples)
        EXPECT_EQ(restored->output_counts(s.image),
                  session->output_counts(s.image));
    std::remove(path.c_str());
}

// ---- snapshot-format hardening ----------------------------------------------

namespace {

/// Writes a snapshot in the PR 2 v1 layout (no checksum) so the v1
/// compatibility contract stays pinned even though save_snapshot now
/// emits v2.
void write_v1_snapshot(const std::string& path,
                       const runtime::WeightSnapshot& snap) {
    std::ofstream out(path, std::ios::binary);
    auto put32 = [&](std::uint32_t v) {
        out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    put32(0x4E525753);  // "NRWS"
    put32(1);           // version 1
    put32(static_cast<std::uint32_t>(snap.layers.size()));
    for (const auto& layer : snap.layers) {
        put32(static_cast<std::uint32_t>(layer.size()));
        for (const auto w : layer) put32(static_cast<std::uint32_t>(w));
    }
}

}  // namespace

TEST(Runtime, SnapshotV1FilesStillLoad) {
    const runtime::WeightSnapshot snap{{{5, -6, 7}, {8, -9}}};
    const std::string path = "runtime_test_v1.weights";
    write_v1_snapshot(path, snap);
    EXPECT_EQ(runtime::load_snapshot(path).layers, snap.layers);
    std::remove(path.c_str());
}

TEST(Runtime, SnapshotRejectsCorruptionAndTruncation) {
    const runtime::WeightSnapshot snap{{{11, 22, 33, 44}, {55, 66}}};
    const std::string path = "runtime_test_corrupt.weights";
    runtime::save_snapshot(path, snap);

    // Baseline: the untouched file round-trips.
    EXPECT_EQ(runtime::load_snapshot(path).layers, snap.layers);

    // One flipped payload byte trips the trailing checksum.
    {
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(14);
        char b = 0x21;
        f.write(&b, 1);
    }
    EXPECT_THROW(runtime::load_snapshot(path), std::runtime_error);

    // A truncated file fails loudly too (checksum or short read).
    runtime::save_snapshot(path, snap);
    std::filesystem::resize_file(path, std::filesystem::file_size(path) - 5);
    EXPECT_THROW(runtime::load_snapshot(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(Runtime, SnapshotRejectsAbsurdCountsBeforeAllocating) {
    // A hand-built file whose layer count / element counts announce far
    // more data than the file holds must be rejected up front (clear
    // error, no multi-gigabyte resize, no bad_alloc).
    const std::string path = "runtime_test_absurd.weights";
    auto write_header = [&](std::uint32_t layers, std::uint32_t elements) {
        std::ofstream out(path, std::ios::binary);
        auto put32 = [&](std::uint32_t v) {
            out.write(reinterpret_cast<const char*>(&v), sizeof(v));
        };
        put32(0x4E525753);
        put32(1);  // v1: no checksum to satisfy, purely the size checks
        put32(layers);
        if (layers > 0) put32(elements);
    };
    write_header(0xFFFFFFFFu, 0);  // absurd layer count
    EXPECT_THROW(runtime::load_snapshot(path), std::runtime_error);
    write_header(1, 0x7FFFFFFFu);  // absurd element count in one layer
    EXPECT_THROW(runtime::load_snapshot(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(Runtime, EnergyMeasurementThroughSessions) {
    const auto ds = digits(8);
    const loihi::EnergyModelParams params;

    auto chip_session = runtime::CompiledModel::compile(
                            small_spec(), runtime::BackendKind::LoihiSim)
                            ->open_session();
    const auto report = core::measure_energy(*chip_session, ds, 4, true, params);
    EXPECT_GT(report.fps, 0.0);

    auto ref_session = runtime::CompiledModel::compile(
                           small_spec(), runtime::BackendKind::Reference)
                           ->open_session();
    EXPECT_EQ(ref_session->activity(), nullptr);
    EXPECT_THROW(core::measure_energy(*ref_session, ds, 4, true, params),
                 std::invalid_argument);
}

// ---- the trainer loops stay equivalent across surfaces ----------------------

TEST(Runtime, SessionTrainEpochMatchesNetworkTrainEpoch) {
    const auto all = digits(80, 11);
    const auto [train, test] = data::split(all, 60);

    auto legacy = legacy_network();
    auto session = runtime::CompiledModel::compile(
                       small_spec(), runtime::BackendKind::LoihiSim)
                       ->open_session();

    common::Rng rng_a(7), rng_b(7);
    const double preq_a = core::train_epoch(legacy, train, rng_a, true);
    const double preq_b = core::train_epoch(*session, train, rng_b, true);
    EXPECT_DOUBLE_EQ(preq_a, preq_b);
    EXPECT_DOUBLE_EQ(core::evaluate(legacy, test),
                     core::evaluate(*session, test));
}
