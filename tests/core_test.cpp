// Tests for the paper's primary contribution: EMSTDP on the chip. Covers
// the derived learning shift, network structure (FA-vs-DFA resource claims
// of Sec. III-A), on-chip learning on toy tasks, the incremental-learning
// hooks, and the input-encoding equivalence (adaptation technique 4).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "common/rng.hpp"
#include "core/network.hpp"
#include "core/trainer.hpp"

using namespace neuro::core;
using neuro::common::Rng;
using neuro::common::Tensor;

namespace {

struct ToyTask {
    std::vector<std::vector<float>> protos;
    std::size_t dims, classes;

    ToyTask(std::size_t d, std::size_t c, Rng& rng) : dims(d), classes(c) {
        for (std::size_t k = 0; k < c; ++k) {
            std::vector<float> p(d);
            for (auto& v : p) v = rng.bernoulli(0.5) ? 0.75f : 0.05f;
            protos.push_back(std::move(p));
        }
    }

    std::pair<Tensor, std::size_t> sample(Rng& rng) const {
        const auto c = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(classes) - 1));
        Tensor x({1, 1, dims});
        for (std::size_t i = 0; i < dims; ++i) {
            const float v = protos[c][i] + static_cast<float>(rng.normal(0.0, 0.08));
            x[i] = std::clamp(v, 0.0f, 1.0f);
        }
        return {std::move(x), c};
    }

    neuro::data::Dataset as_dataset(std::size_t n, Rng& rng) const {
        neuro::data::Dataset d;
        d.name = "toy";
        d.channels = 1;
        d.height = 1;
        d.width = dims;
        d.num_classes = classes;
        for (std::size_t i = 0; i < n; ++i) {
            auto [x, y] = sample(rng);
            d.samples.push_back({std::move(x), y});
        }
        return d;
    }
};

double train_eval(EmstdpNetwork& net, const ToyTask& task, std::size_t train_n,
                  Rng& rng) {
    for (std::size_t i = 0; i < train_n; ++i) {
        auto [x, y] = task.sample(rng);
        net.train_sample(x, y);
    }
    std::size_t hit = 0;
    for (std::size_t i = 0; i < 150; ++i) {
        auto [x, y] = task.sample(rng);
        if (net.predict(x) == y) ++hit;
    }
    return static_cast<double>(hit) / 150.0;
}

}  // namespace

TEST(Options, LearningShiftDerivation) {
    EmstdpOptions opt;  // T=64, eta=1/8 (the paper's 2^-3), theta=256
    EXPECT_EQ(opt.learning_shift(), 7);
    opt.eta = 0.0625f;
    EXPECT_EQ(opt.learning_shift(), 8);
    opt.theta_dense = 512;
    EXPECT_EQ(opt.learning_shift(), 7);
}

TEST(Structure, DfaUsesFewerFeedbackResourcesThanFa) {
    // Paper Sec. III-A: "DFA does not only eliminate the neurons on the
    // feedback path, the number of connections on the feedback path is also
    // reduced" — structural assertion, two hidden layers to expose the chain.
    EmstdpOptions fa;
    fa.feedback = FeedbackMode::FA;
    EmstdpOptions dfa;
    dfa.feedback = FeedbackMode::DFA;
    EmstdpNetwork net_fa(fa, 1, 1, 50, nullptr, {40, 30}, 10);
    EmstdpNetwork net_dfa(dfa, 1, 1, 50, nullptr, {40, 30}, 10);

    const auto cf = net_fa.costs();
    const auto cd = net_dfa.costs();
    EXPECT_LT(cd.feedback_compartments, cf.feedback_compartments);
    EXPECT_LT(cd.feedback_synapses, cf.feedback_synapses);
    EXPECT_LE(cd.cores, cf.cores);
    EXPECT_LT(cd.compartments, cf.compartments);
}

TEST(Structure, InferenceOnlyDropsErrorPath) {
    EmstdpOptions train_opt;
    EmstdpOptions inf_opt;
    inf_opt.inference_only = true;
    EmstdpNetwork trainable(train_opt, 1, 1, 30, nullptr, {20}, 5);
    EmstdpNetwork inference(inf_opt, 1, 1, 30, nullptr, {20}, 5);
    EXPECT_LT(inference.costs().compartments, trainable.costs().compartments);
    EXPECT_EQ(inference.costs().feedback_synapses, 0u);
    Tensor x({1, 1, 30});
    EXPECT_THROW(inference.train_sample(x, 0), std::logic_error);
    EXPECT_NO_THROW(inference.predict(x));
}

TEST(Learning, SingleLayerLearnsOnChip) {
    Rng rng(11);
    ToyTask task(16, 4, rng);
    EmstdpOptions opt;
    EmstdpNetwork net(opt, 1, 1, 16, nullptr, {}, 4);
    EXPECT_GT(train_eval(net, task, 350, rng), 0.85);
}

TEST(Learning, TwoLayerDfaLearnsOnChip) {
    Rng rng(12);
    ToyTask task(20, 4, rng);
    EmstdpOptions opt;
    opt.feedback = FeedbackMode::DFA;
    EmstdpNetwork net(opt, 1, 1, 20, nullptr, {30}, 4);
    EXPECT_GT(train_eval(net, task, 500, rng), 0.8);
}

TEST(Learning, TwoLayerFaLearnsOnChip) {
    Rng rng(13);
    ToyTask task(20, 4, rng);
    EmstdpOptions opt;
    opt.feedback = FeedbackMode::FA;
    EmstdpNetwork net(opt, 1, 1, 20, nullptr, {30}, 4);
    EXPECT_GT(train_eval(net, task, 500, rng), 0.6);
}

TEST(Learning, QuantizationBitsChangeOutcome) {
    // 4-bit weights must underperform 8-bit weights on the same stream —
    // the degradation direction Table I attributes to quantization.
    Rng rng(14);
    ToyTask task(16, 4, rng);
    EmstdpOptions o8;
    o8.weight_bits = 8;
    EmstdpOptions o4;
    o4.weight_bits = 4;
    EmstdpNetwork n8(o8, 1, 1, 16, nullptr, {}, 4);
    EmstdpNetwork n4(o4, 1, 1, 16, nullptr, {}, 4);
    Rng s1(77), s2(77);
    const double a8 = train_eval(n8, task, 350, s1);
    const double a4 = train_eval(n4, task, 350, s2);
    EXPECT_GE(a8, a4 - 0.05) << "8-bit should not lose clearly to 4-bit";
    EXPECT_GT(a8, 0.8);
}

TEST(Hooks, ClassMaskDisablesOutputAndFreezesRows) {
    EmstdpOptions opt;
    EmstdpNetwork net(opt, 1, 1, 12, nullptr, {}, 4);
    net.set_class_mask({true, false, true, true});

    Tensor x({1, 1, 12});
    x.fill(0.6f);
    const auto w_before = net.chip().weights(net.plastic_projections()[0]);
    net.train_sample(x, 0);
    const auto w_after = net.chip().weights(net.plastic_projections()[0]);
    // Row of the disabled class (dst == 1) must be untouched.
    // dense_synapses layout: synapse (src=i, dst=o) at index o*in + i.
    for (std::size_t i = 0; i < 12; ++i)
        EXPECT_EQ(w_after[1 * 12 + i], w_before[1 * 12 + i]);

    // The disabled output must be silent even under strong drive.
    const auto counts = net.output_counts(x);
    EXPECT_EQ(counts[1], 0);
}

TEST(Hooks, LearningShiftOffsetShrinksUpdates) {
    Rng rng(15);
    ToyTask task(12, 3, rng);
    EmstdpOptions opt;
    EmstdpNetwork slow(opt, 1, 1, 12, nullptr, {}, 3);
    EmstdpNetwork fast(opt, 1, 1, 12, nullptr, {}, 3);
    slow.set_learning_shift_offset(4);  // eta / 16

    Rng s1(5), s2(5);
    long drift_slow = 0, drift_fast = 0;
    const auto w0s = slow.chip().weights(slow.plastic_projections()[0]);
    const auto w0f = fast.chip().weights(fast.plastic_projections()[0]);
    for (int i = 0; i < 30; ++i) {
        auto [x1, y1] = task.sample(s1);
        slow.train_sample(x1, y1);
        auto [x2, y2] = task.sample(s2);
        fast.train_sample(x2, y2);
    }
    const auto w1s = slow.chip().weights(slow.plastic_projections()[0]);
    const auto w1f = fast.chip().weights(fast.plastic_projections()[0]);
    for (std::size_t i = 0; i < w0s.size(); ++i) {
        drift_slow += std::abs(w1s[i] - w0s[i]);
        drift_fast += std::abs(w1f[i] - w0f[i]);
    }
    EXPECT_LT(drift_slow * 3, drift_fast)
        << "reduced learning rate must shrink weight drift";
    EXPECT_THROW(slow.set_learning_shift_offset(-1), std::invalid_argument);
}

TEST(InputEncoding, BiasAndInsertionProduceIdenticalActivity) {
    // Adaptation technique 4: the bias encoding generates on chip exactly
    // the spike train the host would insert; downstream counts must match
    // while host I/O differs enormously.
    EmstdpOptions bias_opt;
    bias_opt.input_mode = InputMode::BiasProgramming;
    EmstdpOptions spike_opt;
    spike_opt.input_mode = InputMode::SpikeInsertion;
    EmstdpNetwork bias_net(bias_opt, 1, 1, 16, nullptr, {}, 4);
    EmstdpNetwork spike_net(spike_opt, 1, 1, 16, nullptr, {}, 4);

    Tensor x({1, 1, 16});
    for (std::size_t i = 0; i < 16; ++i)
        x[i] = static_cast<float>(i) / 16.0f;

    const auto c_bias = bias_net.output_counts(x);
    const auto c_spike = spike_net.output_counts(x);
    EXPECT_EQ(c_bias, c_spike);

    const auto io_bias = bias_net.chip().activity().host_io_writes;
    const auto io_spike = spike_net.chip().activity().host_io_writes;
    EXPECT_GT(io_spike, io_bias)
        << "spike insertion must cost more host transactions (bright pixels)";
}

TEST(Trainer, EpochAndEvaluateRoundTrip) {
    Rng rng(16);
    ToyTask task(14, 3, rng);
    const auto train = task.as_dataset(200, rng);
    const auto test = task.as_dataset(80, rng);

    EmstdpOptions opt;
    EmstdpNetwork net(opt, 1, 1, 14, nullptr, {}, 3);
    const double before = evaluate(net, test);
    Rng train_rng(3);
    for (int e = 0; e < 2; ++e) train_epoch(net, train, train_rng);
    const double after = evaluate(net, test);
    EXPECT_GT(after, before + 0.2) << "training must improve accuracy";
    EXPECT_GT(after, 0.8);
}

TEST(Trainer, EnergyReportsDistinguishTrainAndTest) {
    Rng rng(17);
    ToyTask task(14, 3, rng);
    const auto ds = task.as_dataset(24, rng);
    EmstdpOptions opt;
    EmstdpNetwork net(opt, 1, 1, 14, nullptr, {}, 3);
    const neuro::loihi::EnergyModelParams params;
    const auto train_r = measure_energy(net, ds, 8, /*training=*/true, params);
    const auto test_r = measure_energy(net, ds, 8, /*training=*/false, params);
    EXPECT_EQ(train_r.steps_per_sample, 128u);
    EXPECT_EQ(test_r.steps_per_sample, 64u);
    EXPECT_GT(train_r.energy_per_sample_j, test_r.energy_per_sample_j);
    EXPECT_GT(train_r.power_w, 0.1);
    EXPECT_GT(test_r.fps, train_r.fps);
}

TEST(Deployment, CheckpointRestoresBehaviour) {
    Rng rng(19);
    ToyTask task(14, 3, rng);
    EmstdpOptions opt;
    EmstdpNetwork trained(opt, 1, 1, 14, nullptr, {10}, 3);
    for (int i = 0; i < 150; ++i) {
        auto [x, y] = task.sample(rng);
        trained.train_sample(x, y);
    }
    const std::string path = testing::TempDir() + "/neuro_net_ckpt.bin";
    trained.save(path);

    EmstdpOptions opt2 = opt;
    opt2.seed = 1234;  // different init — must be fully overwritten
    EmstdpNetwork restored(opt2, 1, 1, 14, nullptr, {10}, 3);
    restored.load(path);
    for (int i = 0; i < 30; ++i) {
        auto [x, y] = task.sample(rng);
        EXPECT_EQ(restored.predict(x), trained.predict(x));
        (void)y;
    }
    std::filesystem::remove(path);
}

TEST(Determinism, SameSeedsSameChipWeights) {
    Rng rng(21);
    ToyTask task(12, 3, rng);
    EmstdpOptions opt;
    opt.seed = 99;
    EmstdpNetwork a(opt, 1, 1, 12, nullptr, {8}, 3);
    EmstdpNetwork b(opt, 1, 1, 12, nullptr, {8}, 3);
    Rng s1(55), s2(55);
    for (int i = 0; i < 40; ++i) {
        auto [x1, y1] = task.sample(s1);
        a.train_sample(x1, y1);
        auto [x2, y2] = task.sample(s2);
        b.train_sample(x2, y2);
    }
    for (std::size_t p = 0; p < a.plastic_projections().size(); ++p)
        EXPECT_EQ(a.chip().weights(a.plastic_projections()[p]),
                  b.chip().weights(b.plastic_projections()[p]));
}
