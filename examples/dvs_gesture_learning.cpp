// Online EMSTDP learning of DVS gestures on the simulated chip.
//
// The paper's intro motivates neuromorphic processors with event-based
// sensors ("dynamic vision sensor (DVS), whose output is sparse by nature").
// This example closes that loop on the reproduction: a synthetic DVS sensor
// (src/dvs) records four sweep gestures; the recordings are integrated into
// time-binned ON/OFF frame stacks; the on-chip EMSTDP network learns to
// classify them online, one recording at a time, as the image pipelines do.
// The event statistics printed alongside show why the sensor pairs well with
// the chip: a recording carries ~20-50x fewer events than a dense frame
// stream of the same duration.
//
// Run: ./build/examples/dvs_gesture_learning [--train=N] [--epochs=N]

#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/network.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "dvs/events.hpp"

using namespace neuro;

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto train_n = static_cast<std::size_t>(cli.get_int("train", 240));
    const auto test_n = static_cast<std::size_t>(cli.get_int("test", 120));
    const auto epochs = static_cast<std::size_t>(cli.get_int("epochs", 2));

    // ---- record gestures with the synthetic sensor --------------------------
    dvs::GestureOptions gopt;
    gopt.count = train_n + test_n;
    gopt.classes = 4;  // the four sweeps
    gopt.seed = 21;
    const auto recordings = dvs::make_gestures(gopt);

    std::size_t total_events = 0;
    for (const auto& s : recordings.streams) total_events += s.events.size();
    const double dense = static_cast<double>(recordings.pixels()) *
                         static_cast<double>(recordings.duration);
    std::printf("DVS gesture learning (%zux%zu sensor, %u steps/recording)\n",
                recordings.width, recordings.height, recordings.duration);
    std::printf("---------------------------------------------------------\n");
    std::printf("recordings: %zu, classes: %zu\n", recordings.size(),
                recordings.num_classes);
    std::printf("mean events/recording: %.0f (dense frame stream would be "
                "%.0f pixel-steps -> %.0fx sparser)\n\n",
                static_cast<double>(total_events) /
                    static_cast<double>(recordings.size()),
                dense,
                dense * static_cast<double>(recordings.size()) /
                    static_cast<double>(total_events));

    // ---- integrate events into time-binned ON/OFF frames --------------------
    // Two time bins keep the motion direction: with a single accumulated
    // frame a right-sweep and a left-sweep paint nearly the same picture.
    const auto bins = static_cast<std::size_t>(cli.get_int("bins", 2));
    data::Dataset frames;
    frames.name = "dvs-gestures";
    frames.channels = 2 * bins;
    frames.height = recordings.height;
    frames.width = recordings.width;
    frames.num_classes = recordings.num_classes;
    for (const auto& s : recordings.streams)
        frames.samples.push_back(
            {dvs::accumulate_frames(s, recordings.width, recordings.height,
                                    recordings.duration, bins),
             s.label});
    const auto [train, test] = data::split(frames, train_n);

    // ---- online in-chip learning ---------------------------------------------
    core::EmstdpOptions opt;
    opt.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
    // The paper's eta = 2^-3 is tuned for a 10-way head; this 4-way head
    // with strong binned features overshoots at that rate (one output class
    // saturates dead). One halving stabilizes it.
    opt.eta = static_cast<float>(cli.get_double("eta", 0.0625));
    const auto hidden = static_cast<std::size_t>(cli.get_int("hidden", 80));
    core::EmstdpNetwork net(opt, frames.channels, frames.height, frames.width,
                            nullptr, std::vector<std::size_t>{hidden},
                            frames.num_classes);
    std::printf("chip network: %zu compartments, %zu synapses, %zu cores\n",
                net.chip().total_compartments(), net.chip().total_synapses(),
                net.chip().mapping().total_cores);

    common::Rng rng(42);
    for (std::size_t e = 0; e < epochs; ++e) {
        const double preq = core::train_epoch(net, train, rng, true);
        std::printf("epoch %zu: prequential accuracy %.1f%%\n", e + 1,
                    preq * 100.0);
    }
    const double acc = core::evaluate(net, test);
    std::printf("\ntest accuracy over %zu held-out recordings: %.1f%% "
                "(chance %.1f%%)\n",
                test.size(), acc * 100.0, 100.0 / frames.num_classes);

    // ---- per-class breakdown ----------------------------------------------------
    std::vector<std::size_t> hits(frames.num_classes, 0),
        totals(frames.num_classes, 0);
    for (const auto& s : test.samples) {
        ++totals[s.label];
        if (net.predict(s.image) == s.label) ++hits[s.label];
    }
    const char* names[] = {"sweep right", "sweep left", "sweep down", "sweep up"};
    for (std::size_t c = 0; c < frames.num_classes; ++c)
        std::printf("    %-12s %3zu/%zu\n", names[c], hits[c], totals[c]);

    return acc > 1.5 / static_cast<double>(frames.num_classes) ? 0 : 1;
}
