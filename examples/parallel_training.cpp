// Example: throughput-oriented training with core::ParallelTrainer.
//
// The paper trains strictly online — one sample at a time, 2T timesteps per
// sample (Operation Flow 1). When real-time arrival is not a constraint
// (e.g. pretraining before deployment), the parallel engine replicates the
// chip across worker threads and trains mini-batches data-parallel, merging
// the integer weight deltas at each batch boundary. Results are
// bit-identical for any thread count; batch=1 falls back to the paper's
// serial semantics exactly.
//
// Run:  ./example_parallel_training [--threads=N] [--batch=B] [--epochs=E]

#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/network.hpp"
#include "core/parallel_trainer.hpp"
#include "data/dataset.hpp"

using namespace neuro;

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto threads = static_cast<std::size_t>(cli.get_int("threads", 4));
    const auto batch = static_cast<std::size_t>(cli.get_int("batch", 8));
    const auto epochs = static_cast<std::size_t>(cli.get_int("epochs", 3));

    // Synthetic 16x16 digits (drop-in for MNIST; see src/data/dataset.hpp).
    data::GenOptions gen;
    gen.count = 700;
    gen.seed = 3;
    gen.height = 16;
    gen.width = 16;
    const auto all = data::make_digits(gen);
    const auto [train, test] = data::split(all, 500);

    // The paper's network: one plastic hidden layer of 100, DFA feedback.
    core::EmstdpOptions opt;
    core::EmstdpNetwork net(opt, 1, gen.height, gen.width, nullptr, {100}, 10);

    core::ParallelOptions popt;
    popt.threads = threads;
    popt.batch = batch;
    core::ParallelTrainer trainer(net, popt);

    std::printf("parallel training: %zu threads, batch %zu\n",
                trainer.threads(), popt.batch);
    common::Rng rng(42);
    for (std::size_t e = 0; e < epochs; ++e) {
        const double preq = trainer.train_epoch(train, rng, true);
        std::printf("epoch %zu: prequential=%.1f%%  test=%.1f%%\n", e + 1,
                    preq * 100.0, trainer.evaluate(test) * 100.0);
    }

    // The master network holds the merged weights — checkpoint it exactly
    // as after serial training.
    net.save("parallel_trained.chk");
    std::printf("checkpoint written to parallel_trained.chk\n");
    return 0;
}
