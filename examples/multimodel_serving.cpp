// Example: multi-model serving — two tenants on one daemon, one socket.
//
// Where examples/neurod_client.cpp speaks protocol v1 to a single-model
// daemon, this example runs the fleet stack (docs/ARCHITECTURE.md §12):
// a serve::ModelRouter fronting one default model plus a directory of
// named fleet entries, behind the same neurod event loop.
//   1. Build a fleet directory: one online::ModelRegistry per model name.
//      "alpha" gets two weight versions so the canary walk below has
//      somewhere to go; forced output layers make every switch visible
//      as a changed label.
//   2. Address models by name over ONE connection with v2 frames —
//      `model=""` is the default model, and a v1 frame still works
//      unchanged (per-frame version negotiation).
//   3. Drive a canary rollout entirely through the admin control socket:
//      `canary alpha 2 25` splits a quarter of alpha's traffic onto
//      version 2 (deterministic per request_id), `stats alpha` shows the
//      per-arm counters, and `pin alpha 2` + `canary alpha 0 0` is the
//      promotion: version 2 becomes the base, the canary arm is retired.
//
// Run:  ./example_multimodel_serving

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "netd/client.hpp"
#include "netd/daemon.hpp"
#include "online/registry.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/router.hpp"

using namespace neuro;

namespace {

constexpr std::size_t kClasses = 10;

netd::RequestFrame frame_for(const common::Tensor& img, std::uint64_t id,
                             const std::string& model) {
    netd::RequestFrame f;
    f.version = netd::kProtocolVersionV2;
    f.model = model;
    f.request_id = id;
    f.shape.assign(img.shape().begin(), img.shape().end());
    f.data.assign(img.data(), img.data() + img.size());
    return f;
}

/// A weight image whose output layer always predicts `winner`, so every
/// routing / canary / promotion step below is visible as a label change.
runtime::WeightSnapshot forced(const runtime::CompiledModel& model,
                               std::size_t winner) {
    runtime::WeightSnapshot snap = model.initial_weights();
    auto& out = snap.layers.back();
    const std::size_t fan_in = out.size() / kClasses;
    for (std::size_t c = 0; c < kClasses; ++c)
        for (std::size_t i = 0; i < fan_in; ++i)
            out[c * fan_in + i] = c == winner ? 60 : -60;
    return snap;
}

}  // namespace

int main() {
    data::GenOptions gen;
    gen.count = 8;
    gen.seed = 5;
    gen.height = 16;
    gen.width = 16;
    const auto images = data::make_digits(gen);

    runtime::ModelSpec spec;
    spec.input(1, 16, 16).hidden_layers({100}).output_classes(kClasses);
    const auto model =
        runtime::CompiledModel::compile(spec, runtime::BackendKind::LoihiSim);

    // ---- 1. a fleet directory: one registry subdirectory per model ---------
    // In production the online engine (or a deploy pipeline) records these;
    // here forced winners stand in for genuinely different tenants.
    const auto fleet = std::filesystem::temp_directory_path() /
                       ("multimodel_example_" + std::to_string(::getpid()));
    std::filesystem::remove_all(fleet);
    std::filesystem::create_directories(fleet);
    {
        online::ModelRegistry alpha((fleet / "alpha").string());
        alpha.record(1, 0.81, forced(*model, 1));  // today's alpha
        alpha.record(2, 0.88, forced(*model, 3));  // the canary candidate
        online::ModelRegistry beta((fleet / "beta").string());
        beta.record(1, 0.84, forced(*model, 2));
    }

    serve::RouterOptions ropt;
    ropt.workers = 2;
    ropt.backpressure = serve::Backpressure::Shed;  // the daemon's requirement
    ropt.fleet_dir = fleet.string();
    auto router = std::make_shared<serve::ModelRouter>(model, ropt);
    router->start();

    netd::DaemonOptions dopt;
    const auto base = std::filesystem::temp_directory_path() /
                      ("multimodel_example_" + std::to_string(::getpid()));
    dopt.data_path = base.string() + ".sock";
    dopt.control_path = base.string() + ".ctl";
    netd::Daemon daemon(router, dopt);
    std::thread loop([&] { daemon.run(); });
    for (;;) {
        try {
            netd::Client::connect_unix(dopt.data_path);
            break;
        } catch (const std::exception&) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
    const auto ctl = [&](const std::string& cmd) {
        return netd::control_request(dopt.control_path, cmd);
    };
    std::printf("daemon up on %s, fleet at %s\n\n", dopt.data_path.c_str(),
                fleet.c_str());

    // Left alone, the first alpha frame would lazy-load the registry's
    // last GOOD version (2). This walkthrough wants to roll 1 -> 2 by
    // hand, so pin alpha to version 1 up front.
    std::printf("control> pin alpha 1   %s\n\n", ctl("pin alpha 1").c_str());

    // ---- 2. three tenants, one connection ----------------------------------
    // The router lazy-loads "beta" from the fleet directory at its first
    // frame; "" is the always-resident default model.
    auto client = netd::Client::connect_unix(dopt.data_path);
    const auto& img = images.samples[0].image;
    std::uint64_t id = 1;
    for (const std::string name : {"", "alpha", "beta", "alpha", ""}) {
        const auto r = client.call(frame_for(img, id++, name));
        std::printf("  model=%-8s -> label=%u (v%u echo model=\"%s\")\n",
                    name.empty() ? "\"\"" : name.c_str(), r.label, r.version,
                    r.model.c_str());
    }
    // A v1 frame on the same socket still serves the default model — old
    // clients never notice the fleet exists.
    netd::RequestFrame v1;
    v1.request_id = id++;
    v1.shape.assign(img.shape().begin(), img.shape().end());
    v1.data.assign(img.data(), img.data() + img.size());
    const auto legacy = client.call(v1);
    std::printf("  v1 frame      -> label=%u (response stays v%u)\n\n",
                legacy.label, legacy.version);

    // ---- 3. canary rollout, driven from the control socket -----------------
    std::printf("control> models        %.100s...\n", ctl("models").c_str());
    std::printf("control> canary 25%%    %s\n", ctl("canary alpha 2 25").c_str());
    std::size_t canaried = 0;
    constexpr std::size_t kProbe = 40;
    for (std::size_t i = 0; i < kProbe; ++i)
        if (client.call(frame_for(img, id++, "alpha")).label == 3) ++canaried;
    std::printf("  %zu of %zu alpha requests served by the version-2 canary "
                "(deterministic per request_id)\n",
                canaried, kProbe);
    std::printf("control> stats alpha   %.140s...\n", ctl("stats alpha").c_str());

    // Promotion: version 2 becomes the pinned base, the canary is retired.
    std::printf("control> pin alpha 2   %s\n", ctl("pin alpha 2").c_str());
    std::printf("control> clear canary  %s\n", ctl("canary alpha 0 0").c_str());
    for (;;) {  // sessions adopt the new base at their next batch boundary
        if (client.call(frame_for(img, id++, "alpha")).label == 3) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::printf("  alpha now serves version 2 on the base arm\n");

    daemon.request_shutdown();
    loop.join();
    router->shutdown();
    std::filesystem::remove(dopt.data_path);
    std::filesystem::remove(dopt.control_path);
    std::filesystem::remove_all(fleet);
    std::printf("\ndrained — two tenants, one socket, zero client restarts\n");
    return 0;
}
