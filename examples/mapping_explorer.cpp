// Mapping explorer: interactive view of the paper's core-mapping trade-off
// (Sec. III-C / Fig. 3). Builds the paper network at a chosen
// neurons-per-core packing and prints the per-layer core assignment, the
// modeled step time, power and energy.
//
//   run:   ./build/examples/mapping_explorer --npc=10 --feedback=fa

#include <cstdio>

#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "core/trainer.hpp"

using namespace neuro;

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    if (cli.error()) return 1;
    const auto npc = static_cast<std::size_t>(cli.get_int("npc", 10));
    const bool fa = cli.get("feedback", "fa") == "fa";

    core::ExperimentSpec spec;
    spec.dataset = "digits";
    spec.train_count = 150;
    spec.test_count = 50;
    spec.ann_epochs = 1;
    spec.seed = 5;
    std::printf("preparing the paper network (synthetic digits)...\n");
    const auto prep = core::prepare(spec);

    core::EmstdpOptions opt;
    opt.feedback = fa ? core::FeedbackMode::FA : core::FeedbackMode::DFA;
    opt.neurons_per_core = npc;
    auto net = core::build_chip_network(prep, opt);

    const auto& mapping = net->chip().mapping();
    std::printf("\nmapping at %zu neurons/core (%s):\n", npc, fa ? "FA" : "DFA");
    std::printf("  %-12s %8s %8s %12s %14s\n", "layer", "cores", "npc",
                "comp/core", "plastic syn/core");
    // Layer names repeat the population order used by the builder.
    const char* names[] = {"input",  "conv1",    "conv2",    "dense1",
                           "output", "label",    "out_err+", "out_err-",
                           "hid_err1+", "hid_err1-"};
    for (std::size_t i = 0; i < mapping.layers.size(); ++i) {
        const auto& layer = mapping.layers[i];
        std::printf("  %-12s %8zu %8zu %12zu %14zu\n",
                    i < std::size(names) ? names[i] : "?", layer.num_cores,
                    layer.neurons_per_core, layer.compartments_per_core,
                    layer.plastic_synapses_per_core);
    }
    std::printf("  total cores: %zu / %zu (%s)\n", mapping.total_cores,
                net->chip().limits().num_cores,
                mapping.feasible ? "feasible" : "INFEASIBLE");
    for (const auto& v : mapping.violations) std::printf("  warning: %s\n", v.c_str());

    const loihi::EnergyModelParams params;
    const auto r = core::measure_energy(*net, prep.train, 8, true, params);
    std::printf("\nmodeled training operating point:\n");
    std::printf("  step time   %.0f us (floor %.0f us)\n", r.step_seconds * 1e6,
                params.step_floor_s * 1e6);
    std::printf("  throughput  %.1f samples/s\n", r.fps);
    std::printf("  power       %.3f W\n", r.power_w);
    std::printf("  energy      %.2f mJ/sample\n", r.energy_per_sample_j * 1e3);
    std::printf("\nsweep --npc to see the Fig. 3 trade-off (power falls, time "
                "rises, energy is U-shaped).\n");
    return 0;
}
