// Example: asynchronous request serving with neuro::serve.
//
// Where examples/serving_sessions.cpp hands each thread its own Session
// and a slice of the data (good for batch jobs), this example runs the
// request/response shape of a live service:
//   1. Train a model and freeze it into a servable CompiledModel.
//   2. Stand up a serve::Server — worker sessions, a bounded request
//      queue, and a micro-batching scheduler (dispatch when the batch
//      fills or max_delay_us elapses, whichever first).
//   3. Fire-and-forget submit() from the client side; each call returns a
//      future-backed InferenceHandle immediately.
//   4. Collect results, then read the server's latency histogram
//      (p50/p95/p99), batch shapes, and throughput from ServerStats.
//   5. Overload a tiny-queue Shed-policy server to see backpressure
//      reject the overflow instead of queueing without bound.
//   6. Admission control: submit with a priority class and an SLO
//      deadline, and watch an expired request get rejected at the queue
//      head instead of wasting a session slot — on a ManualClock, so the
//      expiry is deterministic (docs/ARCHITECTURE.md §10).
//
// Run:  ./example_serving_async [--workers=N] [--batch=B] [--requests=R]

#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/server.hpp"

using namespace neuro;

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto workers = static_cast<std::size_t>(cli.get_int("workers", 4));
    const auto batch = static_cast<std::size_t>(cli.get_int("batch", 8));
    const auto requests = static_cast<std::size_t>(cli.get_int("requests", 400));

    // ---- 1. train, then freeze a servable model ----------------------------
    data::GenOptions gen;
    gen.count = 700;
    gen.seed = 3;
    gen.height = 16;
    gen.width = 16;
    const auto all = data::make_digits(gen);
    const auto [train, test] = data::split(all, 500);

    runtime::ModelSpec spec;
    spec.input(1, 16, 16).hidden_layers({100}).output_classes(10);
    const auto model = runtime::CompiledModel::compile(spec);
    auto trainer = model->open_session();
    common::Rng rng(42);
    core::train_epoch(*trainer, train, rng);
    const auto servable = model->with_weights(trainer->weights());

    // ---- 2. the serving engine ---------------------------------------------
    serve::ServerOptions opt;
    opt.workers = workers;
    opt.queue_capacity = 256;
    opt.batch.max_batch = batch;
    opt.batch.max_delay_us = 200;
    opt.backpressure = serve::Backpressure::Block;
    serve::Server server(servable, opt);
    server.start();
    std::printf("server up: %zu workers, queue %zu, micro-batch <=%zu or "
                "%llu us\n",
                opt.workers, opt.queue_capacity, opt.batch.max_batch,
                static_cast<unsigned long long>(opt.batch.max_delay_us));

    // ---- 3. async submission, 4. results + stats ---------------------------
    std::vector<serve::InferenceHandle> handles;
    handles.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i)
        handles.push_back(server.submit(test.samples[i % test.size()].image));

    std::size_t hits = 0;
    for (std::size_t i = 0; i < requests; ++i) {
        const auto r = handles[i].get();
        if (r.status == serve::Status::Ok &&
            r.label == test.samples[i % test.size()].label)
            ++hits;
    }
    server.shutdown();
    const auto s = server.stats();
    std::printf("served %llu requests: %.1f%% accuracy\n",
                static_cast<unsigned long long>(s.completed),
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(requests));
    std::printf("throughput %.0f req/s   latency p50 %.0f / p95 %.0f / "
                "p99 %.0f us (max %.0f)\n",
                s.throughput_rps, s.p50_us, s.p95_us, s.p99_us, s.max_us);
    std::printf("%llu micro-batches, mean %.1f req/batch (max %zu), peak "
                "queue depth %zu\n",
                static_cast<unsigned long long>(s.batches), s.mean_batch,
                s.max_batch, s.peak_queue_depth);

    // ---- 5. backpressure: shed instead of queueing without bound -----------
    serve::ServerOptions shed_opt = opt;
    shed_opt.workers = 1;
    shed_opt.queue_capacity = 8;
    shed_opt.backpressure = serve::Backpressure::Shed;
    serve::Server shedding(servable, shed_opt);
    // No start() yet: with the queue full, every extra submit is refused
    // immediately with status Rejected rather than blocking the client.
    std::vector<serve::InferenceHandle> burst;
    for (std::size_t i = 0; i < 32; ++i)
        burst.push_back(shedding.submit(test.samples[i % test.size()].image));
    shedding.shutdown();  // drains the 8 accepted requests
    std::size_t ok = 0, shed = 0;
    for (auto& h : burst)
        (h.get().status == serve::Status::Ok ? ok : shed)++;
    std::printf("overloaded shed-policy server (queue 8): %zu served, %zu "
                "rejected of %zu — bounded memory, bounded latency\n",
                ok, shed, burst.size());

    // ---- 6. admission control: priority classes + SLO deadlines ------------
    auto clock = std::make_shared<serve::ManualClock>();
    serve::ServerOptions adm_opt = opt;
    adm_opt.workers = 1;
    adm_opt.clock = clock;  // virtual time: the expiry below is deterministic
    adm_opt.admission.codel.enabled = true;
    serve::Server admitting(servable, adm_opt);
    serve::SubmitOptions slo;
    slo.priority = serve::Priority::Batch;
    slo.deadline_us = 500;  // relative SLO, stamped absolute at submit()
    auto stale = admitting.submit(test.samples[0].image, slo);
    auto live = admitting.submit(test.samples[1].image);  // Interactive, no SLO
    clock->advance_us(1'000);  // the Batch request's deadline passes in-queue
    admitting.start();
    admitting.shutdown();
    const auto r_stale = stale.get();
    const auto r_live = live.get();
    std::printf("deadline demo: stale request -> %s (%s, sojourn %llu us), "
                "live request -> %s\n",
                serve::to_string(r_stale.status), serve::to_string(r_stale.reject),
                static_cast<unsigned long long>(r_stale.sojourn_us),
                serve::to_string(r_live.status));
    return 0;
}
