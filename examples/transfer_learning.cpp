// Transfer learning with frozen conv features and an on-chip head.
//
// Paper Sec. IV-A, on pretraining the convolutional layers offline: "This
// introduces opportunities of transfer learning when training such
// convolutional layers in-hardware is not viable." This example realizes
// that opportunity: the conv stack is pretrained offline on the *digits*
// task, frozen, quantized and mapped onto the chip — and the dense head is
// then trained on-chip, online, on the *fashion* task the convs never saw.
// A natively pretrained fashion stack provides the reference point.
//
// Run: ./build/examples/transfer_learning [--train=N] [--epochs=N]

#include <cstdio>
#include <memory>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/trainer.hpp"

using namespace neuro;

namespace {

/// Trains the on-chip dense head over a prepared conv stack and returns the
/// test accuracy on `task`.
double train_head(const core::Prepared& features, const core::Prepared& task,
                  std::size_t epochs) {
    core::EmstdpOptions opt;
    opt.seed = 7;
    core::EmstdpNetwork net(opt, features.topo.in_c, features.topo.in_h,
                            features.topo.in_w, &features.stack,
                            {features.topo.hidden}, features.topo.classes);
    common::Rng rng(42);
    for (std::size_t e = 0; e < epochs; ++e)
        core::train_epoch(net, task.train, rng);
    return core::evaluate(net, task.test);
}

}  // namespace

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    core::ExperimentSpec spec;
    spec.train_count = static_cast<std::size_t>(cli.get_int("train", 500));
    spec.test_count = static_cast<std::size_t>(cli.get_int("test", 250));
    spec.ann_epochs = 3;
    spec.seed = 3;
    const auto epochs = static_cast<std::size_t>(cli.get_int("epochs", 2));

    std::printf("Transfer learning: digit conv features -> fashion head\n");
    std::printf("------------------------------------------------------\n");

    spec.dataset = "digits";
    const auto digits = core::prepare(spec);
    spec.dataset = "fashion";
    const auto fashion = core::prepare(spec);
    std::printf("conv stacks pretrained offline: digits (ANN %.1f%%), "
                "fashion (ANN %.1f%%)\n\n",
                digits.ann_test_accuracy * 100.0,
                fashion.ann_test_accuracy * 100.0);

    // Head trained on-chip on fashion, over each feature stack.
    const double transfer = train_head(digits, fashion, epochs);
    std::printf("digit convs  + fashion head trained on-chip: %.1f%%\n",
                transfer * 100.0);
    const double native = train_head(fashion, fashion, epochs);
    std::printf("fashion convs + fashion head trained on-chip: %.1f%% "
                "(native reference)\n",
                native * 100.0);

    std::printf("\ntransfer retains %.0f%% of the native accuracy — generic "
                "early features\ncarry across tasks, so a deployed chip can "
                "learn a new task by retraining\nonly its dense head, "
                "on-device, without touching the conv stack.\n",
                100.0 * transfer / native);
    return transfer > 0.5 * native ? 0 : 1;
}
