// Unsupervised/guided STDP feature learning on the raw chip API.
//
// The paper's Sec. II-B notes that Loihi's sum-of-products learning engine
// expresses "regular pairwise and triplet STDP rules" beyond the EMSTDP rule
// this repository is built around. This example demonstrates exactly that:
// two output neurons watch an 8x8 input sheet on which two noisy patterns
// (left-half bars / right-half bars) alternate; each output is teacher-forced
// to fire just after "its" pattern. The homeostatic STDP rule potentiates
// causally paired pixels while its weight-proportional decay pins every
// weight at a fixed point proportional to how often that pixel precedes the
// output's spikes — so each output's synapses converge to a bounded
// receptive field of its pattern, learned entirely by the on-chip rule.
// (Plain pairwise STDP would saturate here: the teacher protocol has no
// anti-causal pre spikes, so nothing opposes LTP — homeostasis is what makes
// unbounded-potentiation protocols stable.)
//
// Run: ./build/examples/stdp_feature_learning [--episodes=N]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "loihi/chip.hpp"
#include "loihi/stdp.hpp"

using namespace neuro;
using namespace neuro::loihi;

namespace {

constexpr std::size_t kSide = 8;
constexpr std::size_t kInputs = kSide * kSide;
constexpr std::int32_t kVth = 64;
/// Feature neurons are teacher-clamped: their threshold is far above any
/// possible synaptic drive (64 pixels x 127 max weight), so only the
/// teacher's bias pulse can fire them. Without the clamp, growing weights
/// let *both* outputs fire after every volley and selectivity washes out.
constexpr std::int32_t kClampVth = 1 << 20;

/// Pattern p covers columns [p*4, p*4+4): two disjoint half-sheets.
bool in_pattern(std::size_t pixel, std::size_t p) {
    const std::size_t col = pixel % kSide;
    return p == 0 ? col < kSide / 2 : col >= kSide / 2;
}

void print_receptive_field(const std::vector<std::int32_t>& w,
                           std::size_t out_idx) {
    std::int32_t peak = 1;
    for (std::size_t i = 0; i < kInputs; ++i)
        peak = std::max(peak, std::abs(w[i * 2 + out_idx]));
    std::printf("output %zu receptive field (+ above half-peak, - inhibitory):\n",
                out_idx);
    for (std::size_t r = 0; r < kSide; ++r) {
        std::printf("    ");
        for (std::size_t c = 0; c < kSide; ++c) {
            const std::int32_t v = w[(r * kSide + c) * 2 + out_idx];
            std::printf("%c", v > peak / 2 ? '+' : v < -peak / 2 ? '-' : '.');
        }
        std::printf("\n");
    }
}

}  // namespace

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto episodes = static_cast<std::size_t>(cli.get_int("episodes", 60));

    std::printf("STDP feature learning on the microcode engine\n");
    std::printf("---------------------------------------------\n");
    const auto rule = homeostatic_stdp();
    std::printf("pairwise rule   dw = %s\n", pairwise_stdp().dw.str().c_str());
    std::printf("triplet rule    dw = %s\n", triplet_stdp().dw.str().c_str());
    std::printf("homeostatic     dw = %s   <- used below\n\n",
                rule.dw.str().c_str());

    // ---- network: 64 inputs -> 2 outputs, all synapses plastic -------------
    Chip chip;
    PopulationConfig pc;
    pc.name = "pixels";
    pc.size = kInputs;
    pc.compartment = stdp_compartment();
    const auto pixels = chip.add_population(pc);
    pc.name = "features";
    pc.size = 2;
    pc.compartment.vth = kClampVth;
    const auto features = chip.add_population(pc);

    ProjectionConfig proj_cfg;
    proj_cfg.name = "rf";
    proj_cfg.src = pixels;
    proj_cfg.dst = features;
    proj_cfg.plastic = true;
    proj_cfg.rule = rule;
    std::vector<Synapse> syns;
    for (std::uint32_t i = 0; i < kInputs; ++i)
        for (std::uint32_t o = 0; o < 2; ++o) syns.push_back({i, o, 0, 0});
    const auto proj = chip.add_projection(proj_cfg, std::move(syns));
    chip.finalize();

    // ---- guided presentation loop -------------------------------------------
    common::Rng rng(11);
    std::vector<std::int32_t> pixel_bias(kInputs, 0);
    const auto present = [&](std::size_t pattern) {
        // Volley of the pattern's pixels (10% salt-and-pepper noise)...
        for (std::size_t i = 0; i < kInputs; ++i) {
            const bool on = in_pattern(i, pattern) != rng.bernoulli(0.1);
            pixel_bias[i] = on ? kVth : 0;
        }
        chip.set_bias(pixels, pixel_bias);
        chip.set_bias(features, {0, 0});
        chip.step();
        chip.apply_learning();
        // ...then the teacher forces the matching feature one step later.
        chip.set_bias(pixels, std::vector<std::int32_t>(kInputs, 0));
        chip.set_bias(features,
                      {pattern == 0 ? kClampVth : 0, pattern == 1 ? kClampVth : 0});
        chip.step();
        chip.apply_learning();
        // Quiet gap so traces clear between episodes.
        chip.set_bias(features, {0, 0});
        for (int k = 0; k < 10; ++k) {
            chip.step();
            chip.apply_learning();
        }
    };

    for (std::size_t e = 0; e < episodes; ++e) present(e % 2);

    // ---- report ---------------------------------------------------------------
    const auto w = chip.weights(proj);
    print_receptive_field(w, 0);
    std::printf("\n");
    print_receptive_field(w, 1);

    double in_mean[2] = {0, 0}, out_mean[2] = {0, 0};
    for (std::size_t i = 0; i < kInputs; ++i)
        for (std::size_t o = 0; o < 2; ++o) {
            (in_pattern(i, o) ? in_mean[o] : out_mean[o]) +=
                w[i * 2 + o] / (kInputs / 2.0);
        }
    std::printf("\nselectivity (mean weight inside vs outside own pattern):\n");
    for (std::size_t o = 0; o < 2; ++o)
        std::printf("    output %zu: %+.1f inside vs %+.1f outside\n", o,
                    in_mean[o], out_mean[o]);

    const bool selective = in_mean[0] > out_mean[0] + 8 &&
                           in_mean[1] > out_mean[1] + 8;
    std::printf("\n%s\n", selective
                              ? "each output is selective for its pattern — the "
                                "microcode STDP rule learned the receptive fields"
                              : "WARNING: selectivity did not emerge at this scale");
    return selective ? 0 : 1;
}
