// Event-driven input: address events on the chip, and the I/O economics of
// sparse sensors.
//
// The paper's input encoding argument (Sec. III-D) is about *dense* frames:
// every pixel carries a value, so programming one bias per pixel beats
// inserting one spike per rate-coded event by a factor of ~mean-rate * T.
// A DVS sensor inverts the trade: its output is already events, and only a
// small fraction of pixels fire at all. This example measures both paths on
// the simulated chip for a synthetic DVS recording:
//
//   * event-driven — one insert_spike per address event;
//   * frame-based  — accumulate the recording into an ON/OFF frame and
//     program one bias per input neuron (the paper's image pipeline).
//
// It also renders the on-chip spike raster of the input population, which
// is the address-event stream as the chip sees it.
//
// Run: ./build/examples/event_driven_inference [--side=48]

#include <cstdio>

#include "common/cli.hpp"
#include "data/encode.hpp"
#include "dvs/events.hpp"
#include "loihi/chip.hpp"
#include "viz/chart.hpp"

using namespace neuro;

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto side = static_cast<std::size_t>(cli.get_int("side", 96));

    dvs::GestureOptions gopt;
    gopt.count = 4;
    gopt.width = side;
    gopt.height = side;
    gopt.duration = 64;
    gopt.classes = 4;
    gopt.seed = 33;
    const auto ds = dvs::make_gestures(gopt);
    const auto& rec = ds.streams[0];  // one right-sweep recording

    std::printf("Event-driven input on the chip (%zux%zu DVS, %u steps)\n",
                ds.width, ds.height, ds.duration);
    std::printf("------------------------------------------------------\n\n");

    // ---- path 1: event-driven injection --------------------------------------
    loihi::Chip chip;
    loihi::PopulationConfig pc;
    pc.name = "dvs";
    pc.size = 2 * ds.pixels();  // [ON | OFF]
    pc.compartment.vth = 1 << 20;
    const auto pop = chip.add_population(pc);
    chip.finalize();
    chip.enable_raster(pop);

    std::size_t cursor = 0;
    for (std::uint32_t t = 0; t < ds.duration; ++t) {
        dvs::inject_events_at(chip, pop, rec, t, cursor, ds.width, ds.height);
        chip.step();
    }
    const auto event_writes = chip.activity().host_io_writes;

    // The input population's raster: the AER stream as the chip sees it.
    // (Rows bucket the 2*W*H input neurons; ON channel is the upper half.)
    std::printf("on-chip input raster of the recording (top half: ON channel, "
                "bottom: OFF):\n%s\n",
                viz::spike_raster(chip.raster(), ds.duration + 1,
                                  static_cast<std::uint32_t>(2 * ds.pixels()), 64,
                                  16)
                    .c_str());

    // ---- path 2: the frame pipeline -------------------------------------------
    const auto frame = dvs::accumulate_frame(rec, ds.width, ds.height);
    const auto cost = data::io_cost(frame, 64);

    std::printf("host -> chip I/O for this recording:\n");
    std::printf("    event-driven injection:   %8zu writes (one per event)\n",
                static_cast<std::size_t>(event_writes));
    std::printf("    bias-programmed frame:    %8zu writes (one per input "
                "neuron)\n",
                cost.bias_writes);
    std::printf("    rate-coded frame spikes:  %8zu writes (one per spike)\n\n",
                cost.spike_inserts);

    // ---- scaling: a fixed-size object in a growing field of view -------------
    // A sweep across the *whole* field emits ~2 events per swept pixel, so
    // full-field motion scales exactly like the frame (both O(pixels) — the
    // 96x96 numbers above show it). The regime where events win is the
    // realistic one: the moving object covers a fixed region while the
    // sensor, and therefore the frame, keeps growing.
    dvs::GestureOptions region = gopt;
    region.count = 1;
    region.width = 32;
    region.height = 32;
    const std::size_t region_events =
        dvs::make_gestures(region).streams[0].events.size();
    std::printf("scaling: a 32x32 gesture watched by larger sensors\n");
    std::printf("    %9s  %14s  %14s  %s\n", "sensor", "events",
                "frame biases", "cheaper path");
    for (const std::size_t s : {32ul, 48ul, 64ul, 128ul, 256ul}) {
        const std::size_t biases = 2 * s * s;
        std::printf("    %4zux%-4zu  %14zu  %14zu  %s\n", s, s, region_events,
                    biases, region_events < biases ? "event-driven" : "bias frame");
    }

    std::printf(
        "\nthe paper's bias encoding wins for dense images (%zu vs %zu writes "
        "above),\nand even a DVS recording is worth re-densifying when the "
        "motion covers the\nwhole field. But a real scene's activity is "
        "local: once the gesture occupies\na fixed region, its event count "
        "stops growing while the frame pays for every\npixel of the sensor — "
        "event-driven injection wins from ~48x48 up, and it\npreserves the "
        "timing the accumulated frame discards.\n",
        cost.bias_writes, cost.spike_inserts);
    return 0;
}
