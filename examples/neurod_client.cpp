// Example: talking to neurod over its binary wire protocol.
//
// Where examples/serving_async.cpp calls serve::Server in-process, this
// example crosses a real Unix socket: it boots a neurod event loop on a
// background thread (so the example is self-contained — against a
// production daemon only the connect line changes) and then acts as a
// client, using the minimal blocking netd::Client:
//   1. Submit a Predict frame with a priority class and a 30 ms SLO
//      deadline, and read the response: echoed request_id, label, the
//      measured latency/queue-sojourn, and the micro-batch it rode in.
//   2. Provoke a deadline miss: a frame whose SLO lapses while queued
//      (the serving workers are parked until after it expires) comes back
//      as an explicit Rejected{DeadlineExceeded} frame — never a hang.
//   3. Query the admin control socket: `ping`, `version`, and the `stats`
//      JSON dump (ServerStats + daemon + per-connection counters).
//   4. Shut down gracefully — accepted-implies-responded.
//
// The wire format and daemon design are docs/ARCHITECTURE.md §11; the
// README's five-line Python client speaks the same frames.
//
// Run:  ./example_neurod_client

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "data/dataset.hpp"
#include "netd/client.hpp"
#include "netd/daemon.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/server.hpp"

using namespace neuro;

namespace {

netd::RequestFrame frame_for(const common::Tensor& img, std::uint64_t id) {
    netd::RequestFrame f;
    f.request_id = id;
    f.shape.assign(img.shape().begin(), img.shape().end());
    f.data.assign(img.data(), img.data() + img.size());
    return f;
}

const char* status_name(netd::WireStatus s) {
    switch (s) {
        case netd::WireStatus::Ok: return "Ok";
        case netd::WireStatus::Rejected: return "Rejected";
        case netd::WireStatus::Error: return "Error";
    }
    return "?";
}

}  // namespace

int main() {
    // ---- a servable model and a daemon on a Unix socket --------------------
    data::GenOptions gen;
    gen.count = 8;
    gen.seed = 5;
    gen.height = 16;
    gen.width = 16;
    const auto images = data::make_digits(gen);

    runtime::ModelSpec spec;
    spec.input(1, 16, 16).hidden_layers({100}).output_classes(10);
    const auto model =
        runtime::CompiledModel::compile(spec, runtime::BackendKind::LoihiSim);

    serve::ServerOptions sopt;
    sopt.workers = 2;
    sopt.backpressure = serve::Backpressure::Shed;  // the daemon's requirement
    auto server = std::make_shared<serve::Server>(model, sopt);

    netd::DaemonOptions dopt;
    const auto base = std::filesystem::temp_directory_path() /
                      ("neurod_example_" + std::to_string(::getpid()));
    dopt.data_path = base.string() + ".sock";
    dopt.control_path = base.string() + ".ctl";
    netd::Daemon daemon(server, model, dopt);
    std::thread loop([&] { daemon.run(); });
    // The loop binds on its own thread; wait until it accepts.
    for (;;) {
        try {
            netd::Client::connect_unix(dopt.data_path);
            break;
        } catch (const std::exception&) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
    std::printf("daemon up on %s (control %s)\n\n", dopt.data_path.c_str(),
                dopt.control_path.c_str());

    auto client = netd::Client::connect_unix(dopt.data_path);

    // ---- 1. a deadline miss, provoked deterministically --------------------
    // Workers are not running yet, so this frame's 10 ms SLO lapses while
    // it waits in the admission queue; the head check then refuses to
    // spend a session slot on it and the daemon writes the rejection back
    // as a frame (docs/ARCHITECTURE.md §10-11).
    auto doomed = frame_for(images.samples[0].image, /*id=*/1);
    doomed.deadline_us = 10'000;
    client.send(doomed);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server->start();  // workers wake to find the SLO already passed

    netd::ResponseFrame resp;
    if (!client.recv_response(resp)) return 1;
    std::printf("id=%llu  %s  reason=%u  (queued %llu us against a 10 ms "
                "SLO)\n",
                static_cast<unsigned long long>(resp.request_id),
                status_name(resp.status), resp.reject_reason,
                static_cast<unsigned long long>(resp.sojourn_us));

    // ---- 2. submit-with-deadline, this time served -------------------------
    auto live = frame_for(images.samples[1].image, /*id=*/2);
    live.deadline_us = 30'000;
    live.priority = static_cast<std::uint8_t>(serve::Priority::Interactive);
    const auto ok = client.call(live);
    std::printf("id=%llu  %s  label=%u  latency=%llu us  sojourn=%llu us  "
                "batch=%u\n",
                static_cast<unsigned long long>(ok.request_id),
                status_name(ok.status), ok.label,
                static_cast<unsigned long long>(ok.latency_us),
                static_cast<unsigned long long>(ok.sojourn_us),
                ok.batch_size);

    // ---- 3. the admin plane ------------------------------------------------
    std::printf("\ncontrol> ping     %s\n",
                netd::control_request(dopt.control_path, "ping").c_str());
    std::printf("control> version  %s\n",
                netd::control_request(dopt.control_path, "version").c_str());
    const auto stats = netd::control_request(dopt.control_path, "stats");
    std::printf("control> stats    %.120s...\n", stats.c_str());

    // ---- 4. graceful shutdown ----------------------------------------------
    daemon.request_shutdown();  // what the SIGTERM handler calls in neurod
    loop.join();
    server->shutdown();
    std::filesystem::remove(dopt.data_path);
    std::filesystem::remove(dopt.control_path);
    std::printf("\ndrained — every accepted frame was answered before "
                "exit\n");
    return 0;
}
