// The paper's headline scenario (Sec. IV-A) end to end: pretrain the conv
// feature extractor offline, freeze + quantize it onto the simulated chip,
// then learn the dense classifier *online, on chip* from a stream of
// labelled digits — printing streaming (prequential) accuracy as it learns.
//
//   run:    ./build/examples/online_digit_learning
//   flags:  --dataset=digits|fashion|cifar|sar  --train=N  --feedback=fa|dfa
//           --mnist-dir=PATH (use real MNIST IDX files instead of synthetic)

#include <cstdio>

#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "core/trainer.hpp"
#include "data/idx_loader.hpp"

using namespace neuro;

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    if (cli.error()) return 1;
    core::ExperimentSpec spec;
    spec.dataset = cli.get("dataset", "digits");
    spec.train_count = static_cast<std::size_t>(cli.get_int("train", 600));
    spec.test_count = static_cast<std::size_t>(cli.get_int("test", 200));
    spec.ann_epochs = 3;
    spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

    // Optionally run on real MNIST if the IDX files are available.
    const std::string mnist_dir = cli.get("mnist-dir", "");
    if (!mnist_dir.empty()) {
        if (auto real = data::load_mnist_dir(mnist_dir, "train",
                                             spec.train_count + spec.test_count)) {
            std::printf("using real MNIST from %s (%zu samples)\n",
                        mnist_dir.c_str(), real->size());
        } else {
            std::printf("MNIST not found under %s; using the synthetic substitute\n",
                        mnist_dir.c_str());
        }
    }

    std::printf("== stage 1: synthesize '%s' and pretrain the conv stack ==\n",
                spec.dataset.c_str());
    const auto prep = core::prepare(spec);
    std::printf("offline ANN accuracy (upper bound): %.1f%%\n",
                prep.ann_test_accuracy * 100.0);
    std::printf("conv thresholds after balancing: conv1 vth=%d, conv2 vth=%d\n\n",
                prep.stack.conv1.vth, prep.stack.conv2.vth);

    std::printf("== stage 2: map onto the chip ==\n");
    core::EmstdpOptions opt;
    opt.feedback = cli.get("feedback", "dfa") == "fa" ? core::FeedbackMode::FA
                                                      : core::FeedbackMode::DFA;
    auto net = core::build_chip_network(prep, opt);
    const auto costs = net->costs();
    std::printf("%zu compartments, %zu synapses on %zu cores (feedback path: "
                "%zu compartments, %zu synapses)\n\n",
                costs.compartments, costs.synapses, costs.cores,
                costs.feedback_compartments, costs.feedback_synapses);

    std::printf("== stage 3: online learning, batch size 1 ==\n");
    common::Rng rng(42);
    for (int epoch = 0; epoch < 3; ++epoch) {
        const double preq =
            core::train_epoch(*net, prep.train, rng, /*measure_prequential=*/true);
        const double test = core::evaluate(*net, prep.test);
        std::printf("epoch %d: prequential (streaming) accuracy %.1f%%, "
                    "held-out accuracy %.1f%%\n",
                    epoch + 1, preq * 100.0, test * 100.0);
        std::fflush(stdout);
    }

    const loihi::EnergyModelParams params;
    const auto energy = core::measure_energy(*net, prep.train, 10, true, params);
    std::printf("\nmodeled chip operating point while training: %.0f FPS, "
                "%.2f W, %.2f mJ/image\n",
                energy.fps, energy.power_w, energy.energy_per_sample_j * 1e3);
    return 0;
}
