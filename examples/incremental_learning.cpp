// Incremental online learning demo (paper Sec. IV-B): the deployed network
// learns classes it has never seen, recovering from catastrophic forgetting
// through the alternating two-step protocol. A compact version of
// bench/fig4_incremental with narrative output.
//
//   run:  ./build/examples/incremental_learning

#include <cstdio>

#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "iol/incremental.hpp"

using namespace neuro;

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    core::ExperimentSpec spec;
    spec.dataset = cli.get("dataset", "digits");
    spec.train_count = static_cast<std::size_t>(cli.get_int("train", 500));
    spec.test_count = static_cast<std::size_t>(cli.get_int("test", 200));
    spec.ann_epochs = 2;
    spec.seed = 11;
    std::printf("preparing '%s'...\n", spec.dataset.c_str());
    const auto prep = core::prepare(spec);

    iol::IolOptions opt;
    opt.initial_classes = 4;
    opt.classes_per_iteration = 2;
    opt.iterations = 2;          // demo: 4 -> 6 -> 8 classes
    opt.rounds_per_iteration = 3;
    opt.pretrain_epochs = 2;
    opt.baseline_epochs = 2;

    const auto factory = [&prep]() {
        core::EmstdpOptions eopt;
        eopt.feedback = core::FeedbackMode::DFA;
        eopt.seed = 7;
        return core::build_chip_network(prep, eopt);
    };

    std::printf("pretraining on 4 classes, then adding 2 classes per "
                "iteration over %zu rounds each...\n\n",
                opt.rounds_per_iteration);
    const auto result = iol::run_incremental(factory, prep.train, prep.test, opt);

    std::printf("pretraining accuracy (4 classes): %.1f%%\n\n",
                result.pretrain_accuracy * 100.0);
    for (const auto& rec : result.rounds) {
        if (rec.round == 0)
            std::printf("-- iteration %zu: 2 new classes arrive (%zu observed) --\n",
                        rec.iteration + 1, rec.observed_classes.size());
        std::printf("  round %zu: step1 %.1f%% (old classes %.1f%%) -> step2 %.1f%%\n",
                    rec.round + 1, rec.accuracy_after_step1 * 100.0,
                    rec.old_class_accuracy_after_step1 * 100.0,
                    rec.accuracy_after_step2 * 100.0);
        if (rec.round + 1 == opt.rounds_per_iteration)
            std::printf("  joint-training baseline: %.1f%%\n",
                        result.baseline[rec.iteration] * 100.0);
    }
    std::printf("\nThe step-1 dip (strongest on the old classes) is the "
                "catastrophic forgetting the paper's Fig. 4 shows; step 2's "
                "replay recovers it across rounds.\n");
    return 0;
}
