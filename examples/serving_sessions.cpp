// Example: high-throughput inference serving with the runtime API.
//
// The deployment story the session design enables:
//   1. Train on one session (or load a checkpoint).
//   2. Freeze the trained weights into a new immutable CompiledModel
//      (with_weights) — the servable artifact.
//   3. Open one Session per serving thread. Sessions share the compiled
//      chip structure and read ONE copy-on-write weight image: no
//      per-thread chip deep-copy, no locks, identical results.
//   4. The same snapshot also loads into the full-precision Reference
//      backend — one surface, two substrates.
//
// Run:  ./example_serving_sessions [--threads=N]

#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "runtime/backend.hpp"
#include "runtime/compiled_model.hpp"

using namespace neuro;

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto threads = static_cast<std::size_t>(cli.get_int("threads", 4));

    // Synthetic 16x16 digits (drop-in for MNIST; see src/data/dataset.hpp).
    data::GenOptions gen;
    gen.count = 700;
    gen.seed = 3;
    gen.height = 16;
    gen.width = 16;
    const auto all = data::make_digits(gen);
    const auto [train, test] = data::split(all, 500);

    // ---- 1. train on the chip backend --------------------------------------
    runtime::ModelSpec spec;
    spec.input(1, 16, 16).hidden_layers({100}).output_classes(10);
    const auto model = runtime::CompiledModel::compile(
        spec, runtime::BackendKind::LoihiSim);
    auto trainer_session = model->open_session();
    common::Rng rng(42);
    for (int e = 0; e < 2; ++e)
        core::train_epoch(*trainer_session, train, rng);
    std::printf("trained: %.1f%% test accuracy\n",
                core::evaluate(*trainer_session, test) * 100.0);

    // ---- 2. freeze the trained weights into a servable model ---------------
    const auto snapshot = trainer_session->weights();
    const auto servable = model->with_weights(snapshot);

    // ---- 3. concurrent inference sessions ----------------------------------
    std::vector<std::unique_ptr<runtime::Session>> sessions;
    for (std::size_t t = 0; t < threads; ++t)
        sessions.push_back(servable->open_session());

    std::vector<std::size_t> hits(threads, 0);
    common::ThreadPool pool(threads);
    pool.run(threads, [&](std::size_t t) {
        for (std::size_t i = t; i < test.size(); i += threads)
            if (sessions[t]->predict(test.samples[i].image) ==
                test.samples[i].label)
                ++hits[t];
    });
    std::size_t total = 0;
    for (const auto h : hits) total += h;
    std::printf("served %zu predictions across %zu sessions: %.1f%% accuracy\n",
                test.size(), threads,
                100.0 * static_cast<double>(total) /
                    static_cast<double>(test.size()));

    // ---- 4. the same snapshot on the full-precision backend ----------------
    // (No conv stack here, so the raw image doubles as the rate vector.)
    const auto ref_model = runtime::CompiledModel::compile(
        spec, runtime::BackendKind::Reference)->with_weights(snapshot);
    auto ref_session = ref_model->open_session();
    std::size_t agree = 0;
    for (const auto& s : test.samples)
        if (ref_session->predict(s.image) ==
            sessions[0]->predict(s.image))
            ++agree;
    std::printf("reference backend agrees with the chip on %.1f%% of the "
                "test set (8-bit vs float dynamics)\n",
                100.0 * static_cast<double>(agree) /
                    static_cast<double>(test.size()));
    return 0;
}
