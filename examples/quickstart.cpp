// Quickstart: train a two-layer spiking network *on the simulated chip*
// with EMSTDP, from scratch, on a toy rate-vector task — the smallest
// complete use of the public runtime API:
//
//   ModelSpec  (what to build)
//     -> CompiledModel::compile  (immutable; all expensive setup happens here)
//       -> open_session          (cheap; one per thread)
//         -> train / predict / save
//
//   build:  cmake -B build -G Ninja && cmake --build build
//   run:    ./build/example_quickstart

#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"
#include "core/network.hpp"
#include "runtime/compiled_model.hpp"

using neuro::common::Rng;
using neuro::common::Tensor;

int main() {
    // A 3-class toy task: each class is a noisy rate pattern over 24 inputs.
    Rng rng(1);
    std::vector<std::vector<float>> prototypes;
    for (std::size_t c = 0; c < 3; ++c) {
        std::vector<float> p(24, 0.05f);
        for (std::size_t k = 0; k < 6; ++k) p[(c * 6 + k) % 24] = 0.8f;
        prototypes.push_back(std::move(p));
    }
    auto sample = [&](Rng& r) {
        const auto c = static_cast<std::size_t>(r.uniform_int(0, 2));
        Tensor x({1, 1, 24});
        for (std::size_t i = 0; i < 24; ++i)
            x[i] = std::clamp(prototypes[c][i] +
                                  static_cast<float>(r.normal(0.0, 0.05)),
                              0.0f, 1.0f);
        return std::pair{std::move(x), c};
    };

    // Model: 24 inputs -> 16 hidden -> 3 outputs, trained on-chip with
    // direct feedback alignment. Everything on the datapath is 8-bit.
    neuro::core::EmstdpOptions opt;
    opt.feedback = neuro::core::FeedbackMode::DFA;
    opt.phase_length = 64;  // T: each phase runs 64 timesteps

    neuro::runtime::ModelSpec spec;
    spec.input(1, 1, 24).hidden_layers({16}).output_classes(3).with_options(opt);

    // Compile once (builds the chip, maps cores, freezes initial weights),
    // then open a session holding the dynamic state.
    const auto model = neuro::runtime::CompiledModel::compile(
        spec, neuro::runtime::BackendKind::LoihiSim);
    auto session = model->open_session();

    const auto costs = session->native_network()->costs();
    std::printf("network: %zu compartments, %zu synapses, %zu cores\n",
                costs.compartments, costs.synapses, costs.cores);

    // Online training: one sample at a time, two phases of T steps each,
    // weight update at the end of the 2T window (paper Operation Flow 1).
    for (int i = 0; i < 300; ++i) {
        auto [x, y] = sample(rng);
        session->train(x, y);
        if ((i + 1) % 100 == 0) {
            Rng eval_rng(42);
            int hit = 0;
            for (int k = 0; k < 60; ++k) {
                auto [tx, ty] = sample(eval_rng);
                if (session->predict(tx) == ty) ++hit;
            }
            std::printf("after %4d samples: accuracy %.1f%%\n", i + 1,
                        100.0 * hit / 60.0);
        }
    }

    // Checkpoint the trained weights; CompiledModel::with_weights +
    // open_session loads them anywhere (any backend, any thread).
    session->save("quickstart.weights");
    std::printf("weights checkpointed to quickstart.weights\n");
    return 0;
}
