// Tour of the NxSDK-shaped construction API (src/nx).
//
// Builds a small feed-forward spiking edge detector entirely from
// prototypes and groups — the idiom of paper Operation Flow 1's "Create
// Network N" step — and runs it on two stimuli:
//
//     12x12 pixels --conv 3x3 (2 filters: |, -)--> 2x10x10 feature maps
//                  --dense readout--> 2 neurons ("vertical", "horizontal")
//                  with masked mutual inhibition between the readouts
//
// A vertical-bar image drives the vertical readout, a horizontal-bar image
// the horizontal one. Everything is integer, rate-coded and runs on the
// simulated chip; no learning is involved (see stdp_feature_learning and
// the EMSTDP examples for on-chip training).
//
// Run: ./build/examples/nx_api_tour

#include <cstdio>
#include <vector>

#include "nx/net.hpp"

using namespace neuro;
using namespace neuro::nx;

namespace {

constexpr std::size_t kSide = 12;
constexpr std::int32_t kT = 64;  // presentation window

/// Renders a one-pixel-wide bar through the sheet centre.
std::vector<std::int32_t> bar_image(bool vertical, std::int32_t strength) {
    std::vector<std::int32_t> img(kSide * kSide, 0);
    for (std::size_t i = 0; i < kSide; ++i) {
        const std::size_t r = vertical ? i : kSide / 2;
        const std::size_t c = vertical ? kSide / 2 : i;
        img[r * kSide + c] = strength;
    }
    return img;
}

}  // namespace

int main() {
    std::printf("NxSDK-style API tour: spiking edge detector\n");
    std::printf("-------------------------------------------\n\n");

    // ---- prototypes ---------------------------------------------------------
    CompartmentPrototype if_proto;  // paper IF config: no leak, instant current
    if_proto.config.vth = 64;
    if_proto.config.floor_at_zero = true;  // conv outputs behave like ReLU

    ConnectionPrototype static_conn;  // defaults: static, soma port, no delay

    // ---- groups ---------------------------------------------------------------
    NxNet net;
    const auto pixels =
        net.create_compartment_group("pixels", kSide * kSide, if_proto);

    snn::ConvSpec spec;
    spec.in_c = 1;
    spec.in_h = kSide;
    spec.in_w = kSide;
    spec.out_c = 2;
    spec.kernel = 3;
    spec.stride = 1;
    const auto features =
        net.create_compartment_group("features", spec.out_size(), if_proto);

    const auto readout = net.create_compartment_group("readout", 2, if_proto);

    // ---- connections -----------------------------------------------------------
    // Kernel bank {out_c, in_c, 3, 3}: filter 0 responds to vertical strokes,
    // filter 1 to horizontal ones (centre column / centre row positive).
    const std::vector<std::int32_t> kernels = {
        // vertical  |           // horizontal -
        -16, 32, -16,            //
        -16, 32, -16,            //
        -16, 32, -16,            //
        -16, -16, -16,           //
        32,  32,  32,            //
        -16, -16, -16,           //
    };
    net.connect_conv(pixels, features, static_conn, spec, kernels);

    // Dense readout: each readout neuron pools its own feature map. The
    // {dst, src} matrix view makes this a 2 x 200 band matrix.
    const std::size_t map = spec.out_h() * spec.out_w();
    std::vector<std::int32_t> pool(2 * spec.out_size(), 0);
    for (std::size_t d = 0; d < 2; ++d)
        for (std::size_t k = 0; k < map; ++k) pool[d * spec.out_size() + d * map + k] = 8;
    net.create_connection_group(features, readout, static_conn, pool);

    // Masked mutual inhibition: connect only the off-diagonal entries.
    const std::vector<std::int32_t> inhibit = {0, -40, -40, 0};
    const std::vector<std::uint8_t> off_diag = {0, 1, 1, 0};
    net.create_connection_group(readout, readout, static_conn, inhibit, off_diag);

    net.compile();
    std::printf("compiled: %zu compartments, %zu synapses, %zu cores\n\n",
                net.chip().total_compartments(), net.chip().total_synapses(),
                net.chip().mapping().total_cores);

    // ---- run two stimuli --------------------------------------------------------
    for (const bool vertical : {true, false}) {
        net.reset();
        net.set_bias(pixels, bar_image(vertical, 48));
        net.run(kT);
        const auto feat = net.spike_counts(features);
        std::int64_t map0 = 0, map1 = 0;
        for (std::size_t k = 0; k < map; ++k) {
            map0 += feat[k];
            map1 += feat[map + k];
        }
        const auto out = net.spike_counts(readout);
        std::printf("%s bar:  feature-map spikes {|: %lld, -: %lld}  "
                    "readout {vertical: %d, horizontal: %d}  -> %s\n",
                    vertical ? "vertical  " : "horizontal",
                    static_cast<long long>(map0), static_cast<long long>(map1),
                    out[0], out[1], out[0] > out[1] ? "vertical" : "horizontal");
    }

    std::printf("\nAPI features exercised: CompartmentPrototype, "
                "ConnectionPrototype,\ncompartment groups, conv / dense / "
                "masked connection groups, compile(),\nbias programming, run, "
                "spike-count readout, per-sample reset.\n");
    return 0;
}
