// Learning while serving, end to end (docs/ARCHITECTURE.md §9):
//
//   1. compile a model and put a serve::Server pool on it,
//   2. attach an online::OnlineEngine to the server's feedback queue,
//   3. stream labeled feedback while inference traffic keeps flowing,
//   4. watch versions pass the shadow-eval gate, get published, be adopted
//      by the pool at batch boundaries, and land in the on-disk registry.
//
// Build & run:  cmake --build build --target example_online_serving &&
//               ./build/example_online_serving

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "online/engine.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/server.hpp"

using namespace neuro;

int main() {
    // ---- data: a digits stream plus a held-out set for the shadow eval ----
    data::GenOptions gen;
    gen.count = 560;
    gen.seed = 17;
    gen.height = 16;
    gen.width = 16;
    const auto [stream, holdout] = data::split(data::make_digits(gen), 480);

    // ---- model + serving pool ---------------------------------------------
    runtime::ModelSpec spec;
    spec.input(1, 16, 16).hidden_layers({100}).output_classes(10);
    const auto model = runtime::CompiledModel::compile(spec);

    serve::ServerOptions sopt;
    sopt.workers = 2;
    sopt.admission.feedback_capacity = 256;  // enables the labeled-feedback intake
    serve::Server server(model, sopt);

    // ---- the online engine -------------------------------------------------
    const auto registry_dir =
        std::filesystem::temp_directory_path() / "neuro_online_example";
    std::filesystem::remove_all(registry_dir);
    online::OnlineOptions oopt;
    oopt.publish_interval = 120;  // shadow-eval + publish every 120 samples
    oopt.max_regression = 0.05;   // candidates may not regress > 5 points
    oopt.feedback_batch = 1;
    oopt.registry_dir = registry_dir.string();
    online::OnlineEngine engine(model, server.feedback_queue(), holdout, oopt);

    server.start();
    engine.start();
    std::printf("baseline accuracy (shadow eval): %.3f\n",
                engine.stats().baseline_accuracy);

    // ---- serve and learn at the same time ---------------------------------
    std::atomic<bool> stop{false};
    std::thread traffic([&] {
        for (std::size_t i = 0; !stop.load(); ++i)
            (void)server.submit(stream.samples[i % stream.size()].image).get();
    });
    std::size_t accepted = 0;
    for (const auto& s : stream.samples) {
        // Feedback is best-effort: when the learner falls behind, the queue
        // sheds and submit_feedback says so — count what actually got in.
        if (server.submit_feedback(s.image, s.label)) ++accepted;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    // Wait for the learner to drain what was accepted, then stop (order-
    // independent with server.shutdown(): both close the shared queue).
    while (engine.stats().feedback_seen < accepted)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stop.store(true);
    traffic.join();
    engine.stop();
    server.shutdown();

    // ---- what happened -----------------------------------------------------
    const auto es = engine.stats();
    const auto ss = server.stats();
    std::printf("feedback consumed: %llu (trained %llu incl. replay)\n",
                static_cast<unsigned long long>(es.feedback_seen),
                static_cast<unsigned long long>(es.trained));
    std::printf("candidates %llu -> published %llu, rollbacks %llu\n",
                static_cast<unsigned long long>(es.candidates),
                static_cast<unsigned long long>(es.published),
                static_cast<unsigned long long>(es.rollbacks));
    std::printf("accuracy: %.3f -> %.3f (serving version %llu)\n",
                es.baseline_accuracy, es.last_good_accuracy,
                static_cast<unsigned long long>(es.current_version));
    std::printf("pool picked up %llu weight refreshes; served %llu requests\n",
                static_cast<unsigned long long>(ss.weight_refreshes),
                static_cast<unsigned long long>(ss.completed));
    if (engine.registry()) {
        std::printf("registry (%s):\n", engine.registry()->dir().c_str());
        for (const auto& e : engine.registry()->entries())
            std::printf("  v%llu  accuracy %.3f\n",
                        static_cast<unsigned long long>(e.version), e.accuracy);
    }

    // A post-mortem session sees the last published (gated) weights.
    auto session = model->open_session();
    session->refresh();
    std::printf("fresh session after refresh(): accuracy %.3f\n",
                core::evaluate(*session, holdout));
    std::filesystem::remove_all(registry_dir);
    return 0;
}
