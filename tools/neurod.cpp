// neurod — the network serving daemon (docs/ARCHITECTURE.md §11–12).
//
// Compiles a model, fronts it with a serve::ModelRouter (Shed
// backpressure — the event loop must never block), and runs a
// netd::Daemon on a Unix-domain data socket (plus an optional loopback
// TCP listener) with a dinit-style admin control socket next to it.
// SIGTERM/SIGINT trigger the graceful drain: stop accepting, resolve
// everything in flight, flush every response, exit 0.
//
// Multi-model: --fleet points at a directory holding one
// online::ModelRegistry subdirectory per model name; v2 clients address
// entries by name, the router lazy-loads them, and --budget_mb caps the
// resident plastic-weight bytes (LRU eviction above it; 0 = unlimited).
//
//   ./neurod --listen=/tmp/neurod.sock --control=/tmp/neurod.ctl
//            --workers=2 --batch=8 --queue=256 --registry=registry_dir
//            --fleet=fleet_dir --budget_mb=64

#include <csignal>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "netd/daemon.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "online/registry.hpp"
#include "runtime/compiled_model.hpp"
#include "runtime/model_spec.hpp"
#include "serve/router.hpp"

namespace {

neuro::netd::Daemon* g_daemon = nullptr;

void on_signal(int) {
    if (g_daemon) g_daemon->request_shutdown();  // async-signal-safe
}

std::vector<std::size_t> parse_hidden(const std::string& csv) {
    std::vector<std::size_t> out;
    std::size_t pos = 0;
    while (pos < csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string tok =
            csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
        out.push_back(static_cast<std::size_t>(std::stoul(tok)));
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace neuro;

    const common::Cli cli(argc, argv);
    if (cli.error()) return 2;

    const std::string listen = cli.get("listen", "/tmp/neurod.sock");
    const std::string control = cli.get("control", "/tmp/neurod.ctl");
    const std::string registry_dir = cli.get("registry", "");
    const std::string fleet_dir = cli.get("fleet", "");

    netd::DaemonOptions dopt;
    dopt.data_path = listen;
    dopt.control_path = control;
    dopt.tcp_port = static_cast<std::uint16_t>(cli.get_int("tcp", 0));
    dopt.max_frame_bytes =
        static_cast<std::size_t>(cli.get_int("max_frame", 1 << 20));
    dopt.write_buffer_limit =
        static_cast<std::size_t>(cli.get_int("write_buffer", 4 << 20));
    dopt.max_inflight_per_conn =
        static_cast<std::size_t>(cli.get_int("max_inflight", 256));
    dopt.drain_timeout_ms =
        static_cast<std::uint64_t>(cli.get_int("drain_timeout_ms", 10'000));

    serve::RouterOptions ropt;
    ropt.workers = static_cast<std::size_t>(cli.get_int("workers", 2));
    ropt.queue_capacity = static_cast<std::size_t>(cli.get_int("queue", 256));
    ropt.batch.max_batch = static_cast<std::size_t>(cli.get_int("batch", 8));
    ropt.batch.max_delay_us =
        static_cast<std::uint64_t>(cli.get_int("delay_us", 200));
    ropt.backpressure = serve::Backpressure::Shed;
    ropt.admission.codel.enabled = cli.get_bool("codel", true);
    ropt.admission.codel.target_us =
        static_cast<std::uint64_t>(cli.get_int("codel_target_us", 5'000));
    ropt.admission.codel.interval_us =
        static_cast<std::uint64_t>(cli.get_int("codel_interval_us", 100'000));
    ropt.admission.feedback_capacity =
        static_cast<std::size_t>(cli.get_int("feedback_capacity", 0));
    ropt.fleet_dir = fleet_dir;
    ropt.default_registry_dir = registry_dir;
    ropt.resident_budget_bytes =
        static_cast<std::size_t>(cli.get_int("budget_mb", 0)) * (1u << 20);

    // Observability (docs/ARCHITECTURE.md §14): the process-lifetime
    // default registry/recorder back the control socket's `metrics` and
    // `events` commands; --slow_request_us arms the slow-request log
    // (0 disables), --timing enables the obs::Timer instrumentation.
    ropt.recorder = &obs::default_recorder();
    ropt.slow_request_us =
        static_cast<std::uint64_t>(cli.get_int("slow_request_us", 0));
    dopt.metrics = &obs::default_registry();
    obs::set_timing(cli.get_bool("timing", false));

    const auto side = static_cast<std::size_t>(cli.get_int("side", 16));
    const auto classes = static_cast<std::size_t>(cli.get_int("classes", 10));
    const auto hidden = parse_hidden(cli.get("hidden", "100"));

    try {
        const auto spec = runtime::ModelSpec{}
                              .input(1, side, side)
                              .hidden_layers(hidden)
                              .output_classes(classes);
        auto model = runtime::CompiledModel::compile(
            spec, runtime::BackendKind::LoihiSim);

        std::shared_ptr<online::ModelRegistry> registry;
        if (!registry_dir.empty()) {
            registry = std::make_shared<online::ModelRegistry>(registry_dir);
            // Boot from the last weight version that passed the shadow-eval
            // gate, exactly like a restarted online engine would.
            if (const auto last = registry->last_good()) {
                model->publish_weights(registry->load(last->version));
                std::fprintf(stderr, "neurod: booted registry v%llu\n",
                             static_cast<unsigned long long>(last->version));
            }
        }

        auto router = std::make_shared<serve::ModelRouter>(model, ropt);
        router->start();

        netd::Daemon daemon(router, dopt, registry);
        g_daemon = &daemon;
        struct sigaction sa{};
        sa.sa_handler = on_signal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);
        ::signal(SIGPIPE, SIG_IGN);

        std::fprintf(stderr,
                     "neurod: serving on %s (control %s)%s, %zu workers%s\n",
                     listen.c_str(),
                     control.empty() ? "disabled" : control.c_str(),
                     dopt.tcp_port ? " + tcp" : "", ropt.workers,
                     fleet_dir.empty() ? "" : ", fleet enabled");
        daemon.run();  // returns after the graceful drain
        g_daemon = nullptr;

        router->shutdown();
        const auto d = daemon.stats();
        std::fprintf(stderr,
                     "neurod: drained — %llu frames in, %llu responses out, "
                     "%llu connections\n",
                     static_cast<unsigned long long>(d.frames_in),
                     static_cast<unsigned long long>(d.responses_out),
                     static_cast<unsigned long long>(d.connections_accepted));
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "neurod: fatal: %s\n", e.what());
        return 1;
    }
}
