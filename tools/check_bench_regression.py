#!/usr/bin/env python3
"""Bench-regression gate for CI.

Compares the JSON emitted by the bench binaries (bench_results/*.json)
against committed baselines (bench/baselines/*.json) and fails when a
tracked metric regresses by more than the tolerance.

Raw throughput is machine-dependent, so for throughput benches each row's
rate is first normalized by a reference row measured in the *same run*
("serial, dense sweep") — the gate then tracks relative speedups (sparse
vs dense, parallel vs serial, serving scale-out), which transfer across
machines. Accuracy benches compare absolutely: the simulator is integer
and seeded, so accuracies are reproducible.

Usage:
  tools/check_bench_regression.py [--results bench_results]
      [--baselines bench/baselines] [--tolerance 0.20]

Exit status 0 when every metric is within tolerance, 1 otherwise.
"""

import argparse
import json
import os
import sys

# Per-bench gating rules. `metrics` are higher-is-better numeric columns;
# `max_metrics` are lower-is-better columns (latency-style: the gate fails
# when current exceeds baseline * (1 + tolerance)); `normalize_by` names
# the reference row whose metric value divides every row's (same-run
# normalization); `min_baseline` skips rows whose baseline value carries
# no signal (e.g. chance-level accuracy at smoke scale); `tolerance`
# overrides the CLI-wide --tolerance for that one bench (tight gates like
# the tracing-overhead rule want 5% where throughput gates need 20%).
#
# table1 gates only the chip columns: the chip simulator is pure integer
# with seeded RNG, so those accuracies are reproducible across machines.
# The float-reference columns ride along in the uploaded artifact but are
# not gated (at smoke scale they sit within a couple of samples of the
# compiler's floating-point mood).
RULES = {
    "throughput_parallel": {
        "key": "config",
        "metrics": ["samples_per_sec"],
        "normalize_by": "serial, dense sweep",
    },
    "table1_accuracy": {
        "key": "dataset",
        "metrics": ["fa_chip", "dfa_chip"],
        "min_baseline": 0.25,
    },
    # Chip kernel phases: per-phase costs are normalized by the same-run
    # scalar-reference row, so the gate tracks the simd/scalar ratio of the
    # membrane sweep and the synaptic accumulation (lower is better) — a
    # machine-independent measure of whether the SoA lane kernels still
    # engage. The "sparse, simd" row rides along in the results but is
    # absent from the committed baseline: its win depends on workload
    # quiescence, not kernel layout.
    "micro_chip": {
        "key": "config",
        "max_metrics": ["sweep_ns_per_compartment", "accum_ns_per_event"],
        "normalize_by": "dense, scalar",
    },
    # Serving scale-out: each config's request rate is normalized by the
    # same-run single-worker unbatched rate, so the gate tracks the
    # worker-scaling and batching ratios rather than machine speed.
    "serving_load": {
        "key": "config",
        "metrics": ["throughput_rps"],
        "normalize_by": "closed, workers=1, batch=1",
    },
    # Tail latency under overload: every row is normalized by the same-run
    # blunt-shedding row ("overload, shed-only"), so the gate tracks what
    # admission control buys over tail-dropping on the same machine under
    # the same Poisson storm: goodput must hold (higher is better) while
    # p99 of accepted requests stays bounded (lower is better). The
    # closed-ref row in the results file is context only — it is absent
    # from the committed baseline, so it is not gated (its ratio to the
    # overload rows is too machine-dependent).
    "serving_overload": {
        "key": "config",
        "metrics": ["goodput_rps"],
        "max_metrics": ["p99_us"],
        "normalize_by": "overload, shed-only",
    },
    # Wire tax: the socket-closed row is normalized by the same-run
    # in-process row at identical workers/batch/queue, so the gate tracks
    # how much throughput neurod's framing + socket hops cost relative to
    # calling the server directly — a ratio that transfers across machines.
    # The socket-open row rides along in the results but is absent from the
    # committed baseline (Poisson timing over a real socket is too
    # machine-dependent to gate).
    "serving_socket": {
        "key": "config",
        "metrics": ["throughput_rps"],
        "normalize_by": "inproc",
    },
    # Multi-tenant fan-out tax: every row is normalized by the same-run
    # models=1 row (a single fleet entry behind the identical ModelRouter
    # machinery), so the gate tracks how much throughput routing across M
    # session pools costs relative to one — a ratio that transfers across
    # machines, independent of how fast the runner executes inference.
    "serving_multimodel": {
        "key": "config",
        "metrics": ["throughput_rps"],
        "normalize_by": "multimodel, models=1",
    },
    # Tracing tax: the trace-on row is normalized by the same-run trace-off
    # row (identical closed-loop workload, spans off vs on), so the gate
    # tracks the relative cost of per-request span stamping — a ratio that
    # transfers across machines. The tight per-rule tolerance enforces the
    # observability contract: tracing may cost at most ~5% throughput.
    "serving_trace": {
        "key": "config",
        "metrics": ["throughput_rps"],
        "normalize_by": "trace-off",
        "tolerance": 0.05,
    },
    # Learning-while-serving: the feedback order and the integer simulator
    # make the end-of-stream accuracy reproducible across machines, so it
    # compares absolutely (like table1). The serve-only control row sits at
    # chance and is skipped by the signal floor; latency columns are
    # machine-dependent and deliberately not gated.
    "online_serving": {
        "key": "config",
        "metrics": ["final_accuracy"],
        "min_baseline": 0.2,
    },
}


def load_rows(path):
    with open(path, encoding="utf-8") as f:
        rows = json.load(f)
    if not isinstance(rows, list):
        raise ValueError(f"{path}: expected a JSON array of row objects")
    return rows


def index_rows(rows, key):
    out = {}
    for row in rows:
        out[str(row[key])] = row
    return out


def all_metrics(rule):
    return list(rule.get("metrics", [])) + list(rule.get("max_metrics", []))


def normalized(rows_by_key, rule):
    ref_key = rule.get("normalize_by")
    out = {}
    for key, row in rows_by_key.items():
        out[key] = {}
        for metric in all_metrics(rule):
            value = row.get(metric)
            if not isinstance(value, (int, float)):
                continue
            if ref_key is not None:
                ref = rows_by_key.get(ref_key, {}).get(metric)
                if not isinstance(ref, (int, float)) or ref == 0:
                    raise ValueError(
                        f"normalization row '{ref_key}' missing metric {metric}")
                value = value / ref
            out[key][metric] = value
    return out


def check_bench(name, baseline_path, results_path, tolerance):
    rule = RULES.get(name)
    if rule is None:
        print(f"  [skip] {name}: no gating rule")
        return []
    tolerance = rule.get("tolerance", tolerance)
    base = normalized(index_rows(load_rows(baseline_path), rule["key"]), rule)
    cur_rows = index_rows(load_rows(results_path), rule["key"])
    cur = normalized(cur_rows, rule)

    failures = []
    for key, metrics in sorted(base.items()):
        if key == rule.get("normalize_by"):
            continue  # the reference row is 1.0 by construction
        if key not in cur:
            failures.append(f"{name}: row '{key}' missing from results")
            continue
        lower_is_better = set(rule.get("max_metrics", []))
        for metric, base_value in metrics.items():
            is_max = metric in lower_is_better
            if not is_max and base_value < rule.get("min_baseline", 0.0):
                print(f"  [      skip] {name} / {key} / {metric}: baseline "
                      f"{base_value:.4g} below signal floor")
                continue
            cur_value = cur[key].get(metric)
            if cur_value is None:
                failures.append(f"{name}: '{key}' lost metric {metric}")
                continue
            if is_max:
                ceiling = base_value * (1.0 + tolerance)
                bad = cur_value > ceiling
                status = "REGRESSION" if bad else "ok"
                print(f"  [{status:>10}] {name} / {key} / {metric}: "
                      f"baseline {base_value:.4g}, current {cur_value:.4g} "
                      f"(ceiling {ceiling:.4g})")
                if bad:
                    failures.append(
                        f"{name}: '{key}' {metric} regressed "
                        f"{(cur_value / base_value - 1) * 100.0:.1f}% "
                        f"(baseline {base_value:.4g} -> {cur_value:.4g}, "
                        f"tolerance {tolerance * 100.0:.0f}%)")
                continue
            floor = base_value * (1.0 - tolerance)
            status = "ok" if cur_value >= floor else "REGRESSION"
            print(f"  [{status:>10}] {name} / {key} / {metric}: "
                  f"baseline {base_value:.4g}, current {cur_value:.4g} "
                  f"(floor {floor:.4g})")
            if cur_value < floor:
                failures.append(
                    f"{name}: '{key}' {metric} regressed "
                    f"{(1 - cur_value / base_value) * 100.0:.1f}% "
                    f"(baseline {base_value:.4g} -> {cur_value:.4g}, "
                    f"tolerance {tolerance * 100.0:.0f}%)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", default="bench_results")
    parser.add_argument("--baselines", default="bench/baselines")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop per metric (default 0.20)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="BENCH",
                        help="gate only this bench (repeatable); other "
                             "baselines are skipped rather than required")
    args = parser.parse_args()

    if not os.path.isdir(args.baselines):
        print(f"no baselines directory at {args.baselines}", file=sys.stderr)
        return 1

    failures = []
    checked = 0
    seen = set()
    for entry in sorted(os.listdir(args.baselines)):
        if not entry.endswith(".json"):
            continue
        name = entry[:-len(".json")]
        seen.add(name)
        if args.only is not None and name not in args.only:
            continue
        baseline_path = os.path.join(args.baselines, entry)
        results_path = os.path.join(args.results, entry)
        print(f"checking {name}:")
        if not os.path.exists(results_path):
            failures.append(f"{name}: no results file at {results_path} "
                            "(did the bench run?)")
            continue
        try:
            failures.extend(
                check_bench(name, baseline_path, results_path, args.tolerance))
        except (ValueError, KeyError, json.JSONDecodeError) as err:
            failures.append(f"{name}: {err}")
        checked += 1

    for name in args.only or []:
        if name not in seen:
            failures.append(f"--only {name}: no baseline file "
                            f"{os.path.join(args.baselines, name + '.json')}")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if checked == 0:
        print("no baselines found — nothing checked", file=sys.stderr)
        return 1
    print(f"\nbench regression gate passed ({checked} bench(es) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
