#!/usr/bin/env python3
"""CI gate: every loop tagged NEURO_VEC_HOT must actually vectorize.

The chip kernel TU (src/loihi/chip.cpp) tags its hot loops with a
`// NEURO_VEC_HOT: ...` comment on the line directly above the `for`. CI
rebuilds the TU with the compiler's vectorization report enabled and feeds
the diagnostics here:

  gcc:   g++ -O3 -march=x86-64-v2 -fopt-info-vec-optimized \
             -fopt-info-vec-missed -c src/loihi/chip.cpp 2> report.txt
  clang: clang++ -O3 -march=x86-64-v2 -Rpass=loop-vectorize \
             -Rpass-missed=loop-vectorize -c src/loihi/chip.cpp 2> report.txt

  tools/check_vectorization.py --report report.txt --compiler gcc \
      src/loihi/chip.cpp

Exits non-zero listing every tagged loop with no "vectorized" diagnostic on
its line, together with the compiler's missed-optimization notes so the
failure is actionable. A layout regression that silently turns a lane sweep
back into gather-scatter shows up here, not as a slow chart three releases
later.
"""

import argparse
import re
import sys

# Diagnostic shapes: "<path>:<line>:<col>: optimized: loop vectorized ..."
# (gcc) / "<path>:<line>:<col>: remark: vectorized loop ..." (clang).
SUCCESS = {
    "gcc": re.compile(r"^(?P<path>[^:]+):(?P<line>\d+):\d+:\s+optimized:.*loop vectorized"),
    "clang": re.compile(r"^(?P<path>[^:]+):(?P<line>\d+):\d+:\s+remark:\s+vectorized loop"),
}
MISSED = {
    "gcc": re.compile(r"^(?P<path>[^:]+):(?P<line>\d+):\d+:\s+missed:\s+(?P<why>.*)"),
    "clang": re.compile(r"^(?P<path>[^:]+):(?P<line>\d+):\d+:\s+remark:\s+(?P<why>loop not vectorized.*)"),
}

TAG = "NEURO_VEC_HOT"
# How many lines below the tag the `for` may sit (the tag is normally the
# line directly above, but a wrapped comment is tolerated).
TAG_REACH = 3


def tagged_loops(source):
    """Yields (line_number, tag_text) for the `for` of each tagged loop."""
    with open(source, encoding="utf-8") as f:
        lines = f.readlines()
    for i, text in enumerate(lines):
        if TAG not in text:
            continue
        tag = text.strip().lstrip("/ ")
        for j in range(i + 1, min(i + 1 + TAG_REACH, len(lines))):
            if re.search(r"\bfor\s*\(", lines[j]):
                yield j + 1, tag  # 1-indexed
                break
        else:
            yield i + 1, tag + " [no for loop found after tag]"


def index_report(report, compiler):
    """Returns ({(suffix_path, line)}, {(suffix_path, line): [reasons]})."""
    ok = set()
    missed = {}
    with open(report, encoding="utf-8") as f:
        for raw in f:
            m = SUCCESS[compiler].match(raw)
            if m:
                ok.add((m.group("path"), int(m.group("line"))))
                continue
            m = MISSED[compiler].match(raw)
            if m:
                key = (m.group("path"), int(m.group("line")))
                missed.setdefault(key, []).append(m.group("why").strip())
    return ok, missed


def lookup(entries, source, line):
    """Report paths may be absolute or relative; match by path suffix."""
    hits = []
    for (path, rline), value in entries:
        if rline == line and (path.endswith(source) or source.endswith(path)):
            hits.append(value)
    return hits


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("sources", nargs="+", help="source files carrying NEURO_VEC_HOT tags")
    ap.add_argument("--report", required=True, help="compiler vectorization diagnostics (stderr capture)")
    ap.add_argument("--compiler", choices=("gcc", "clang"), required=True)
    args = ap.parse_args(argv)

    ok, missed = index_report(args.report, args.compiler)
    failures = []
    checked = 0
    for source in args.sources:
        for line, tag in tagged_loops(source):
            checked += 1
            if lookup([(k, True) for k in ok], source, line):
                print(f"ok   {source}:{line}  {tag}")
                continue
            reasons = lookup(list(missed.items()), source, line)
            failures.append((source, line, tag, [r for rs in reasons for r in rs]))

    if checked == 0:
        print(f"error: no {TAG} tags found in {', '.join(args.sources)}", file=sys.stderr)
        return 2
    if failures:
        print(f"\n{len(failures)} tagged loop(s) NOT vectorized:", file=sys.stderr)
        for source, line, tag, reasons in failures:
            print(f"  FAIL {source}:{line}  {tag}", file=sys.stderr)
            for why in reasons or ["(no diagnostic on this line — check the report flags)"]:
                print(f"       missed: {why}", file=sys.stderr)
        return 1
    print(f"all {checked} tagged loops vectorized")
    return 0


if __name__ == "__main__":
    sys.exit(main())
